"""Benchmark: regenerate Figure 2 (the human threat identification and
mitigation process).

Figure 2 defines the four-step iterative process.  The benchmark runs the
full process — task identification, task automation, failure
identification, failure mitigation, plus a second pass — over every
modeled secure system, checks the process-level invariants (all
security-critical tasks identified, every remaining human task gets a
mitigation plan, residual risk does not increase across passes), and
reports the per-system residual-risk trajectory.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core.process import HumanThreatProcess
from repro.mitigations.catalog import full_catalog
from repro.systems import all_systems
from repro.viz.diagrams import render_figure_2


def _run_process_over_all_systems() -> Dict[str, object]:
    results = {}
    for name, system in all_systems().items():
        process = HumanThreatProcess(
            system, mitigation_catalog=full_catalog(), acceptable_risk=0.25
        )
        results[name] = process.run(max_passes=2)
    return results


def test_figure2_process_over_all_systems(benchmark, record):
    results = benchmark.pedantic(_run_process_over_all_systems, rounds=1, iterations=1)

    rows = {}
    for name, result in results.items():
        final = result.final_pass
        # Step 1: every security-critical task identified.
        assert final.identified_tasks
        # Step 4: every remaining human task has a mitigation plan.
        for task_name in final.remaining_human_tasks:
            assert final.mitigation_plan_for(task_name) is not None
        # Iteration: residual risk never increases.
        trajectory = result.risk_trajectory()
        assert all(later <= earlier + 1e-9 for earlier, later in zip(trajectory, trajectory[1:]))
        rows[f"{name}.passes"] = float(result.pass_count)
        rows[f"{name}.final_risk"] = trajectory[-1]

    record(rows)
    print()
    print(render_figure_2())


def test_figure2_single_pass_latency(benchmark, record):
    """Time one pass of the process on the anti-phishing system."""

    from repro.systems import antiphishing

    system = antiphishing.build_system()

    def one_pass():
        return HumanThreatProcess(system, mitigation_catalog=full_catalog()).run_pass()

    process_pass = benchmark(one_pass)
    assert len(process_pass.identified_tasks) == 3
    assert set(process_pass.mitigation_plans) == set(process_pass.analysis.task_analyses)
    record(
        {
            "identified_tasks": float(len(process_pass.identified_tasks)),
            "failures": float(len(process_pass.analysis.failures)),
            "residual_risk": process_pass.residual_risk,
        }
    )
