"""Benchmark floor checks: fail CI when throughput regresses (ISSUEs 4-9).

Re-runs the exact workloads whose numbers are recorded in
``BENCH_engine.json`` (single-shot engine scaling, matrix and counter rng
modes), ``BENCH_rounds.json`` (multi-round engine), ``BENCH_shards.json``
(sharded sweep execution), and ``BENCH_scheduler.json`` (the cluster
scheduler's worker fleet, run *with* an injected worker kill so crash
recovery is always exercised), and ``BENCH_service.json`` (cache-served
small-simulate requests through a real loopback HTTP server) and fails
if the live throughput drops below **half** of the recorded value — a loose enough
floor to ride out machine noise, tight enough to catch a hot path
regressing by an order of magnitude.  Also runs a small-N funnel-metrics
smoke so the trace layer stays wired end to end, and a two-worker
in-call parallelism smoke (``chunk_workers=2`` must reassemble the
serial run bit for bit at any scale; the wall-clock comparison is
skipped, not failed, on single-core runners).  The shard floor doubles
as a two-shard merge smoke (merged shards must equal the serial run bit
for bit at any scale).

Two checks validate the *committed recordings* rather than a live run
(deterministic file reads, engaged at every scale): the
``counter_vs_matrix_ratio`` recorded in ``BENCH_engine.json`` must stay
>= 1.0 — the justification for ``rng_mode="counter"`` being the engine
default (PR 9) — and the ``BENCH_rng.json`` acceptance block (raw fill
ratio, O(1) point-addressing growth) must have passed when recorded.  A
counter-mode zero-copy smoke additionally pins that ``chunk_workers=2``
reassembles the serial run bit for bit *including per-receiver records*,
which in counter mode never cross the process boundary (workers return
tallies; records regenerate from coordinates at home).

The floors only engage when the live run is at the recorded scale (the
recorded numbers are meaningless for smaller N): set ``BENCH_FLOOR_N`` /
``BENCH_FLOOR_ROUNDS`` / ``BENCH_FLOOR_SHARD_N`` /
``BENCH_FLOOR_SCHEDULER_N`` / ``BENCH_FLOOR_SERVICE_REQUESTS`` below
the recorded scale to run everything as a pure smoke check (what CI
does).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_floor_check.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_floor_check.py -q
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple

from _timing import best_of
from repro.core.stages import Stage
from repro.systems import get_scenario

try:
    import pytest
except ImportError:  # standalone `python benchmarks/bench_floor_check.py`
    pytest = None

REPO_ROOT = Path(__file__).resolve().parent.parent
FLOOR_FRACTION = 0.5
#: The committed BENCH_engine.json must show counter >= matrix: the
#: recorded head-to-head is what justified the counter default.
RNG_RATIO_FLOOR = 1.0
N_RECEIVERS = int(os.environ.get("BENCH_FLOOR_N", "100000"))
ROUNDS = int(os.environ.get("BENCH_FLOOR_ROUNDS", "10"))
N_SHARD_RECEIVERS = int(os.environ.get("BENCH_FLOOR_SHARD_N", "20000"))
N_SCHEDULER_RECEIVERS = int(os.environ.get("BENCH_FLOOR_SCHEDULER_N", "20000"))
N_SERVICE_REQUESTS = int(os.environ.get("BENCH_FLOOR_SERVICE_REQUESTS", "50"))

# The recorded workloads (constants mirror the recording benchmarks).
ENGINE_SEED = 20080124
ENGINE_TASK = "heed-ie_active-warning"
ROUNDS_SEED = 20080326
ROUNDS_TASK = "heed-ie_passive-warning"
ROUNDS_RECOVERY = 0.1
SCENARIO = "antiphishing"
SHARD_SEED = 20260726
SHARD_COUNT = 2
SHARD_GRID = {
    "distinct_accounts": [4, 8, 12, 16],
    "single_sign_on": [False, True],
}


# Every check appends one entry here; the module teardown (or main())
# prints the greppable one-line ``FLOOR_OK``/``FLOOR_FAIL`` summary, the
# same machine-readable convention as ``repro.devtools lint --format
# json`` exit gating.
_SUMMARY: list = []


def _check_floor(
    check: str,
    rate: float,
    recorded: Optional[Tuple[int, float]],
    engaged: bool,
    unit: str = "receivers/s",
) -> None:
    """Record one floor check in the summary, then enforce it.

    ``engaged=False`` marks a smoke-scale run: the rate is recorded for
    the summary line but no floor applies.
    """
    floor = FLOOR_FRACTION * recorded[1] if (engaged and recorded) else None
    ok = floor is None or rate >= floor
    _SUMMARY.append(
        {
            "check": check,
            "rate": round(rate, 1),
            "unit": unit,
            "floor": round(floor, 1) if floor is not None else None,
            "engaged": floor is not None,
            "ok": ok,
        }
    )
    assert rate > 0
    if floor is not None:
        assert ok, (
            f"{check} throughput {rate:,.0f} {unit} fell below the floor "
            f"{floor:,.0f} (half of recorded {recorded[1]:,.0f})"
        )


def _record_smoke(check: str, ok: bool = True) -> None:
    """A pass/fail smoke entry with no throughput floor."""
    _SUMMARY.append(
        {"check": check, "rate": None, "unit": None, "floor": None,
         "engaged": False, "ok": ok}
    )


def _print_summary() -> None:
    ok = all(entry["ok"] for entry in _SUMMARY)
    token = "FLOOR_OK" if ok else "FLOOR_FAIL"
    payload = {
        "tool": "bench_floor_check",
        "status": "ok" if ok else "fail",
        "checks": _SUMMARY,
    }
    print(f"\n{token} {json.dumps(payload, sort_keys=True)}")


if pytest is not None:

    @pytest.fixture(scope="module", autouse=True)
    def _floor_summary_reporter():
        """Print the one-line summary after the last check in the module,
        even when an earlier floor assertion already failed the run."""
        yield
        _print_summary()


def _recorded_engine_rate() -> Optional[Tuple[int, float]]:
    """(n_receivers, receivers_per_sec) of the recorded 100k scale point."""
    path = REPO_ROOT / "BENCH_engine.json"
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    scales = payload.get("scales", [])
    if not scales:
        return None
    top = max(scales, key=lambda row: row["n_receivers"])
    return int(top["n_receivers"]), float(top["receivers_per_sec"])


def _recorded_counter_rate() -> Optional[Tuple[int, float]]:
    """(n_receivers, receivers_per_sec) recorded for counter-mode rng."""
    path = REPO_ROOT / "BENCH_engine.json"
    if not path.exists():
        return None
    counter = json.loads(path.read_text()).get("counter_mode")
    if not counter:
        return None
    return int(counter["n_receivers"]), float(counter["receivers_per_sec"])


def _recorded_rounds_rate() -> Optional[Tuple[int, float]]:
    """(receiver_rounds, receiver_rounds_per_sec) recorded for multi-round."""
    path = REPO_ROOT / "BENCH_rounds.json"
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return (
        int(payload.get("receiver_rounds", 0)),
        float(payload.get("receiver_rounds_per_sec", 0.0)),
    )


def _recorded_shard_rate() -> Optional[Tuple[int, float]]:
    """(total_receivers, receivers_per_sec) recorded for the sharded sweep."""
    path = REPO_ROOT / "BENCH_shards.json"
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return (
        int(payload.get("total_receivers", 0)),
        float(payload.get("sharded", {}).get("receivers_per_sec", 0.0)),
    )


def test_engine_scaling_floor():
    """Single-shot throughput must stay above half the recorded rate."""
    scenario = get_scenario(SCENARIO)
    scenario.simulate(1_000, seed=ENGINE_SEED, task=ENGINE_TASK)  # warm-up
    seconds, _ = best_of(
        lambda: scenario.simulate(N_RECEIVERS, seed=ENGINE_SEED, task=ENGINE_TASK)
    )
    rate = N_RECEIVERS / seconds
    recorded = _recorded_engine_rate()
    print(f"\n  engine: {rate:,.0f} receivers/s (recorded: {recorded})")
    _check_floor(
        "engine", rate, recorded,
        engaged=recorded is not None and N_RECEIVERS >= recorded[0],
    )


def test_counter_mode_floor():
    """Counter-rng throughput must stay above half the recorded rate."""
    scenario = get_scenario(SCENARIO)
    scenario.simulate(
        1_000, seed=ENGINE_SEED, task=ENGINE_TASK, rng_mode="counter"
    )  # warm-up
    seconds, result = best_of(
        lambda: scenario.simulate(
            N_RECEIVERS, seed=ENGINE_SEED, task=ENGINE_TASK, rng_mode="counter"
        )
    )
    assert result.rng_mode == "counter"
    rate = N_RECEIVERS / seconds
    recorded = _recorded_counter_rate()
    print(f"\n  counter rng: {rate:,.0f} receivers/s (recorded: {recorded})")
    _check_floor(
        "counter_rng", rate, recorded,
        engaged=recorded is not None and N_RECEIVERS >= recorded[0],
    )


def _recorded_matrix_rate() -> Optional[Tuple[int, float]]:
    """(n_receivers, receivers_per_sec) recorded for matrix-mode rng."""
    path = REPO_ROOT / "BENCH_engine.json"
    if not path.exists():
        return None
    matrix = json.loads(path.read_text()).get("matrix_mode")
    if not matrix:
        return None
    return int(matrix["n_receivers"]), float(matrix["receivers_per_sec"])


def test_matrix_mode_floor():
    """The legacy matrix source must stay replayable at speed.

    ``rng_mode="matrix"`` is no longer the default, but every row
    archived before the counter flip reproduces through it
    (``reproduce_row`` pins it for modeless legacy payloads), so its
    throughput keeps a floor too.
    """
    scenario = get_scenario(SCENARIO)
    scenario.simulate(
        1_000, seed=ENGINE_SEED, task=ENGINE_TASK, rng_mode="matrix"
    )  # warm-up
    seconds, result = best_of(
        lambda: scenario.simulate(
            N_RECEIVERS, seed=ENGINE_SEED, task=ENGINE_TASK, rng_mode="matrix"
        )
    )
    assert result.rng_mode == "matrix"
    rate = N_RECEIVERS / seconds
    recorded = _recorded_matrix_rate()
    print(f"\n  matrix rng: {rate:,.0f} receivers/s (recorded: {recorded})")
    _check_floor(
        "matrix_rng", rate, recorded,
        engaged=recorded is not None and N_RECEIVERS >= recorded[0],
    )


def test_recorded_counter_vs_matrix_ratio():
    """The committed head-to-head must justify the counter default.

    A deterministic file check (no live timing): the
    ``counter_vs_matrix_ratio`` recorded in ``BENCH_engine.json`` was
    measured interleaved at full scale by ``bench_engine_scaling`` and
    must be >= 1.0 — regenerate the recording on a quiet machine if a
    source change moves the balance.
    """
    path = REPO_ROOT / "BENCH_engine.json"
    if not path.exists():
        _record_smoke("recorded_rng_ratio")
        return
    payload = json.loads(path.read_text())
    ratio = payload.get("counter_vs_matrix_ratio")
    if ratio is None:  # recording predates the PR-9 head-to-head rows
        _record_smoke("recorded_rng_ratio")
        return
    ok = float(ratio) >= RNG_RATIO_FLOOR
    _SUMMARY.append(
        {"check": "recorded_rng_ratio", "rate": round(float(ratio), 4),
         "unit": "counter/matrix", "floor": RNG_RATIO_FLOOR,
         "engaged": True, "ok": ok}
    )
    assert ok, (
        f"BENCH_engine.json records counter at {ratio}x the matrix rate, "
        f"below the {RNG_RATIO_FLOOR} floor that justifies the counter "
        "default — re-measure, or revisit the default"
    )


def test_recorded_rng_streams_acceptance():
    """The committed BENCH_rng.json must have passed its own acceptance
    (raw fill ratio in class, point addressing O(1)) when recorded."""
    path = REPO_ROOT / "BENCH_rng.json"
    if not path.exists():
        _record_smoke("recorded_rng_streams")
        return
    acceptance = json.loads(path.read_text()).get("acceptance", {})
    ok = bool(acceptance.get("passed"))
    _record_smoke("recorded_rng_streams", ok=ok)
    assert ok, f"BENCH_rng.json was recorded failing its acceptance: {acceptance}"


def test_counter_zero_copy_smoke():
    """Counter-mode ``chunk_workers=2``: records bit-identical, zero-copy.

    Forces multiple chunks at smoke scale and asserts the parallel run
    reassembles the serial one bit for bit *including the per-receiver
    records*, which in counter mode are regenerated locally from (seed,
    chunk, round) coordinates — workers ship tallies only.  Bit-identity
    is asserted at every scale and on every core count; there is no
    wall-clock assertion here at all (single-core runners cannot win
    from fan-out, and the parallel wall clock is covered by
    ``test_chunk_worker_parallel_smoke``).
    """
    scenario = get_scenario(SCENARIO)
    n = min(N_RECEIVERS, 8_000)  # keep n*rounds under the record limit
    run = lambda workers: scenario.simulate(
        n,
        seed=ENGINE_SEED,
        task=ENGINE_TASK,
        batch_size=n // 4,
        rng_mode="counter",
        chunk_workers=workers,
    )
    serial = run(1)
    parallel = run(2)
    assert parallel.chunks == serial.chunks >= 4
    assert parallel.chunk_workers == 2
    assert parallel.tally.summary() == serial.tally.summary()
    assert parallel.funnel.entered == serial.funnel.entered
    assert parallel.funnel.passed == serial.funnel.passed
    assert list(parallel.records) == list(serial.records)
    print(
        f"\n  counter zero-copy: {parallel.chunks} chunks, 2 workers, "
        f"{n:,} receivers bit-identical ({os.cpu_count()} cores)"
    )
    _record_smoke("counter_zero_copy")


def test_chunk_worker_parallel_smoke():
    """Two-worker in-call parallelism: bit-identical always, timed on multicore.

    Determinism is asserted at every scale: ``chunk_workers=2`` must
    reassemble the serial fold bit for bit (tallies, round tallies,
    funnel).  The wall-clock comparison is skipped — not failed — on
    single-core runners, where process fan-out cannot win.
    """
    scenario = get_scenario(SCENARIO)
    n = min(N_RECEIVERS, 20_000)
    run = lambda workers: scenario.simulate(
        n,
        seed=ROUNDS_SEED,
        task=ROUNDS_TASK,
        rounds=3,
        recovery_rate=ROUNDS_RECOVERY,
        chunk_workers=workers,
    )
    run(1)  # warm-up
    serial_seconds, serial = best_of(lambda: run(1), repeats=1)
    parallel_seconds, parallel = best_of(lambda: run(2), repeats=1)

    assert parallel.chunk_workers == 2
    assert parallel.tally.summary() == serial.tally.summary()
    assert [tally.summary() for tally in parallel.round_tallies] == [
        tally.summary() for tally in serial.round_tallies
    ]
    assert parallel.funnel.entered == serial.funnel.entered
    assert parallel.funnel.passed == serial.funnel.passed
    print(
        f"\n  chunk_workers=2: serial {serial_seconds:.3f}s, "
        f"parallel {parallel_seconds:.3f}s ({os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) < 2:
        print("  single-core runner: wall-clock comparison skipped, not failed")
        _record_smoke("chunk_worker_parallel")
        return
    # Fan-out pays pickling + process start-up; only a gross regression
    # (worse than 4x serial) indicates the parallel path is broken.
    assert parallel_seconds < 4.0 * serial_seconds, (
        f"chunk_workers=2 took {parallel_seconds:.3f}s vs serial "
        f"{serial_seconds:.3f}s — parallel path regressed grossly"
    )
    _record_smoke("chunk_worker_parallel")


def test_multi_round_floor():
    """Multi-round throughput must stay above half the recorded rate."""
    scenario = get_scenario(SCENARIO)
    scenario.simulate(
        1_000, seed=ROUNDS_SEED, task=ROUNDS_TASK, rounds=3, recovery_rate=ROUNDS_RECOVERY
    )  # warm-up
    seconds, _ = best_of(
        lambda: scenario.simulate(
            N_RECEIVERS,
            seed=ROUNDS_SEED,
            task=ROUNDS_TASK,
            rounds=ROUNDS,
            recovery_rate=ROUNDS_RECOVERY,
        )
    )
    receiver_rounds = N_RECEIVERS * ROUNDS
    rate = receiver_rounds / seconds
    recorded = _recorded_rounds_rate()
    print(f"\n  multi-round: {rate:,.0f} receiver-rounds/s (recorded: {recorded})")
    _check_floor(
        "multi_round", rate, recorded,
        engaged=recorded is not None and receiver_rounds >= recorded[0],
        unit="receiver-rounds/s",
    )


def test_shard_backend_floor():
    """Sharded sweep throughput must stay above half the recorded rate.

    Also the two-shard merge smoke: at *any* scale, the merged shards
    (including their checkpoint JSONL round-trip) must reassemble the
    serial run bit for bit.
    """
    from repro.experiments import (
        Experiment,
        ResultSet,
        SerialBackend,
        ShardBackend,
        SweepSpec,
    )

    def canonical(resultset):
        """Result-set dict modulo per-row wall-clock telemetry (the one
        canonical filter: ``ResultSet.canonical_dict``)."""
        return resultset.canonical_dict()

    experiment = Experiment.from_sweep(
        "password-shard-scaling",
        SweepSpec(scenario="passwords", grid=SHARD_GRID),
        n_receivers=N_SHARD_RECEIVERS,
        seed=SHARD_SEED,
        task="recall-passwords",
    )
    serial = experiment.run(backend=SerialBackend())  # warm-up + correctness anchor

    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="floor-shards-") as checkpoint_dir:
        shard_sets = [
            experiment.run(
                backend=ShardBackend(index, SHARD_COUNT, checkpoint_dir=checkpoint_dir)
            )
            for index in range(SHARD_COUNT)
        ]
    seconds = time.perf_counter() - start
    merged = ResultSet.merge(*shard_sets)
    assert canonical(merged) == canonical(serial)

    total = len(experiment.variants) * N_SHARD_RECEIVERS
    rate = total / seconds
    recorded = _recorded_shard_rate()
    print(f"\n  sharded sweep: {rate:,.0f} receivers/s (recorded: {recorded})")
    _check_floor(
        "sharded_sweep", rate, recorded,
        engaged=recorded is not None and total >= recorded[0],
    )


def _recorded_scheduler_rate() -> Optional[Tuple[int, float]]:
    """(total_receivers, receivers_per_sec) recorded for the fleet run."""
    path = REPO_ROOT / "BENCH_scheduler.json"
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return (
        int(payload.get("total_receivers", 0)),
        float(payload.get("fleet", {}).get("receivers_per_sec", 0.0)),
    )


def test_scheduler_floor():
    """Scheduled-fleet throughput must stay above half the recorded rate.

    Doubles as the kill-one-worker smoke: the fleet runs with one worker
    hard-killed mid-shard by the deterministic fault injector, and the
    merged set must still be bit-identical (modulo ``WALL_CLOCK_METRICS``)
    to the serial run at *any* scale.  Only the throughput floor is
    scale-gated; on single-core runners the recorded multi-core rate is
    never engaged, so the wall clock is observed, not asserted.
    """
    import tempfile as _tempfile

    from repro.cluster import (
        FaultInjector,
        LocalProcessFleet,
        ShardScheduler,
        read_scheduler_events,
    )
    from repro.experiments import Experiment, SerialBackend, SweepSpec

    experiment = Experiment.from_sweep(
        "password-scheduler-bench",
        SweepSpec(scenario="passwords", grid=SHARD_GRID),
        n_receivers=N_SCHEDULER_RECEIVERS,
        seed=SHARD_SEED,
        task="recall-passwords",
    )
    serial = experiment.run(backend=SerialBackend())  # warm-up + anchor

    start = time.perf_counter()
    with _tempfile.TemporaryDirectory(prefix="floor-scheduler-") as checkpoint_dir:
        scheduler = ShardScheduler(
            experiment,
            shard_count=4,
            checkpoint_dir=checkpoint_dir,
            transport=LocalProcessFleet(max_workers=2),
            heartbeat_timeout=120.0,
            poll_interval=0.02,
            backoff_base=0.05,
            backoff_cap=0.2,
            fault_injector=FaultInjector(shards=(1,), kill_after_rows=1),
        )
        merged = scheduler.run()
        seconds = time.perf_counter() - start
        assert merged.canonical_dict() == serial.canonical_dict()
        failures = read_scheduler_events(checkpoint_dir, kind="worker-failed")
        assert len(failures) == 1, "the injected kill must be visible"
        assert len(read_scheduler_events(checkpoint_dir, kind="requeued")) == 1

    total = len(experiment.variants) * N_SCHEDULER_RECEIVERS
    rate = total / seconds
    recorded = _recorded_scheduler_rate()
    print(f"\n  scheduled fleet: {rate:,.0f} receivers/s (recorded: {recorded})")
    _check_floor(
        "scheduled_fleet", rate, recorded,
        engaged=recorded is not None and total >= recorded[0],
    )


def _recorded_service_rate() -> Optional[Tuple[int, float]]:
    """(requests, cached-simulate requests_per_sec) recorded for the service."""
    path = REPO_ROOT / "BENCH_service.json"
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return (
        int(payload.get("requests_per_measurement", 0)),
        float(payload.get("simulate", {}).get("cached", {}).get(
            "requests_per_sec", 0.0
        )),
    )


def test_service_cached_floor():
    """Cache-served HTTP throughput must stay above half the recorded rate.

    Re-runs the ``BENCH_service.json`` cached-simulate workload: a real
    loopback WSGI server, one identical small-simulate request repeated,
    every response after the first served byte-for-byte from the result
    cache.  Bit-identity of the served responses is asserted at every
    scale; the req/s floor engages only at the recorded request count.
    """
    from bench_service import N_RECEIVERS as SERVICE_N
    from bench_service import SCENARIO as SERVICE_SCENARIO
    from bench_service import SEED as SERVICE_SEED
    from bench_service import TASK as SERVICE_TASK
    from bench_service import _request, _Server

    body = {
        "scenario": SERVICE_SCENARIO,
        "n_receivers": SERVICE_N,
        "seed": SERVICE_SEED,
        "task": SERVICE_TASK,
    }
    with _Server() as base:
        _request(base, "GET", "/health")  # warm-up: first accept + imports
        status, first = _request(base, "POST", "/simulate", dict(body))
        assert status == 200 and first["cache"]["computed"] == 1
        start = time.perf_counter()
        for _ in range(N_SERVICE_REQUESTS):
            status, served = _request(base, "POST", "/simulate", dict(body))
            assert status == 200
            assert served["cache"] == {"served": 1, "computed": 0}
        seconds = time.perf_counter() - start
        # The exact bytes of the first computation, every time.
        assert served["resultset"] == first["resultset"]

    rate = N_SERVICE_REQUESTS / seconds
    recorded = _recorded_service_rate()
    print(f"\n  service cached: {rate:,.1f} req/s (recorded: {recorded})")
    _check_floor(
        "service_cached", rate, recorded,
        engaged=recorded is not None and N_SERVICE_REQUESTS >= recorded[0],
        unit="req/s",
    )


def test_funnel_metrics_smoke():
    """Small-N end-to-end smoke of the per-stage funnel metrics."""
    result = get_scenario(SCENARIO).simulate(
        2_000, seed=7, task=ROUNDS_TASK, rounds=3, recovery_rate=0.2
    )
    funnel = result.funnel
    assert funnel is not None and funnel.n == 6_000
    entered = list(funnel.entered)
    assert entered == sorted(entered, reverse=True), "funnel must narrow monotonically"
    assert funnel.survival_rate("behavior") == result.heed_rate()
    assert 0.0 <= funnel.conditional_failure_rate(Stage.ATTENTION_SWITCH.value) <= 1.0
    assert len(result.round_funnels) == 3
    # The habituation signature: attention survival erodes round over round.
    survival = result.round_funnel_metric(Stage.ATTENTION_SWITCH.value)
    assert survival[-1] < survival[0]
    _record_smoke("funnel_metrics")


def main() -> None:
    test_engine_scaling_floor()
    test_counter_mode_floor()
    test_matrix_mode_floor()
    test_recorded_counter_vs_matrix_ratio()
    test_recorded_rng_streams_acceptance()
    test_multi_round_floor()
    test_shard_backend_floor()
    test_scheduler_floor()
    test_service_cached_floor()
    test_chunk_worker_parallel_smoke()
    test_counter_zero_copy_smoke()
    test_funnel_metrics_smoke()
    _print_summary()


if __name__ == "__main__":
    main()
