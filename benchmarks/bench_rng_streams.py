"""Benchmark: raw draw-source rates — matrix fills vs counter streams.

Times the two decision-randomness sources the engine can run on, below
the engine (no evaluation, no records): the sequential **matrix** path
(:func:`repro.simulation.batch.draw_batch` over ``SimulationRng``'s
ziggurat/uniform fills) against the **counter** path
(:func:`~repro.simulation.batch.draw_batch_counter` over keyed
``CounterDraws`` streams), at 1k and 100k receivers, interleaved
best-of-5 so machine noise hits both sides equally.  Also records what
the matrix path cannot offer at any price: O(1) point addressing — the
per-query latency of :meth:`CounterDraws.uniform_at` and
:meth:`CounterDraws.clipped_normal_at`, which must stay flat as the
draw width grows 100x.

Context for the recorded ratio: the counter path pays for addressability
(state-keyed streams, dual-output Box–Muller with quarter-wave cosine
folding) and sits within a few percent of the matrix fill rate at full
scale — while the *engine-level* comparison in ``BENCH_engine.json``
(which adds zero-copy parallel dispatch and deferred record
regeneration, both counter-only) comes out ahead.  That engine-level
ratio is what gated flipping ``SimulationConfig``'s default to
``rng_mode="counter"`` (PR 9); the raw fill ratio here tracks the
distance the transform optimisations still have to cover.

Results land in ``BENCH_rng.json`` at the repository root.
``BENCH_RNG_N`` caps the top scale (CI smoke).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_rng_streams.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_rng_streams.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from _timing import utc_timestamp
from repro.simulation import batch as batch_module
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.rng import NOISE_STREAMS, CounterDraws, SimulationRng
from repro.systems import get_scenario

SEED = 20080124
SCENARIO = "antiphishing"
TASK = "heed-ie_active-warning"
TOP_N = int(os.environ.get("BENCH_RNG_N", "100000"))
SCALES = (1_000, TOP_N)
REPEATS = 5
POINT_QUERIES = 200
#: Raw fill-rate floor for the live run: the counter path must stay in
#: the same performance class as the matrix fill (the strict >= 1.0
#: gate applies to the *engine-level* recording, in bench_floor_check).
FILL_RATIO_FLOOR = 0.6
#: O(1) addressing: per-query latency at the top scale may not exceed
#: this multiple of the 1k-scale latency (it is flat in practice).
POINT_LATENCY_GROWTH_CAP = 10.0
POINT_LATENCY_CAP_US = 1_000.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_rng.json"


def _interleaved_fill_times(plan, population, count) -> Dict[str, float]:
    """Best-of-``REPEATS`` for both sources, alternating every repeat."""
    best = {"matrix": float("inf"), "counter": float("inf")}
    for _ in range(REPEATS):
        start = time.perf_counter()
        batch_module.draw_batch(plan, population, count, SimulationRng(SEED))
        best["matrix"] = min(best["matrix"], time.perf_counter() - start)
        start = time.perf_counter()
        batch_module.draw_batch_counter(plan, population, count, CounterDraws(SEED))
        best["counter"] = min(best["counter"], time.perf_counter() - start)
    return best


def _point_latencies_us(count: int) -> Dict[str, float]:
    """Mean per-query latency over ``POINT_QUERIES`` spread-out indices."""
    draws = CounterDraws(SEED)
    indices = list(range(0, count, max(1, count // POINT_QUERIES)))[:POINT_QUERIES]
    draws.uniform_at(0, 0)  # warm the cell's generator
    start = time.perf_counter()
    for index in indices:
        draws.uniform_at(0, index)
    uniform_us = (time.perf_counter() - start) / len(indices) * 1e6
    start = time.perf_counter()
    for index in indices:
        draws.clipped_normal_at(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, index, count)
    normal_us = (time.perf_counter() - start) / len(indices) * 1e6
    return {"uniform_at_us": uniform_us, "clipped_normal_at_us": normal_us}


def measure_streams() -> Dict[str, object]:
    """Time both draw sources and the point queries; build the payload."""
    scenario = get_scenario(SCENARIO)
    task = scenario.task(TASK)
    population = scenario.population()
    plan = HumanLoopSimulator(SimulationConfig())._plan_for(task)

    # Warm-up (imports, first-call numpy setup) plus a determinism smoke:
    # the counter source must reproduce itself exactly.
    first = batch_module.draw_batch_counter(
        plan, population, 1_000, CounterDraws(SEED)
    )
    again = batch_module.draw_batch_counter(
        plan, population, 1_000, CounterDraws(SEED)
    )
    np.testing.assert_array_equal(first.decisions, again.decisions)
    batch_module.draw_batch(plan, population, 1_000, SimulationRng(SEED))

    fills: List[Dict[str, float]] = []
    points: List[Dict[str, float]] = []
    for count in SCALES:
        best = _interleaved_fill_times(plan, population, count)
        fills.append(
            {
                "n_receivers": count,
                "matrix_seconds": round(best["matrix"], 6),
                "counter_seconds": round(best["counter"], 6),
                "matrix_receivers_per_sec": round(count / best["matrix"], 1),
                "counter_receivers_per_sec": round(count / best["counter"], 1),
                "counter_vs_matrix_ratio": round(best["matrix"] / best["counter"], 4),
            }
        )
        latency = _point_latencies_us(count)
        points.append(
            {
                "n_receivers": count,
                "queries": POINT_QUERIES,
                "uniform_at_us": round(latency["uniform_at_us"], 2),
                "clipped_normal_at_us": round(latency["clipped_normal_at_us"], 2),
            }
        )

    top_fill = fills[-1]
    growth = points[-1]["uniform_at_us"] / max(points[0]["uniform_at_us"], 1e-9)
    return {
        "benchmark": "rng_streams",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "repeats": REPEATS,
        "recorded_at": utc_timestamp(),
        "fills": fills,
        "point_addressing": points,
        "acceptance": {
            "fill_ratio_floor": FILL_RATIO_FLOOR,
            "fill_ratio_top": top_fill["counter_vs_matrix_ratio"],
            "point_latency_growth": round(growth, 2),
            "point_latency_growth_cap": POINT_LATENCY_GROWTH_CAP,
            "passed": (
                top_fill["counter_vs_matrix_ratio"] >= FILL_RATIO_FLOOR
                and growth <= POINT_LATENCY_GROWTH_CAP
            ),
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_rng_streams_writes_report():
    """Counter fills in the matrix's class; point addressing stays O(1)."""
    report = measure_streams()
    path = write_report(report)

    assert path.exists()
    acceptance = report["acceptance"]
    assert acceptance["fill_ratio_top"] >= FILL_RATIO_FLOOR, (
        f"counter fill rate fell to {acceptance['fill_ratio_top']:.2f}x the "
        f"matrix rate at the top scale (floor {FILL_RATIO_FLOOR})"
    )
    # O(1) addressing: latency must not scale with the draw width.
    assert acceptance["point_latency_growth"] <= POINT_LATENCY_GROWTH_CAP, (
        f"uniform_at latency grew {acceptance['point_latency_growth']:.1f}x "
        f"from 1k to the top scale — point addressing is no longer O(1)"
    )
    for row in report["point_addressing"]:
        assert row["uniform_at_us"] < POINT_LATENCY_CAP_US
        assert row["clipped_normal_at_us"] < POINT_LATENCY_CAP_US
    assert acceptance["passed"]


def main() -> None:
    report = measure_streams()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["fills"]:
        print(
            f"  n={row['n_receivers']:>7,}  matrix {row['matrix_seconds']*1e3:>8.2f}ms"
            f"  counter {row['counter_seconds']*1e3:>8.2f}ms"
            f"  ratio {row['counter_vs_matrix_ratio']:.3f}"
        )
    for row in report["point_addressing"]:
        print(
            f"  n={row['n_receivers']:>7,}  uniform_at {row['uniform_at_us']:>7.1f}us"
            f"  clipped_normal_at {row['clipped_normal_at_us']:>7.1f}us"
        )
    acceptance = report["acceptance"]
    status = "PASS" if acceptance["passed"] else "FAIL"
    print(
        f"  acceptance: fill ratio {acceptance['fill_ratio_top']:.3f} "
        f"(floor {FILL_RATIO_FLOOR}), point-latency growth "
        f"{acceptance['point_latency_growth']:.1f}x "
        f"(cap {POINT_LATENCY_GROWTH_CAP:.0f}x) -> {status}"
    )


if __name__ == "__main__":
    main()
