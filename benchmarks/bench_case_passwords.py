"""Benchmark: case study 3.2 — organizational password policies.

Regenerates the quantitative reading of the Section-3.2 case study: a
simulated employee population lives under a strict password policy and its
mitigation variants (no expiry, rationale training, single sign-on, a
password vault).  The paper's conclusions that this benchmark checks as
*shape*:

* "the most critical failure appears to be a capabilities failure: people
  are not capable of remembering large numbers of policy-compliant
  passwords" — for the baseline policy, the capability failure dominates
  every other failure bucket;
* reducing the number of passwords to remember (single sign-on, password
  vaults) is the mitigation that moves compliance the most — more than
  rationale training alone;
* password *creation* is not the problem (users are capable of composing
  compliant passwords), but their choices retain predictable structure.

The sweep runs through the declarative :mod:`repro.experiments` API: the
mitigation variants are parameter points of the registered ``passwords``
scenario (no per-variant hand-wiring), and the shared experiment seed
gives common random numbers across variants, as the original hand-wired
comparison did.
"""

from __future__ import annotations

import pytest

from repro.experiments import Experiment, ResultSet, password_case_study_variants
from repro.studies.registry import registry

N_RECEIVERS = 500
SEED = 3200


def _policy_experiment() -> Experiment:
    return Experiment(
        name="passwords-policy-variants",
        variants=password_case_study_variants(),
        n_receivers=N_RECEIVERS,
        seed=SEED,
        task="recall-passwords",
        seed_strategy="shared",
    )


def test_case_passwords_policy_sweep(benchmark, record):
    results: ResultSet = benchmark.pedantic(
        _policy_experiment().run, rounds=1, iterations=1
    )

    baseline = results.row("baseline")
    sso = results.row("single-sign-on")
    vault = results.row("password-vault")
    training = results.row("rationale-training")
    no_expiry = results.row("no-expiry")

    # Shape check 1: baseline compliance is poor and the capability
    # (memorability) failure dominates every other failure bucket.
    assert baseline.metric("protection_rate") < 0.5
    assert baseline.metric("capability_failure_rate") > baseline.metric(
        "intention_failure_rate"
    )
    assert all(
        baseline.metric("capability_failure_rate") >= fraction
        for name, fraction in baseline.metrics.items()
        if name.startswith("stage_failure:")
    )

    # Shape check 2: memory offloading (SSO / vault) is the big win.
    assert sso.metric("protection_rate") > baseline.metric("protection_rate") + 0.15
    assert vault.metric("protection_rate") > baseline.metric("protection_rate") + 0.15
    assert sso.metric("capability_failure_rate") < baseline.metric(
        "capability_failure_rate"
    ) / 2
    assert vault.metric("capability_failure_rate") < baseline.metric(
        "capability_failure_rate"
    ) / 2

    # Shape check 3: training alone moves compliance less than SSO/vault;
    # dropping expiry helps modestly.
    training_gain = training.metric("protection_rate") - baseline.metric("protection_rate")
    sso_gain = sso.metric("protection_rate") - baseline.metric("protection_rate")
    assert sso_gain > training_gain
    assert no_expiry.metric("protection_rate") >= baseline.metric("protection_rate") - 0.02

    record(
        {
            "baseline.compliance": baseline.metric("protection_rate"),
            "no_expiry.compliance": no_expiry.metric("protection_rate"),
            "training.compliance": training.metric("protection_rate"),
            "sso.compliance": sso.metric("protection_rate"),
            "vault.compliance": vault.metric("protection_rate"),
            "baseline.capability_failures": baseline.metric("capability_failure_rate"),
            "sso.capability_failures": sso.metric("capability_failure_rate"),
            "paper.reuse_rate_reference": registry.value("gaw_felten2006", "password_reuse_rate"),
        }
    )
    print()
    print(
        results.to_markdown(
            [
                "protection_rate",
                "heed_rate",
                "notice_rate",
                "intention_failure_rate",
                "capability_failure_rate",
            ]
        )
    )


def test_case_passwords_creation_vs_recall(benchmark, record):
    """Creation succeeds where recall fails; creation choices stay predictable."""

    from repro.core.components import Component
    from repro.systems import get_scenario

    variant = get_scenario("passwords").bind()

    def analyze_both():
        analysis = variant.analyze()
        return (
            analysis.task_analyses[variant.task("create-compliant-password").name],
            analysis.task_analyses[variant.task("recall-passwords").name],
        )

    creation_analysis, recall_analysis = benchmark(analyze_both)

    # Creation is easier than recall (Kuo et al.: users can create compliant
    # passwords; Gaw & Felten: they cannot remember many of them).
    assert creation_analysis.success_probability > recall_analysis.success_probability
    # The recall task's top failure is the capability failure.
    assert Component.CAPABILITIES in [
        failure.component for failure in recall_analysis.failures.top(3)
    ]
    # The creation task carries a predictability finding at the behavior stage.
    assert any(
        failure.behavior_kind is not None
        for failure in creation_analysis.failures.by_component(Component.BEHAVIOR)
    )

    record(
        {
            "creation.success_probability": creation_analysis.success_probability,
            "recall.success_probability": recall_analysis.success_probability,
            "recall.capability_risk": recall_analysis.failures.risk_by_component().get(
                Component.CAPABILITIES, 0.0
            ),
            "paper.creation_capability_reference": registry.value(
                "kuo2006", "can_create_compliant_passwords"
            ),
        }
    )
