"""Benchmark: case study 3.2 — organizational password policies.

Regenerates the quantitative reading of the Section-3.2 case study: a
simulated employee population lives under a strict password policy and its
mitigation variants (no expiry, rationale training, single sign-on, a
password vault).  The paper's conclusions that this benchmark checks as
*shape*:

* "the most critical failure appears to be a capabilities failure: people
  are not capable of remembering large numbers of policy-compliant
  passwords" — for the baseline policy, the capability failure dominates
  every other failure bucket;
* reducing the number of passwords to remember (single sign-on, password
  vaults) is the mitigation that moves compliance the most — more than
  rationale training alone;
* password *creation* is not the problem (users are capable of composing
  compliant passwords), but their choices retain predictable structure.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.simulation.metrics import SimulationResult, render_comparison_markdown
from repro.studies.registry import registry
from repro.systems import passwords

N_RECEIVERS = 500
SEED = 3200


def _simulate_recall_across_variants() -> Dict[str, SimulationResult]:
    results: Dict[str, SimulationResult] = {}
    for name, policy in passwords.policy_variants().items():
        simulator = HumanLoopSimulator(
            SimulationConfig(
                n_receivers=N_RECEIVERS, seed=SEED, calibration=passwords.calibration(policy)
            )
        )
        results[name] = simulator.simulate_task(
            passwords.recall_task(policy), passwords.population(policy)
        )
    return results


def test_case_passwords_policy_sweep(benchmark, record):
    results = benchmark.pedantic(_simulate_recall_across_variants, rounds=1, iterations=1)

    baseline = results["baseline"]
    sso = results["single-sign-on"]
    vault = results["password-vault"]
    training = results["rationale-training"]
    no_expiry = results["no-expiry"]

    # Shape check 1: baseline compliance is poor and the capability
    # (memorability) failure dominates every other failure bucket.
    assert baseline.protection_rate() < 0.5
    assert baseline.capability_failure_rate() > baseline.intention_failure_rate()
    assert all(
        baseline.capability_failure_rate() >= fraction
        for fraction in baseline.stage_failure_fractions().values()
    )

    # Shape check 2: memory offloading (SSO / vault) is the big win.
    assert sso.protection_rate() > baseline.protection_rate() + 0.15
    assert vault.protection_rate() > baseline.protection_rate() + 0.15
    assert sso.capability_failure_rate() < baseline.capability_failure_rate() / 2
    assert vault.capability_failure_rate() < baseline.capability_failure_rate() / 2

    # Shape check 3: training alone moves compliance less than SSO/vault;
    # dropping expiry helps modestly.
    training_gain = training.protection_rate() - baseline.protection_rate()
    sso_gain = sso.protection_rate() - baseline.protection_rate()
    assert sso_gain > training_gain
    assert no_expiry.protection_rate() >= baseline.protection_rate() - 0.02

    record(
        {
            "baseline.compliance": baseline.protection_rate(),
            "no_expiry.compliance": no_expiry.protection_rate(),
            "training.compliance": training.protection_rate(),
            "sso.compliance": sso.protection_rate(),
            "vault.compliance": vault.protection_rate(),
            "baseline.capability_failures": baseline.capability_failure_rate(),
            "sso.capability_failures": sso.capability_failure_rate(),
            "paper.reuse_rate_reference": registry.value("gaw_felten2006", "password_reuse_rate"),
        }
    )
    print()
    print(render_comparison_markdown(results))


def test_case_passwords_creation_vs_recall(benchmark, record):
    """Creation succeeds where recall fails; creation choices stay predictable."""

    from repro.core.analysis import analyze_task
    from repro.core.components import Component

    policy = passwords.baseline_policy()

    def analyze_both():
        return (
            analyze_task(passwords.creation_task(policy)),
            analyze_task(passwords.recall_task(policy)),
        )

    creation_analysis, recall_analysis = benchmark(analyze_both)

    # Creation is easier than recall (Kuo et al.: users can create compliant
    # passwords; Gaw & Felten: they cannot remember many of them).
    assert creation_analysis.success_probability > recall_analysis.success_probability
    # The recall task's top failure is the capability failure.
    assert Component.CAPABILITIES in [
        failure.component for failure in recall_analysis.failures.top(3)
    ]
    # The creation task carries a predictability finding at the behavior stage.
    assert any(
        failure.behavior_kind is not None
        for failure in creation_analysis.failures.by_component(Component.BEHAVIOR)
    )

    record(
        {
            "creation.success_probability": creation_analysis.success_probability,
            "recall.success_probability": recall_analysis.success_probability,
            "recall.capability_risk": recall_analysis.failures.risk_by_component().get(
                Component.CAPABILITIES, 0.0
            ),
            "paper.creation_capability_reference": registry.value(
                "kuo2006", "can_create_compliant_passwords"
            ),
        }
    )
