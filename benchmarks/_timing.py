"""Shared timing primitives for the benchmark harness (PR 6).

Every recording benchmark used to hand-roll the same three fragments: a
``time.perf_counter()`` bracket, a best-of-N repeat loop, and a UTC
timestamp for the report payload.  They live here once.  The helpers
return the *callable's* value alongside the elapsed time so benchmarks
can keep asserting correctness properties (determinism, decay curves,
funnel presence) on the very run they timed.

Not a pytest file: the module name deliberately avoids the ``bench_*``
collection pattern.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


def timed(callable_: Callable[[], Any]) -> Tuple[float, Any]:
    """Run once: ``(elapsed_seconds, return_value)``."""
    start = time.perf_counter()
    value = callable_()
    return time.perf_counter() - start, value


def best_of(callable_: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Run ``repeats`` times: ``(best_elapsed_seconds, first_value)``.

    The minimum over repeats filters scheduler noise on shared runners;
    the first run's value is returned (benchmark workloads are
    deterministic, so every repeat computes the same result).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    value: Any = None
    for index in range(repeats):
        elapsed, result = timed(callable_)
        if index == 0:
            value = result
        best = min(best, elapsed)
    return best, value


def utc_timestamp() -> str:
    """ISO-8601 UTC second stamp recorded in every ``BENCH_*.json``."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
