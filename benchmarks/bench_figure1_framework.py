"""Benchmark: regenerate Figure 1 (the human-in-the-loop framework).

Figure 1 is the framework's structural diagram: the communication, the
impediments, the human receiver (personal variables, intentions,
capabilities, and the three information-processing steps), and the
behavior.  The benchmark regenerates the influence graph and the ASCII
rendering, verifies the structural inventory (node/edge counts, receiver
membership, acyclicity, communication-to-behavior reachability), and times
one full end-to-end framework analysis pass that exercises every component.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.analysis import analyze_task
from repro.core.components import Component, ComponentGroup
from repro.core.framework import HumanInTheLoopFramework
from repro.systems import antiphishing
from repro.viz.diagrams import render_figure_1
from repro.viz.graphs import assign_layers, framework_graph, graph_statistics


def test_figure1_graph_structure(benchmark, record):
    graph = benchmark(framework_graph)

    stats = graph_statistics(graph)
    assert stats["nodes"] == 11.0
    assert stats["is_dag_without_feedback"] == 1.0
    # The communication must reach behavior through the receiver.
    assert nx.has_path(graph, ComponentGroup.COMMUNICATION.value, ComponentGroup.BEHAVIOR.value)
    layers = assign_layers(graph)
    assert layers[ComponentGroup.COMMUNICATION.value] < layers[ComponentGroup.BEHAVIOR.value]

    rendering = render_figure_1()
    assert "HUMAN RECEIVER" in rendering
    for component in Component:
        if component.group.is_receiver_group:
            assert component.title in rendering

    record(
        {
            "nodes": stats["nodes"],
            "edges": stats["edges"],
            "receiver_groups": stats["receiver_nodes"],
            "rendering_lines": float(len(rendering.splitlines())),
        }
    )
    print()
    print(rendering)


def test_figure1_full_analysis_pass(benchmark, record):
    """Time one complete walk of a task through every framework component."""

    framework = HumanInTheLoopFramework()
    task = antiphishing.task_for(antiphishing.WarningVariant.FIREFOX)

    analysis = benchmark(lambda: framework.analyze_task(task))

    assert set(analysis.assessments) == set(Component)
    assert analysis.checklist.completion() == pytest.approx(1.0)
    record(
        {
            "components_assessed": float(len(analysis.assessments)),
            "failures_identified": float(len(analysis.failures)),
            "success_probability": analysis.success_probability,
        }
    )
