"""Ablation benchmark: what the framework's additions over C-HIP buy.

Section 4 argues the framework adds a capabilities component and an
interference component to C-HIP because computer-security failures often
originate exactly there.  This ablation re-runs failure identification over
every modeled system with those components' failures filtered out —
approximating an analysis that only had C-HIP's vocabulary — and measures
how many identified failure modes (and how much aggregate risk) the
C-HIP-only analysis misses, per system and in total.

Expected shape: the password-policy system loses its dominant failure
(memorability is a capability failure), and the SSL-indicator system loses
its spoofing failure (interference), so the ablated analysis under-reports
risk substantially on exactly the systems the paper highlights.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.chip.comparison import compare_with_framework
from repro.core.analysis import analyze_system
from repro.core.components import Component
from repro.systems import all_systems

ADDED_COMPONENTS = (Component.CAPABILITIES, Component.INTERFERENCE)


def _run_ablation() -> Dict[str, Tuple[float, float, int, int]]:
    """Per system: (full risk, C-HIP-only risk, full failure count, missed count)."""
    outcome: Dict[str, Tuple[float, float, int, int]] = {}
    for name, system in all_systems().items():
        analysis = analyze_system(system)
        full_risk = analysis.failures.total_risk()
        missed = [
            failure
            for failure in analysis.failures
            if failure.component in ADDED_COMPONENTS
        ]
        chip_only_risk = full_risk - sum(failure.risk_score for failure in missed)
        outcome[name] = (full_risk, chip_only_risk, len(analysis.failures), len(missed))
    return outcome


def test_ablation_chip_delta(benchmark, record):
    # The delta computed from the structural comparison is exactly the
    # component set this ablation removes.
    comparison = compare_with_framework()
    assert set(comparison.added_components()) == set(ADDED_COMPONENTS)

    outcome = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    total_full = sum(full for full, _chip, _n, _m in outcome.values())
    total_chip = sum(chip for _full, chip, _n, _m in outcome.values())
    total_missed = sum(missed for _full, _chip, _n, missed in outcome.values())

    # Shape checks: the added components carry a meaningful share of the
    # identified risk overall, and are decisive for the password and SSL
    # systems specifically.
    assert total_missed >= 3
    assert total_chip < total_full
    passwords_full, passwords_chip, _n, passwords_missed = outcome["passwords"]
    assert passwords_missed >= 1
    assert passwords_chip < passwords_full
    ssl_full, ssl_chip, _n2, ssl_missed = outcome["ssl-indicator"]
    assert ssl_missed >= 1
    assert ssl_chip < ssl_full

    rows = {
        "total.full_risk": total_full,
        "total.chip_only_risk": total_chip,
        "total.risk_missed_fraction": (total_full - total_chip) / total_full,
        "total.failures_missed": float(total_missed),
    }
    for name, (full, chip, count, missed) in sorted(outcome.items()):
        rows[f"{name}.risk_missed_fraction"] = (full - chip) / full if full else 0.0
        rows[f"{name}.failures_missed"] = float(missed)
    record(rows)
