"""Benchmark: regenerate Figure 3 (the C-HIP model) and the Section-4 delta.

Figure 3 reproduces Wogalter's C-HIP model, which the framework extends.
The benchmark regenerates the C-HIP graph, verifies its structure (linear
receiver chain, feedback to the source), computes the structural comparison
with the framework, and checks the Section-4 claims: exactly two components
(capabilities, interference) are additions with no C-HIP counterpart, the
knowledge stages are refinements of C-HIP's comprehension/memory stage, and
the communication component generalizes C-HIP's warning-specific source.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.chip.comparison import MappingKind, compare_with_framework
from repro.chip.model import CHIP_STAGE_ORDER, CHIPModel, CHIPStage
from repro.core.components import Component
from repro.viz.diagrams import render_figure_3
from repro.viz.graphs import chip_graph, graph_statistics


def test_figure3_chip_structure(benchmark, record):
    graph = benchmark(chip_graph)

    stats = graph_statistics(graph)
    assert stats["nodes"] == 10.0
    assert stats["receiver_nodes"] == 5.0
    assert stats["is_dag_without_feedback"] == 1.0
    # The receiver chain is strictly linear in C-HIP.
    for earlier, later in zip(CHIP_STAGE_ORDER, CHIP_STAGE_ORDER[1:]):
        assert graph.has_edge(earlier.value, later.value)
    assert graph.has_edge(CHIPStage.BEHAVIOR.value, CHIPStage.SOURCE.value)

    rendering = render_figure_3()
    assert "SOURCE" in rendering and "BEHAVIOR" in rendering

    record(
        {
            "nodes": stats["nodes"],
            "edges": stats["edges"],
            "receiver_stages": stats["receiver_nodes"],
        }
    )
    print()
    print(rendering)


def test_figure3_framework_delta(benchmark, record):
    comparison = benchmark(compare_with_framework)

    added = set(comparison.added_components())
    assert added == {Component.CAPABILITIES, Component.INTERFERENCE}
    counts = comparison.coverage_counts()
    assert counts[MappingKind.ADDED] == 2
    assert counts[MappingKind.DIRECT] >= 4
    assert counts[MappingKind.SPLIT] >= 5
    assert comparison.mapping_for(Component.COMMUNICATION).kind is MappingKind.GENERALIZED
    # Every framework component maps somewhere.
    assert len(comparison.mappings) == len(list(Component))

    record(
        {
            "framework_components": float(len(comparison.mappings)),
            "chip_elements": float(len(list(CHIPStage))),
            "added": float(counts[MappingKind.ADDED]),
            "direct": float(counts[MappingKind.DIRECT]),
            "split": float(counts[MappingKind.SPLIT]),
            "generalized": float(counts[MappingKind.GENERALIZED]),
        }
    )
    print()
    print(comparison.summary())
