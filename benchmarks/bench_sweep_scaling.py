"""Benchmark: multi-core sweep throughput of the experiment layer.

Expands a 16-variant password-policy grid (distinct accounts × expiry ×
single sign-on) through :mod:`repro.experiments`, runs it serially and
through the process-parallel runner, verifies the two executions produce
identical results (per-variant seeded streams make execution order
irrelevant), and writes the timing report to ``BENCH_sweep.json`` at the
repository root.

On a multi-core machine the parallel run must beat the serial run; on a
single-core container the speedup is physically impossible, so the
benchmark records the core count and asserts only determinism (the
``parallel`` block in the report says which regime was measured).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_scaling.py -q

``BENCH_SWEEP_N`` (receivers per variant, default 40000) shrinks the run
for CI smoke checks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from repro.experiments import Experiment, ProcessBackend, ResultSet, SweepSpec
from repro.io import resultset_to_dict

SEED = 20080301
N_RECEIVERS = int(os.environ.get("BENCH_SWEEP_N", "40000"))
MAX_WORKERS = 4
# Below this per-variant size the real work is thin enough that process
# startup + IPC noise on a busy runner can flip the timing comparison, so
# the speedup assertion only engages for full-size runs.
SPEEDUP_ASSERT_MIN_N = 20_000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

GRID = SweepSpec(
    scenario="passwords",
    grid={
        "distinct_accounts": [4, 8, 12, 16],
        "expiry_days": [None, 90],
        "single_sign_on": [False, True],
    },
)


def _experiment() -> Experiment:
    return Experiment.from_sweep(
        "password-policy-sweep-scaling",
        GRID,
        n_receivers=N_RECEIVERS,
        seed=SEED,
        task="recall-passwords",
        seed_strategy="per-variant",
    )


def available_workers() -> int:
    """Pool size for the parallel leg: at least 2 so the process pool is
    genuinely exercised (and its determinism checked) even on one core."""
    cores = os.cpu_count() or 1
    return max(2, min(MAX_WORKERS, cores))


def measure_sweep() -> Dict[str, object]:
    """Time the sweep serially and in parallel; build the report payload."""
    experiment = _experiment()

    # Warm-up outside the timed region (imports, first-call numpy setup).
    Experiment.from_sweep(
        "warmup", GRID, n_receivers=1_000, seed=SEED, task="recall-passwords"
    ).run()

    start = time.perf_counter()
    serial = experiment.run()
    serial_seconds = time.perf_counter() - start

    workers = available_workers()
    start = time.perf_counter()
    parallel = experiment.run(backend=ProcessBackend(max_workers=workers))
    parallel_seconds = time.perf_counter() - start

    deterministic = resultset_to_dict(serial) == resultset_to_dict(parallel)
    total_receivers = len(experiment.variants) * N_RECEIVERS
    return {
        "benchmark": "sweep_scaling",
        "scenario": "passwords",
        "grid_axes": {name: list(values) for name, values in GRID.grid.items()},
        "n_variants": len(experiment.variants),
        "n_receivers_per_variant": N_RECEIVERS,
        "total_receivers": total_receivers,
        "seed": SEED,
        "seed_strategy": "per-variant",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "serial": {
            "seconds": round(serial_seconds, 6),
            "receivers_per_sec": round(total_receivers / serial_seconds, 1),
        },
        "parallel": {
            "cpu_count": os.cpu_count() or 1,
            "workers": workers,
            "seconds": round(parallel_seconds, 6),
            "receivers_per_sec": round(total_receivers / parallel_seconds, 1),
            "speedup": round(serial_seconds / parallel_seconds, 3),
            "beats_serial": parallel_seconds < serial_seconds,
            "multi_core": (os.cpu_count() or 1) > 1,
        },
        "deterministic_across_executors": deterministic,
        "variants": [
            {
                "variant": row.variant,
                "seed": row.seed,
                "protection_rate": round(row.metric("protection_rate"), 4),
            }
            for row in serial
        ],
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_sweep_scaling_writes_report():
    """≥12-variant sweep, deterministic across executors; parallel wins on multi-core."""
    report = measure_sweep()
    path = write_report(report)

    assert path.exists()
    assert report["n_variants"] >= 12
    # Serial and parallel executions must be bit-identical — per-variant
    # seeded streams make the numbers independent of execution order.
    assert report["deterministic_across_executors"]
    # Every variant carries its own derived seed (provenance for exact re-runs).
    seeds = [entry["seed"] for entry in report["variants"]]
    assert len(set(seeds)) == len(seeds)

    parallel = report["parallel"]
    if parallel["multi_core"] and N_RECEIVERS >= SPEEDUP_ASSERT_MIN_N:
        assert parallel["beats_serial"], (
            f"parallel ({parallel['workers']} workers) took {parallel['seconds']:.2f}s "
            f"vs serial {report['serial']['seconds']:.2f}s"
        )


def main() -> None:
    report = measure_sweep()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  grid: {report['n_variants']} variants x "
        f"{report['n_receivers_per_variant']:,} receivers"
    )
    print(
        f"  serial:   {report['serial']['seconds']:>8.3f}s  "
        f"{report['serial']['receivers_per_sec']:>12,.0f} receivers/s"
    )
    parallel = report["parallel"]
    print(
        f"  parallel: {parallel['seconds']:>8.3f}s  "
        f"{parallel['receivers_per_sec']:>12,.0f} receivers/s "
        f"({parallel['workers']} workers, speedup {parallel['speedup']:.2f}x)"
    )
    if not parallel["multi_core"]:
        print("  note: single-core machine — speedup not expected; determinism checked")


if __name__ == "__main__":
    main()
