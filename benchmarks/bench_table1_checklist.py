"""Benchmark: regenerate Table 1 (the framework checklist).

The paper's Table 1 lists, for every framework component, the questions to
ask and the factors to consider.  This benchmark regenerates the table from
the structured encoding, checks its inventory (15 components, every
component covered, the paper's signature factors present), and times the
generation plus an automated checklist fill-in over every modeled system.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import analyze_task
from repro.core.checklist import TABLE_1, all_questions, build_checklist
from repro.core.components import Component
from repro.io.tabular import render_table_1
from repro.systems import all_systems


def _regenerate_table() -> str:
    return render_table_1()


def test_table1_regeneration(benchmark, record):
    rendered = benchmark(_regenerate_table)

    # Inventory checks: one row per component, signature content present.
    assert len(TABLE_1) == 15
    assert {entry.component for entry in TABLE_1} == set(Component)
    assert "Severity of hazard" in rendered
    assert "Habituation" in rendered
    assert "Memorability" in rendered
    assert "GEMS" in rendered

    record(
        {
            "components": float(len(TABLE_1)),
            "questions": float(len(all_questions())),
            "factors": float(sum(len(entry.factors) for entry in TABLE_1)),
            "rendered_rows": float(len(rendered.splitlines()) - 2),
        }
    )
    print()
    print(rendered)


def test_table1_checklist_filled_for_every_system(benchmark, record):
    """Fill the Table-1 checklist automatically for every modeled task."""

    systems = all_systems()

    def fill_all() -> int:
        answered = 0
        for system in systems.values():
            for task in system.security_critical_tasks():
                analysis = analyze_task(task)
                answered += len(analysis.checklist.answered())
        return answered

    answered = benchmark(fill_all)
    blank = build_checklist()
    tasks = sum(len(system.security_critical_tasks()) for system in systems.values())
    assert answered == tasks * len(blank.answers)

    record(
        {
            "systems": float(len(systems)),
            "tasks": float(tasks),
            "questions_per_task": float(len(blank.answers)),
            "questions_answered": float(answered),
        }
    )
