"""Benchmark: sharded sweep execution vs. the serial backend.

Expands an 8-variant password-policy grid through :mod:`repro.experiments`,
runs it once through :class:`SerialBackend`, then splits it across
``SHARD_COUNT`` :class:`ShardBackend` invocations (one per simulated
host) with append-only JSONL checkpointing, merges the partial result
sets via :meth:`ResultSet.merge`, and writes the timing report to
``BENCH_shards.json`` at the repository root.

The numbers that matter:

* per-shard wall time — the cluster wall-clock when shards run on
  separate hosts is the **maximum**, not the sum;
* merge + checkpoint-IO overhead, which must stay a rounding error next
  to the simulation itself; and
* ``deterministic_across_backends`` — the merged shards must be
  bit-identical to the serial run (asserted, not just recorded).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard_scaling.py -q

``BENCH_SHARDS_N`` (receivers per variant, default 20000) shrinks the
run for CI smoke checks.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.experiments import Experiment, ResultSet, SerialBackend, ShardBackend, SweepSpec
from repro.io import load_checkpoint

SEED = 20260726
N_RECEIVERS = int(os.environ.get("BENCH_SHARDS_N", "20000"))
SHARD_COUNT = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shards.json"

GRID = SweepSpec(
    scenario="passwords",
    grid={
        "distinct_accounts": [4, 8, 12, 16],
        "single_sign_on": [False, True],
    },
)


def _experiment() -> Experiment:
    return Experiment.from_sweep(
        "password-shard-scaling",
        GRID,
        n_receivers=N_RECEIVERS,
        seed=SEED,
        task="recall-passwords",
    )


def measure_shards() -> Dict[str, object]:
    """Time the serial run and the sharded run; build the report payload."""
    experiment = _experiment()

    # Warm-up outside the timed region (imports, first-call numpy setup).
    Experiment.from_sweep(
        "warmup", GRID, n_receivers=1_000, seed=SEED, task="recall-passwords"
    ).run()

    start = time.perf_counter()
    serial = experiment.run(backend=SerialBackend())
    serial_seconds = time.perf_counter() - start

    shard_reports = []
    shard_sets = []
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as checkpoint_dir:
        for index in range(SHARD_COUNT):
            backend = ShardBackend(
                shard_index=index,
                shard_count=SHARD_COUNT,
                checkpoint_dir=checkpoint_dir,
            )
            start = time.perf_counter()
            partial = experiment.run(backend=backend)
            seconds = time.perf_counter() - start
            receivers = len(partial) * N_RECEIVERS
            shard_sets.append(partial)
            shard_reports.append(
                {
                    "shard_index": index,
                    "n_rows": len(partial),
                    "seconds": round(seconds, 6),
                    "receivers_per_sec": round(receivers / seconds, 1),
                }
            )
        checkpoint_bytes = sum(
            path.stat().st_size for path, _, _ in load_checkpoint(checkpoint_dir)
        )

    start = time.perf_counter()
    merged = ResultSet.merge(*shard_sets)
    merge_seconds = time.perf_counter() - start

    # Bit-identity modulo WALL_CLOCK_METRICS — the canonical filter; the
    # raw dicts differ in per-row machine-time telemetry by design.
    deterministic = merged.canonical_dict() == serial.canonical_dict()
    total_receivers = len(experiment.variants) * N_RECEIVERS
    sharded_seconds = sum(report["seconds"] for report in shard_reports)
    return {
        "benchmark": "shard_scaling",
        "scenario": "passwords",
        "grid_axes": {name: list(values) for name, values in GRID.grid.items()},
        "n_variants": len(experiment.variants),
        "n_receivers_per_variant": N_RECEIVERS,
        "total_receivers": total_receivers,
        "seed": SEED,
        "shard_count": SHARD_COUNT,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "serial": {
            "seconds": round(serial_seconds, 6),
            "receivers_per_sec": round(total_receivers / serial_seconds, 1),
        },
        "sharded": {
            "seconds_total": round(sharded_seconds, 6),
            "seconds_wall_if_parallel_hosts": round(
                max(report["seconds"] for report in shard_reports), 6
            ),
            "receivers_per_sec": round(total_receivers / sharded_seconds, 1),
            "overhead_vs_serial": round(sharded_seconds / serial_seconds, 3),
            "shards": shard_reports,
        },
        "merge": {"seconds": round(merge_seconds, 6), "n_rows": len(merged)},
        "checkpoint": {"files": SHARD_COUNT, "bytes": checkpoint_bytes},
        "deterministic_across_backends": deterministic,
        "variants": [
            {
                "variant": row.variant,
                "variant_hash": row.variant_hash,
                "seed": row.seed,
                "protection_rate": round(row.metric("protection_rate"), 4),
            }
            for row in serial
        ],
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_shard_scaling_writes_report():
    """2-shard run covers the grid disjointly and merges bit-identically."""
    report = measure_shards()
    path = write_report(report)

    assert path.exists()
    assert report["n_variants"] == 8
    # The shards partition the grid: row counts sum to the variant count.
    shard_rows = [shard["n_rows"] for shard in report["sharded"]["shards"]]
    assert sum(shard_rows) == report["n_variants"]
    # Merged shards must be bit-identical to the serial run.
    assert report["deterministic_across_backends"]
    # Checkpoint files were actually written.
    assert report["checkpoint"]["bytes"] > 0
    # Sharding's bookkeeping (checkpoint IO + merge) must stay cheap: the
    # summed shard time may not blow up over the serial run.
    assert report["sharded"]["overhead_vs_serial"] < 2.0


def main() -> None:
    report = measure_shards()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  grid: {report['n_variants']} variants x "
        f"{report['n_receivers_per_variant']:,} receivers, "
        f"{report['shard_count']} shards"
    )
    print(
        f"  serial:  {report['serial']['seconds']:>8.3f}s  "
        f"{report['serial']['receivers_per_sec']:>12,.0f} receivers/s"
    )
    sharded = report["sharded"]
    print(
        f"  sharded: {sharded['seconds_total']:>8.3f}s total "
        f"({sharded['seconds_wall_if_parallel_hosts']:.3f}s wall on "
        f"{report['shard_count']} hosts)  "
        f"{sharded['receivers_per_sec']:>12,.0f} receivers/s"
    )
    print(
        f"  merge:   {report['merge']['seconds']:>8.3f}s for "
        f"{report['merge']['n_rows']} rows; checkpoints "
        f"{report['checkpoint']['bytes']:,} bytes"
    )
    print(f"  deterministic across backends: {report['deterministic_across_backends']}")


if __name__ == "__main__":
    main()
