"""Benchmark: case study 3.1 — anti-phishing browser warnings.

Regenerates the quantitative reading of the Section-3.1 case study: a
simulated general-web population encounters a phishing page under four
warning conditions (Firefox active, IE active, IE passive, no warning).
The paper's conclusions — grounded in Egelman et al. and Wu et al. — that
this benchmark checks as *shape* (orderings and rough factors, not absolute
numbers):

* the active, blocking warnings protect the large majority of users;
* the passive IE warning protects only a small minority (many users never
  notice it) and should be replaced by an active warning;
* without any warning, almost nobody is protected;
* active-warning failures are dominated by users who decide to override,
  not by users who never notice the warning.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.simulation.metrics import SimulationResult, render_comparison_markdown
from repro.studies.registry import registry
from repro.systems import antiphishing, get_scenario
from repro.systems.antiphishing import WarningVariant

N_RECEIVERS = 600
SEED = 20080124


def _simulate_all_variants() -> Dict[str, SimulationResult]:
    # The scenario registry supplies the calibrated batch engine and the
    # case-study population; the no-warning baseline task is built directly
    # because it is not part of the registered system.
    scenario = get_scenario("antiphishing")
    simulator = scenario.simulator(n_receivers=N_RECEIVERS, seed=SEED)
    population = scenario.population()
    return {
        variant.value: simulator.simulate_task(antiphishing.task_for(variant), population)
        for variant in WarningVariant
    }


def test_case_antiphishing_protection_rates(benchmark, record):
    results = benchmark.pedantic(_simulate_all_variants, rounds=1, iterations=1)

    firefox = results[WarningVariant.FIREFOX.value]
    ie_active = results[WarningVariant.IE_ACTIVE.value]
    ie_passive = results[WarningVariant.IE_PASSIVE.value]
    no_warning = results[WarningVariant.NO_WARNING.value]

    # Shape check 1: active warnings protect the large majority.
    assert firefox.protection_rate() > 0.6
    assert ie_active.protection_rate() > 0.55
    # Shape check 2: the passive warning protects only a small minority.
    assert ie_passive.protection_rate() < 0.3
    # Shape check 3: ordering and rough factors (who wins, by how much).
    assert firefox.protection_rate() >= ie_active.protection_rate() - 0.05
    assert ie_active.protection_rate() > 2 * ie_passive.protection_rate()
    assert ie_passive.protection_rate() >= no_warning.protection_rate() - 0.02
    # Shape check 4: passive failures are attention failures; active failures
    # are intention (override) failures.
    assert ie_passive.notice_rate() < 0.6
    assert firefox.notice_rate() > 0.9
    from repro.core.stages import Stage

    firefox_attention_failures = firefox.stage_failure_fractions().get(Stage.ATTENTION_SWITCH, 0.0)
    assert firefox.intention_failure_rate() > firefox_attention_failures

    record(
        {
            "firefox.protection": firefox.protection_rate(),
            "ie_active.protection": ie_active.protection_rate(),
            "ie_passive.protection": ie_passive.protection_rate(),
            "no_warning.protection": no_warning.protection_rate(),
            "firefox.notice": firefox.notice_rate(),
            "ie_passive.notice": ie_passive.notice_rate(),
            "paper.active_protection_target": registry.value(
                "egelman2008", "active_warning_protection_rate"
            ),
            "paper.passive_protection_target": registry.value(
                "egelman2008", "passive_warning_protection_rate"
            ),
        }
    )
    print()
    print(render_comparison_markdown(results))


def test_case_antiphishing_failure_identification(benchmark, record):
    """The framework analysis singles out the passive warning's attention failure."""

    from repro.core.analysis import analyze_system
    from repro.core.components import Component

    system = antiphishing.build_system()
    analysis = benchmark(lambda: analyze_system(system))

    passive_task = antiphishing.task_for(WarningVariant.IE_PASSIVE).name
    passive_analysis = analysis.analysis_for(passive_task)
    assert passive_analysis.failures.by_component(Component.ATTENTION_SWITCH)
    assert "ie_passive" in analysis.weakest_task()

    record(
        {
            "tasks_analyzed": float(len(analysis.task_analyses)),
            "total_failures": float(len(analysis.failures)),
            "weakest_task_is_passive": float("ie_passive" in analysis.weakest_task()),
        }
    )
