"""Benchmark: batch-engine throughput at population scale.

Runs the anti-phishing scenario (IE active warning, calibrated
general-web population) through the vectorized batch engine at 250 / 1k /
10k / 100k receivers, records receivers/second at each scale, and writes
the results to ``BENCH_engine.json`` at the repository root so future PRs
can track the performance trajectory.

The 250-receiver point guards the small-N regime: per-call setup (plan
construction, chunk bookkeeping, record materialization) used to cost
small sweep variants ~25x the per-receiver rate of the 100k run, and the
deferred-record fix (PR 6) is only visible at this scale.  A counter-mode
(``rng_mode="counter"``) point at full scale records the Philox
counter-stream rate next to the default matrix rate.

Acceptance criterion tracked here: 100,000 receivers must simulate in
under 5 seconds.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_scaling.py -q
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from _timing import timed, utc_timestamp
from repro.systems import get_scenario

SCALES = (250, 1_000, 10_000, 100_000)
SEED = 20080124
SCENARIO = "antiphishing"
TASK = "heed-ie_active-warning"
ACCEPTANCE_N = 100_000
ACCEPTANCE_SECONDS = 5.0
SMALL_N = 250
SMALL_N_MIN_FRACTION = 0.1  # small-N rate must keep >= 10% of the 100k rate
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure_scaling() -> Dict[str, object]:
    """Time the batch engine at each scale and build the report payload."""
    scenario = get_scenario(SCENARIO)
    task = scenario.task(TASK)
    population = scenario.population()
    simulator = scenario.simulator(seed=SEED)

    # Warm-up outside the timed region (imports, first-call numpy setup).
    simulator.simulate_task(task, population, n_receivers=1_000, seed=SEED)

    rows: List[Dict[str, float]] = []
    for n_receivers in SCALES:
        elapsed, result = timed(
            lambda n=n_receivers: simulator.simulate_task(
                task, population, n_receivers=n, seed=SEED
            )
        )
        rows.append(
            {
                "n_receivers": n_receivers,
                "seconds": round(elapsed, 6),
                "receivers_per_sec": round(n_receivers / elapsed, 1),
                "protection_rate": round(result.protection_rate(), 4),
            }
        )

    # Counter-mode point at full scale: the O(1)-addressable Philox
    # streams must stay in the same performance class as the default
    # matrix draws.
    counter_elapsed, counter_result = timed(
        lambda: simulator.simulate_task(
            task, population, n_receivers=ACCEPTANCE_N, seed=SEED, rng_mode="counter"
        )
    )
    counter_row = {
        "rng_mode": "counter",
        "n_receivers": ACCEPTANCE_N,
        "seconds": round(counter_elapsed, 6),
        "receivers_per_sec": round(ACCEPTANCE_N / counter_elapsed, 1),
        "protection_rate": round(counter_result.protection_rate(), 4),
    }

    acceptance_row = next(row for row in rows if row["n_receivers"] == ACCEPTANCE_N)
    return {
        "benchmark": "engine_scaling",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "mode": "batch",
        "recorded_at": utc_timestamp(),
        "scales": rows,
        "counter_mode": counter_row,
        "acceptance": {
            "n_receivers": ACCEPTANCE_N,
            "threshold_seconds": ACCEPTANCE_SECONDS,
            "seconds": acceptance_row["seconds"],
            "passed": acceptance_row["seconds"] < ACCEPTANCE_SECONDS,
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_engine_scaling_writes_report():
    """100k receivers under the threshold; report lands in BENCH_engine.json."""
    report = measure_scaling()
    path = write_report(report)

    assert path.exists()
    acceptance = report["acceptance"]
    assert acceptance["passed"], (
        f"batch engine took {acceptance['seconds']:.2f}s for "
        f"{acceptance['n_receivers']} receivers "
        f"(threshold {acceptance['threshold_seconds']}s)"
    )
    rates = {row["n_receivers"]: row["receivers_per_sec"] for row in report["scales"]}
    # The small-N cliff stays fixed: per-call setup must not eat more
    # than ~10x of the full-scale per-receiver rate at n=250.
    assert rates[SMALL_N] >= SMALL_N_MIN_FRACTION * rates[ACCEPTANCE_N], (
        f"small-N cliff: n={SMALL_N} ran at {rates[SMALL_N]:,.0f} receivers/s, "
        f"below {SMALL_N_MIN_FRACTION:.0%} of the full-scale "
        f"{rates[ACCEPTANCE_N]:,.0f} receivers/s"
    )
    # Counter mode stays in the same performance class as matrix mode.
    assert report["counter_mode"]["receivers_per_sec"] > rates[ACCEPTANCE_N] / 10


def main() -> None:
    report = measure_scaling()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["scales"]:
        print(
            f"  n={row['n_receivers']:>7,}  {row['seconds']:>8.3f}s  "
            f"{row['receivers_per_sec']:>12,.0f} receivers/s"
        )
    counter = report["counter_mode"]
    print(
        f"  n={counter['n_receivers']:>7,}  {counter['seconds']:>8.3f}s  "
        f"{counter['receivers_per_sec']:>12,.0f} receivers/s  (rng_mode=counter)"
    )
    acceptance = report["acceptance"]
    status = "PASS" if acceptance["passed"] else "FAIL"
    print(
        f"  acceptance: {acceptance['n_receivers']:,} receivers in "
        f"{acceptance['seconds']:.3f}s (< {acceptance['threshold_seconds']}s) -> {status}"
    )


if __name__ == "__main__":
    main()
