"""Benchmark: batch-engine throughput at population scale.

Runs the anti-phishing scenario (IE active warning, calibrated
general-web population) through the vectorized batch engine at 250 / 1k /
10k / 100k receivers, records receivers/second at each scale, and writes
the results to ``BENCH_engine.json`` at the repository root so future PRs
can track the performance trajectory.

The 250-receiver point guards the small-N regime: per-call setup (plan
construction, chunk bookkeeping, record materialization) used to cost
small sweep variants ~25x the per-receiver rate of the 100k run, and the
deferred-record fix (PR 6) is only visible at this scale.  The scale rows
run the engine default, which is ``rng_mode="counter"`` as of PR 9; two
explicit full-scale points — ``matrix_mode`` and ``counter_mode``, the
per-mode *median* over interleaved repeats so machine noise hits both
equally and no mode wins by catching one lucky quiet slice — record the
head-to-head rate of the two sources.  The recorded ``counter_vs_matrix_ratio`` is the
number that justified flipping the default (the floor check enforces
>= 1.0 on the committed recording); with draw-buffer recycling the
counter source runs ~10-15% ahead on a quiet machine, but shared-runner
noise can still push a single run around — regenerate this file on a
quiet machine and re-run if a noisy ratio lands below 1.

Acceptance criterion tracked here: 100,000 receivers must simulate in
under 5 seconds.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_scaling.py -q
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Dict, List

from _timing import timed, utc_timestamp
from repro.systems import get_scenario

SCALES = (250, 1_000, 10_000, 100_000)
SEED = 20080124
SCENARIO = "antiphishing"
TASK = "heed-ie_active-warning"
ACCEPTANCE_N = 100_000
ACCEPTANCE_SECONDS = 5.0
SMALL_N = 250
SMALL_N_MIN_FRACTION = 0.1  # small-N rate must keep >= 10% of the 100k rate
MODE_REPEATS = 9  # interleaved repeats for the matrix/counter head-to-head
#: Live-run tolerance for counter >= matrix: a single noisy run may land a
#: few percent under parity without meaning a regression; the strict
#: >= 1.0 floor applies to the committed recording (bench_floor_check).
MODE_RATIO_TOLERANCE = 0.9
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure_scaling() -> Dict[str, object]:
    """Time the batch engine at each scale and build the report payload."""
    scenario = get_scenario(SCENARIO)
    task = scenario.task(TASK)
    population = scenario.population()
    simulator = scenario.simulator(seed=SEED)

    # Warm-up outside the timed region (imports, first-call numpy setup).
    simulator.simulate_task(task, population, n_receivers=1_000, seed=SEED)

    rows: List[Dict[str, float]] = []
    for n_receivers in SCALES:
        elapsed, result = timed(
            lambda n=n_receivers: simulator.simulate_task(
                task, population, n_receivers=n, seed=SEED
            )
        )
        rows.append(
            {
                "n_receivers": n_receivers,
                "seconds": round(elapsed, 6),
                "receivers_per_sec": round(n_receivers / elapsed, 1),
                "protection_rate": round(result.protection_rate(), 4),
            }
        )

    # Explicit full-scale head-to-head: the counter source (the default
    # since PR 9) against the matrix source it replaced.  Interleaved
    # repeats so scheduler noise hits both sides equally, and the
    # *median* per mode rather than the minimum: on a shared machine
    # min() rewards whichever mode caught the one quiet slice, while
    # the median pairs like with like across the same noise.
    samples: Dict[str, List[float]] = {"matrix": [], "counter": []}
    results = {}
    for _ in range(MODE_REPEATS):
        for rng_mode in ("matrix", "counter"):
            elapsed, result = timed(
                lambda m=rng_mode: simulator.simulate_task(
                    task, population, n_receivers=ACCEPTANCE_N, seed=SEED, rng_mode=m
                )
            )
            samples[rng_mode].append(elapsed)
            results[rng_mode] = result
    mode_seconds = {
        rng_mode: statistics.median(elapsed) for rng_mode, elapsed in samples.items()
    }

    def _mode_row(rng_mode: str) -> Dict[str, object]:
        return {
            "rng_mode": rng_mode,
            "n_receivers": ACCEPTANCE_N,
            "seconds": round(mode_seconds[rng_mode], 6),
            "receivers_per_sec": round(ACCEPTANCE_N / mode_seconds[rng_mode], 1),
            "protection_rate": round(results[rng_mode].protection_rate(), 4),
        }

    acceptance_row = next(row for row in rows if row["n_receivers"] == ACCEPTANCE_N)
    return {
        "benchmark": "engine_scaling",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "mode": "batch",
        "recorded_at": utc_timestamp(),
        "scales": rows,
        "matrix_mode": _mode_row("matrix"),
        "counter_mode": _mode_row("counter"),
        "counter_vs_matrix_ratio": round(
            mode_seconds["matrix"] / mode_seconds["counter"], 4
        ),
        "acceptance": {
            "n_receivers": ACCEPTANCE_N,
            "threshold_seconds": ACCEPTANCE_SECONDS,
            "seconds": acceptance_row["seconds"],
            "passed": acceptance_row["seconds"] < ACCEPTANCE_SECONDS,
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_engine_scaling_writes_report():
    """100k receivers under the threshold; report lands in BENCH_engine.json."""
    report = measure_scaling()
    path = write_report(report)

    assert path.exists()
    acceptance = report["acceptance"]
    assert acceptance["passed"], (
        f"batch engine took {acceptance['seconds']:.2f}s for "
        f"{acceptance['n_receivers']} receivers "
        f"(threshold {acceptance['threshold_seconds']}s)"
    )
    rates = {row["n_receivers"]: row["receivers_per_sec"] for row in report["scales"]}
    # The small-N cliff stays fixed: per-call setup must not eat more
    # than ~10x of the full-scale per-receiver rate at n=250.
    assert rates[SMALL_N] >= SMALL_N_MIN_FRACTION * rates[ACCEPTANCE_N], (
        f"small-N cliff: n={SMALL_N} ran at {rates[SMALL_N]:,.0f} receivers/s, "
        f"below {SMALL_N_MIN_FRACTION:.0%} of the full-scale "
        f"{rates[ACCEPTANCE_N]:,.0f} receivers/s"
    )
    # The default flip's justification: counter mode must not fall behind
    # the matrix source it replaced (tolerance for single-run noise; the
    # committed recording is held to >= 1.0 by bench_floor_check).
    ratio = report["counter_vs_matrix_ratio"]
    assert ratio >= MODE_RATIO_TOLERANCE, (
        f"counter mode ran at {ratio:.3f}x the matrix rate "
        f"(tolerance {MODE_RATIO_TOLERANCE}) — the default rng source "
        "has regressed below its predecessor"
    )


def main() -> None:
    report = measure_scaling()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["scales"]:
        print(
            f"  n={row['n_receivers']:>7,}  {row['seconds']:>8.3f}s  "
            f"{row['receivers_per_sec']:>12,.0f} receivers/s"
        )
    for key in ("matrix_mode", "counter_mode"):
        row = report[key]
        print(
            f"  n={row['n_receivers']:>7,}  {row['seconds']:>8.3f}s  "
            f"{row['receivers_per_sec']:>12,.0f} receivers/s  "
            f"(rng_mode={row['rng_mode']})"
        )
    print(f"  counter vs matrix: {report['counter_vs_matrix_ratio']:.3f}x")
    acceptance = report["acceptance"]
    status = "PASS" if acceptance["passed"] else "FAIL"
    print(
        f"  acceptance: {acceptance['n_receivers']:,} receivers in "
        f"{acceptance['seconds']:.3f}s (< {acceptance['threshold_seconds']}s) -> {status}"
    )


if __name__ == "__main__":
    main()
