"""Benchmark: batch-engine throughput at population scale.

Runs the anti-phishing scenario (IE active warning, calibrated
general-web population) through the vectorized batch engine at 1k / 10k /
100k receivers, records receivers/second at each scale, and writes the
results to ``BENCH_engine.json`` at the repository root so future PRs can
track the performance trajectory.

Acceptance criterion tracked here: 100,000 receivers must simulate in
under 5 seconds.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_scaling.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.systems import get_scenario

SCALES = (1_000, 10_000, 100_000)
SEED = 20080124
SCENARIO = "antiphishing"
TASK = "heed-ie_active-warning"
ACCEPTANCE_N = 100_000
ACCEPTANCE_SECONDS = 5.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure_scaling() -> Dict[str, object]:
    """Time the batch engine at each scale and build the report payload."""
    scenario = get_scenario(SCENARIO)
    task = scenario.task(TASK)
    population = scenario.population()
    simulator = scenario.simulator(seed=SEED)

    # Warm-up outside the timed region (imports, first-call numpy setup).
    simulator.simulate_task(task, population, n_receivers=1_000, seed=SEED)

    rows: List[Dict[str, float]] = []
    for n_receivers in SCALES:
        start = time.perf_counter()
        result = simulator.simulate_task(task, population, n_receivers=n_receivers, seed=SEED)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "n_receivers": n_receivers,
                "seconds": round(elapsed, 6),
                "receivers_per_sec": round(n_receivers / elapsed, 1),
                "protection_rate": round(result.protection_rate(), 4),
            }
        )

    acceptance_row = next(row for row in rows if row["n_receivers"] == ACCEPTANCE_N)
    return {
        "benchmark": "engine_scaling",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "mode": "batch",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scales": rows,
        "acceptance": {
            "n_receivers": ACCEPTANCE_N,
            "threshold_seconds": ACCEPTANCE_SECONDS,
            "seconds": acceptance_row["seconds"],
            "passed": acceptance_row["seconds"] < ACCEPTANCE_SECONDS,
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_engine_scaling_writes_report():
    """100k receivers under the threshold; report lands in BENCH_engine.json."""
    report = measure_scaling()
    path = write_report(report)

    assert path.exists()
    acceptance = report["acceptance"]
    assert acceptance["passed"], (
        f"batch engine took {acceptance['seconds']:.2f}s for "
        f"{acceptance['n_receivers']} receivers "
        f"(threshold {acceptance['threshold_seconds']}s)"
    )
    # Throughput should not collapse with scale: 100k receivers/sec must be
    # within an order of magnitude of the 1k rate.
    rates = [row["receivers_per_sec"] for row in report["scales"]]
    assert rates[-1] > rates[0] / 10


def main() -> None:
    report = measure_scaling()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["scales"]:
        print(
            f"  n={row['n_receivers']:>7,}  {row['seconds']:>8.3f}s  "
            f"{row['receivers_per_sec']:>12,.0f} receivers/s"
        )
    acceptance = report["acceptance"]
    status = "PASS" if acceptance["passed"] else "FAIL"
    print(
        f"  acceptance: {acceptance['n_receivers']:,} receivers in "
        f"{acceptance['seconds']:.3f}s (< {acceptance['threshold_seconds']}s) -> {status}"
    )


if __name__ == "__main__":
    main()
