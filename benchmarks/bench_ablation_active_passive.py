"""Ablation benchmark: the active–passive communication spectrum.

Section 2.1 places security communications on an active–passive spectrum
and warns that the choice trades off attention against habituation.  This
ablation sweeps the activeness of the anti-phishing warning from fully
passive to fully blocking and measures, with everything else held fixed:

* the simulated protection rate for a fresh (unhabituated) population,
* the notice rate after heavy habituation (30 prior exposures), and
* the habituation decay of the notice probability over repeated exposures.

Expected shape: protection rises monotonically (within noise) with
activeness; the habituation penalty is far larger for passive indicators,
reproducing the guidance that severe, action-critical hazards deserve
active warnings while frequent low-risk hazards should stay passive.

The activeness sweep is a one-axis grid of the parameterized
``antiphishing`` scenario run through :mod:`repro.experiments`; the shared
experiment seed holds the randomness fixed across grid points, so the
ablation isolates the activeness knob exactly as the hand-wired loop did.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core.probabilities import habituation_factor
from repro.experiments import Experiment, ResultSet, SweepSpec
from repro.simulation.habituation import simulate_exposure_series
from repro.simulation.rng import SimulationRng
from repro.systems import antiphishing

ACTIVENESS_SWEEP = (0.1, 0.35, 0.6, 0.8, 1.0)
N_RECEIVERS = 300
SEED = 77


def _sweep_experiment() -> Experiment:
    return Experiment.from_sweep(
        "antiphishing-activeness-ablation",
        SweepSpec(
            scenario="antiphishing",
            grid={"activeness": list(ACTIVENESS_SWEEP)},
            base={"variant": "ie_active"},
        ),
        n_receivers=N_RECEIVERS,
        seed=SEED,
        seed_strategy="shared",
    )


def test_ablation_activeness_sweep(benchmark, record):
    results: ResultSet = benchmark.pedantic(
        _sweep_experiment().run, rounds=1, iterations=1
    )

    rates: Dict[float, float] = {
        row.params["activeness"]: row.metric("protection_rate") for row in results
    }

    # Shape check: protection rises (within simulation noise) with activeness
    # and the fully blocking warning beats the fully passive one by a wide margin.
    values = [rates[a] for a in ACTIVENESS_SWEEP]
    assert rates[1.0] > rates[0.1] + 0.3
    assert all(later >= earlier - 0.08 for earlier, later in zip(values, values[1:]))

    record({f"protection@activeness={a}": rates[a] for a in ACTIVENESS_SWEEP})
    print()
    print(results.to_markdown(["protection_rate", "notice_rate"]))


def test_ablation_habituation_penalty(benchmark, record):
    """Habituation erodes passive indicators much faster than blocking warnings."""

    def decay_profile() -> Dict[str, float]:
        passive = antiphishing.ie_passive_warning()
        blocking = antiphishing.firefox_warning()
        profile: Dict[str, float] = {}
        for label, communication in (("passive", passive), ("blocking", blocking)):
            series = simulate_exposure_series(
                communication, exposures=30, rng=SimulationRng(SEED)
            )
            profile[f"{label}.initial_notice"] = series[0].notice_probability
            profile[f"{label}.final_notice"] = series[-1].notice_probability
            profile[f"{label}.habituation_factor_30"] = habituation_factor(
                30, communication.activeness
            )
        return profile

    profile = benchmark(decay_profile)

    assert profile["blocking.final_notice"] > 0.4
    assert profile["passive.final_notice"] < 0.3
    assert profile["blocking.habituation_factor_30"] > profile["passive.habituation_factor_30"]

    record(profile)


def test_ablation_habituated_population(benchmark, record):
    """Prior exposures (the habituation knob) depress the notice rate in-engine."""

    def habituated_vs_fresh() -> Dict[str, float]:
        experiment = Experiment.from_sweep(
            "antiphishing-habituation-ablation",
            SweepSpec(
                scenario="antiphishing",
                grid={"prior_exposures": [0, 30]},
                base={"variant": "ie_passive"},
            ),
            n_receivers=N_RECEIVERS,
            seed=SEED,
            seed_strategy="shared",
        )
        results = experiment.run()
        return {
            f"notice@exposures={row.params['prior_exposures']}": row.metric("notice_rate")
            for row in results
        }

    rates = benchmark.pedantic(habituated_vs_fresh, rounds=1, iterations=1)

    assert rates["notice@exposures=30"] < rates["notice@exposures=0"]
    record(rates)
