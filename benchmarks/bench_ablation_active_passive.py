"""Ablation benchmark: the active–passive communication spectrum.

Section 2.1 places security communications on an active–passive spectrum
and warns that the choice trades off attention against habituation.  This
ablation sweeps the activeness of the anti-phishing warning from fully
passive to fully blocking and measures, with everything else held fixed:

* the simulated protection rate for a fresh (unhabituated) population,
* the notice rate after heavy habituation (30 prior exposures), and
* the habituation decay of the notice probability over repeated exposures.

Expected shape: protection rises monotonically (within noise) with
activeness; the habituation penalty is far larger for passive indicators,
reproducing the guidance that severe, action-critical hazards deserve
active warnings while frequent low-risk hazards should stay passive.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.probabilities import attention_switch_probability, habituation_factor
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.simulation.habituation import simulate_exposure_series
from repro.simulation.rng import SimulationRng
from repro.systems import antiphishing
from repro.systems.antiphishing import WarningVariant

ACTIVENESS_SWEEP = (0.1, 0.35, 0.6, 0.8, 1.0)
N_RECEIVERS = 300
SEED = 77


def _sweep_protection() -> Dict[float, float]:
    simulator = HumanLoopSimulator(
        SimulationConfig(
            n_receivers=N_RECEIVERS, seed=SEED, calibration=antiphishing.calibration()
        )
    )
    population = antiphishing.population()
    base_task = antiphishing.task_for(WarningVariant.IE_ACTIVE)
    rates: Dict[float, float] = {}
    for activeness in ACTIVENESS_SWEEP:
        task = antiphishing.task_for(WarningVariant.IE_ACTIVE)
        task.communication = base_task.communication.with_activeness(activeness)
        result = simulator.simulate_task(task, population)
        rates[activeness] = result.protection_rate()
    return rates


def test_ablation_activeness_sweep(benchmark, record):
    rates = benchmark.pedantic(_sweep_protection, rounds=1, iterations=1)

    # Shape check: protection rises (within simulation noise) with activeness
    # and the fully blocking warning beats the fully passive one by a wide margin.
    values = [rates[a] for a in ACTIVENESS_SWEEP]
    assert rates[1.0] > rates[0.1] + 0.3
    assert all(later >= earlier - 0.08 for earlier, later in zip(values, values[1:]))

    record({f"protection@activeness={a}": rates[a] for a in ACTIVENESS_SWEEP})


def test_ablation_habituation_penalty(benchmark, record):
    """Habituation erodes passive indicators much faster than blocking warnings."""

    def decay_profile() -> Dict[str, float]:
        passive = antiphishing.ie_passive_warning()
        blocking = antiphishing.firefox_warning()
        profile: Dict[str, float] = {}
        for label, communication in (("passive", passive), ("blocking", blocking)):
            series = simulate_exposure_series(
                communication, exposures=30, rng=SimulationRng(SEED)
            )
            profile[f"{label}.initial_notice"] = series[0].notice_probability
            profile[f"{label}.final_notice"] = series[-1].notice_probability
            profile[f"{label}.habituation_factor_30"] = habituation_factor(
                30, communication.activeness
            )
        return profile

    profile = benchmark(decay_profile)

    assert profile["blocking.final_notice"] > 0.4
    assert profile["passive.final_notice"] < 0.3
    assert profile["blocking.habituation_factor_30"] > profile["passive.habituation_factor_30"]

    record(profile)
