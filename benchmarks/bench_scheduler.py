"""Benchmark: the cluster scheduler's fleet throughput and overhead.

Expands an 8-variant password-policy grid, runs it once serially, then
dispatches it as 4 shards over a 2-worker :class:`LocalProcessFleet`
through :class:`ShardScheduler` — the full coordination stack: process
launch, heartbeat streams, event log, checkpoint merge.  Three numbers
go to ``BENCH_scheduler.json`` at the repository root:

* **fleet throughput** — receivers/s through the scheduled fleet,
  end to end (the number the floor check guards);
* **scheduling overhead** — wall seconds for a second scheduler pass
  over the already-complete checkpoint directory: every worker finds its
  shard committed and exits, so what remains is pure dispatch + polling
  + heartbeat/event IO + merge;
* **crash recovery** — the same workload with one worker hard-killed
  mid-shard by the deterministic :class:`FaultInjector`, which must
  still complete via requeue with a bit-identical merged set.

Bit-identity (modulo ``WALL_CLOCK_METRICS``) is asserted at every
scale; wall-clock *comparisons* are recorded but never asserted on
single-core runners, where a process fleet cannot win.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scheduler.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_scheduler.py -q

``BENCH_SCHEDULER_N`` (receivers per variant, default 20000) shrinks
the run for CI smoke checks.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.cluster import (
    FaultInjector,
    LocalProcessFleet,
    ShardScheduler,
    read_scheduler_events,
)
from repro.experiments import Experiment, SerialBackend, SweepSpec

SEED = 20260726
N_RECEIVERS = int(os.environ.get("BENCH_SCHEDULER_N", "20000"))
SHARD_COUNT = 4
MAX_WORKERS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

GRID = SweepSpec(
    scenario="passwords",
    grid={
        "distinct_accounts": [4, 8, 12, 16],
        "single_sign_on": [False, True],
    },
)


def _experiment(name: str = "password-scheduler-bench") -> Experiment:
    return Experiment.from_sweep(
        name, GRID, n_receivers=N_RECEIVERS, seed=SEED, task="recall-passwords"
    )


def _scheduler(experiment: Experiment, checkpoint_dir: str, **overrides):
    kwargs = dict(
        shard_count=SHARD_COUNT,
        transport=LocalProcessFleet(max_workers=MAX_WORKERS),
        heartbeat_timeout=120.0,
        poll_interval=0.02,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    kwargs.update(overrides)
    return ShardScheduler(experiment, checkpoint_dir=checkpoint_dir, **kwargs)


def measure_scheduler() -> Dict[str, object]:
    """Time serial vs. scheduled-fleet vs. crash-recovery; build the report."""
    experiment = _experiment()

    # Warm-up outside the timed region (imports, first-call numpy setup).
    Experiment.from_sweep(
        "warmup", GRID, n_receivers=1_000, seed=SEED, task="recall-passwords"
    ).run()

    start = time.perf_counter()
    serial = experiment.run(backend=SerialBackend())
    serial_seconds = time.perf_counter() - start
    canonical_serial = serial.canonical_dict()

    with tempfile.TemporaryDirectory(prefix="bench-scheduler-") as checkpoint_dir:
        start = time.perf_counter()
        merged = _scheduler(experiment, checkpoint_dir).run()
        fleet_seconds = time.perf_counter() - start
        assert merged.canonical_dict() == canonical_serial
        clean_requeues = len(read_scheduler_events(checkpoint_dir, kind="requeued"))

        # Second pass over the finished directory: workers launch, find
        # every row committed, and exit — pure coordination cost.
        start = time.perf_counter()
        again = _scheduler(experiment, checkpoint_dir).run()
        overhead_seconds = time.perf_counter() - start
        assert again.canonical_dict() == canonical_serial

    # Crash drill: kill the shard-1 worker after its first committed row;
    # the scheduler must requeue and still merge bit-identically.
    with tempfile.TemporaryDirectory(prefix="bench-scheduler-kill-") as crash_dir:
        scheduler = _scheduler(
            experiment,
            crash_dir,
            fault_injector=FaultInjector(shards=(1,), kill_after_rows=1),
        )
        start = time.perf_counter()
        recovered = scheduler.run()
        recovery_seconds = time.perf_counter() - start
        assert recovered.canonical_dict() == canonical_serial
        requeues = len(read_scheduler_events(crash_dir, kind="requeued"))
        failures = len(read_scheduler_events(crash_dir, kind="worker-failed"))

    total_receivers = len(experiment.variants) * N_RECEIVERS
    return {
        "benchmark": "cluster_scheduler",
        "scenario": "passwords",
        "grid_axes": {name: list(values) for name, values in GRID.grid.items()},
        "n_variants": len(experiment.variants),
        "n_receivers_per_variant": N_RECEIVERS,
        "total_receivers": total_receivers,
        "seed": SEED,
        "shard_count": SHARD_COUNT,
        "max_workers": MAX_WORKERS,
        "cpu_count": os.cpu_count(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "serial": {
            "seconds": round(serial_seconds, 6),
            "receivers_per_sec": round(total_receivers / serial_seconds, 1),
        },
        "fleet": {
            "seconds": round(fleet_seconds, 6),
            "receivers_per_sec": round(total_receivers / fleet_seconds, 1),
            "speedup_vs_serial": round(serial_seconds / fleet_seconds, 3),
            "requeues": clean_requeues,
        },
        "scheduling_overhead": {
            "seconds": round(overhead_seconds, 6),
            "note": "second pass over a complete checkpoint: dispatch + "
            "polling + telemetry IO + merge, zero simulation",
        },
        "crash_recovery": {
            "seconds": round(recovery_seconds, 6),
            "worker_failures": failures,
            "requeues": requeues,
            "slowdown_vs_clean_fleet": round(recovery_seconds / fleet_seconds, 3),
        },
        "deterministic_across_schedulers": True,  # asserted above
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_scheduler_writes_report():
    """Fleet run, overhead pass, and kill-one-worker drill all hold up.

    Bit-identity is asserted inside :func:`measure_scheduler` at every
    scale.  Wall-clock comparisons are skipped — not failed — on
    single-core runners, where a two-worker fleet cannot beat serial.
    """
    report = measure_scheduler()
    path = write_report(report)

    assert path.exists()
    assert report["n_variants"] == 8
    assert report["fleet"]["requeues"] == 0, "clean run must not requeue"
    assert report["crash_recovery"]["worker_failures"] == 1
    assert report["crash_recovery"]["requeues"] == 1
    assert report["deterministic_across_schedulers"]
    if (os.cpu_count() or 1) < 2:
        print("\n  single-core runner: wall-clock comparison skipped, not failed")
        return
    # Coordination must not swamp the work: a 2-worker fleet may not run
    # grossly slower than serial even with process start-up costs.
    assert report["fleet"]["seconds"] < 4.0 * report["serial"]["seconds"], (
        f"fleet took {report['fleet']['seconds']:.3f}s vs serial "
        f"{report['serial']['seconds']:.3f}s — scheduling overhead blew up"
    )


def main() -> None:
    report = measure_scheduler()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  grid: {report['n_variants']} variants x "
        f"{report['n_receivers_per_variant']:,} receivers, "
        f"{report['shard_count']} shards / {report['max_workers']} workers"
    )
    print(
        f"  serial:   {report['serial']['seconds']:>8.3f}s  "
        f"{report['serial']['receivers_per_sec']:>12,.0f} receivers/s"
    )
    fleet = report["fleet"]
    print(
        f"  fleet:    {fleet['seconds']:>8.3f}s  "
        f"{fleet['receivers_per_sec']:>12,.0f} receivers/s "
        f"({fleet['speedup_vs_serial']:.2f}x serial on "
        f"{report['cpu_count']} cores)"
    )
    print(
        f"  overhead: {report['scheduling_overhead']['seconds']:>8.3f}s "
        f"(complete-checkpoint pass: coordination only)"
    )
    crash = report["crash_recovery"]
    print(
        f"  recovery: {crash['seconds']:>8.3f}s with {crash['worker_failures']} "
        f"injected kill ({crash['requeues']} requeue(s), "
        f"{crash['slowdown_vs_clean_fleet']:.2f}x clean fleet)"
    )


if __name__ == "__main__":
    main()
