"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table, a figure,
or a case-study conclusion), asserts the *shape* of the result (orderings,
rough factors — not absolute numbers), prints the regenerated rows, and
stores the headline numbers in ``benchmark.extra_info`` so they appear in
pytest-benchmark's JSON output.
"""

from __future__ import annotations

from typing import Dict

import pytest


def record_rows(benchmark, rows: Dict[str, float]) -> None:
    """Attach headline metrics to the benchmark record and print them."""
    for key, value in rows.items():
        benchmark.extra_info[key] = value
    width = max(len(key) for key in rows) if rows else 0
    print()
    for key, value in rows.items():
        if isinstance(value, float):
            print(f"  {key.ljust(width)}  {value:.3f}")
        else:
            print(f"  {key.ljust(width)}  {value}")


@pytest.fixture
def record(benchmark):
    """Fixture returning a helper that records headline rows on the benchmark."""

    def _record(rows: Dict[str, float]) -> None:
        record_rows(benchmark, rows)

    return _record
