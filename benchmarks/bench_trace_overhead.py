"""Benchmark: cost of the stage-outcome trace layer (ISSUE 4).

Runs the multi-round workload of ``bench_multi_round.py`` (anti-phishing
IE passive warning, 100k receivers x 10 rounds) twice — once with the
per-stage funnel trace disabled (``trace=False``) and once with it
enabled — and records both throughputs plus their ratio in
``BENCH_trace.json`` at the repository root.

Acceptance criteria tracked here (asserted at full size only):

* **trace-off is free**: disabling the trace must keep at least 90% of
  the throughput recorded in ``BENCH_rounds.json`` (the engine's
  recorded multi-round numbers) — i.e. the kernel refactor did not tax
  the untraced hot path.
* **trace-on is cheap**: the traced run must keep at least 90% of the
  untraced throughput.  The fused-trace kernel (PR 6) computes the
  funnel counts inside the stage traversal — ``trace="counts"`` — so
  tracing no longer allocates the full per-stage boolean trace just to
  reduce it to eight integers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py -q

``BENCH_TRACE_N`` / ``BENCH_TRACE_ROUNDS`` shrink the run for CI smoke
checks; the throughput assertions only engage at full size.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from _timing import best_of, utc_timestamp
from repro.systems import get_scenario

SEED = 20080326
SCENARIO = "antiphishing"
TASK = "heed-ie_passive-warning"
N_RECEIVERS = int(os.environ.get("BENCH_TRACE_N", "100000"))
ROUNDS = int(os.environ.get("BENCH_TRACE_ROUNDS", "10"))
RECOVERY_RATE = 0.1
ACCEPTANCE_N = 100_000
ACCEPTANCE_ROUNDS = 10
TRACE_OFF_FLOOR_VS_RECORDED = 0.90
TRACE_ON_FLOOR_VS_OFF = 0.90
REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_trace.json"
ROUNDS_BASELINE = REPO_ROOT / "BENCH_rounds.json"


def _rate(trace: bool) -> Dict[str, float]:
    """Best-of-3 receiver-rounds/second for one trace setting."""
    scenario = get_scenario(SCENARIO)
    best, result = best_of(
        lambda: scenario.simulate(
            N_RECEIVERS,
            seed=SEED,
            task=TASK,
            rounds=ROUNDS,
            recovery_rate=RECOVERY_RATE,
            trace=trace,
        )
    )
    return {
        "seconds": round(best, 6),
        "receiver_rounds_per_sec": round(result.receiver_rounds / best, 1),
        "has_funnel": result.funnel is not None,
    }


def _recorded_rounds_rate() -> Optional[float]:
    if not ROUNDS_BASELINE.exists():
        return None
    payload = json.loads(ROUNDS_BASELINE.read_text())
    return float(payload.get("receiver_rounds_per_sec", 0.0)) or None


def measure_trace_overhead() -> Dict[str, object]:
    scenario = get_scenario(SCENARIO)
    # Warm-up outside the timed region.
    scenario.simulate(1_000, seed=SEED, task=TASK, rounds=3, recovery_rate=RECOVERY_RATE)

    off = _rate(trace=False)
    on = _rate(trace=True)
    recorded = _recorded_rounds_rate()
    full_size = N_RECEIVERS >= ACCEPTANCE_N and ROUNDS >= ACCEPTANCE_ROUNDS
    on_vs_off = on["receiver_rounds_per_sec"] / off["receiver_rounds_per_sec"]
    off_vs_recorded = (
        off["receiver_rounds_per_sec"] / recorded if recorded else None
    )
    return {
        "benchmark": "trace_overhead",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "n_receivers": N_RECEIVERS,
        "rounds": ROUNDS,
        "recovery_rate": RECOVERY_RATE,
        "recorded_at": utc_timestamp(),
        "trace_off": off,
        "trace_on": on,
        "trace_on_vs_off": round(on_vs_off, 4),
        "recorded_rounds_rate": recorded,
        "trace_off_vs_recorded": (
            round(off_vs_recorded, 4) if off_vs_recorded is not None else None
        ),
        "acceptance": {
            "measured_at_full_size": full_size,
            "trace_off_floor_vs_recorded": TRACE_OFF_FLOOR_VS_RECORDED,
            "trace_on_floor_vs_off": TRACE_ON_FLOOR_VS_OFF,
            "passed": (not full_size) or (
                (off_vs_recorded is None or off_vs_recorded >= TRACE_OFF_FLOOR_VS_RECORDED)
                and on_vs_off >= TRACE_ON_FLOOR_VS_OFF
            ),
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_trace_overhead_writes_report():
    report = measure_trace_overhead()
    path = write_report(report)
    assert path.exists()
    assert report["trace_on"]["has_funnel"] is True
    assert report["trace_off"]["has_funnel"] is False
    acceptance = report["acceptance"]
    assert acceptance["passed"], (
        f"trace overhead out of bounds: trace-off/recorded="
        f"{report['trace_off_vs_recorded']}, trace-on/off={report['trace_on_vs_off']}"
    )


def main() -> None:
    report = measure_trace_overhead()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  trace off  {report['trace_off']['receiver_rounds_per_sec']:,.0f} rr/s   "
        f"trace on  {report['trace_on']['receiver_rounds_per_sec']:,.0f} rr/s   "
        f"(on/off {report['trace_on_vs_off']:.2f})"
    )
    if report["trace_off_vs_recorded"] is not None:
        print(
            f"  trace-off vs recorded BENCH_rounds rate: "
            f"{report['trace_off_vs_recorded']:.2f}"
        )
    status = "PASS" if report["acceptance"]["passed"] else "FAIL"
    scope = (
        "full size"
        if report["acceptance"]["measured_at_full_size"]
        else "smoke size (not asserted)"
    )
    print(f"  acceptance ({scope}) -> {status}")


if __name__ == "__main__":
    main()
