"""Benchmark: HTTP service throughput, cached vs. uncached (ISSUE 10).

Starts a real loopback :mod:`repro.service` server (stdlib threading
WSGI, port 0) and measures request/s through it four ways:

* **analyze, uncached** — every request is a distinct variant
  (``distinct_accounts`` sweeps one value per request), so each one
  runs the analytic walk;
* **analyze, cached** — the same request repeated: after the first,
  every response is the stored bytes of the first computation;
* **simulate, uncached** — a small batch simulation per request, each
  under a fresh seed (distinct cache key, same variant);
* **simulate, cached** — the same simulate request repeated.

The report goes to ``BENCH_service.json`` at the repository root; the
cached small-simulate rate is the number ``bench_floor_check`` guards.
Bit-identity is asserted at every scale: the cached responses must be
byte-for-byte the first computation's payload, and the health endpoint
must account every hit.  Wall-clock *ratios* are recorded, not
asserted — on a noisy runner the analytic walk is cheaper than the
HTTP round trip itself, so only the simulate path is expected to show
a cache speedup, and only at real scale.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q

``BENCH_SERVICE_REQUESTS`` (requests per measurement, default 50) and
``BENCH_SERVICE_N`` (receivers per simulate request, default 2000)
shrink the run for CI smoke checks.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.service import ServiceConfig, create_app
from repro.service.cli import build_server

REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "50"))
N_RECEIVERS = int(os.environ.get("BENCH_SERVICE_N", "2000"))
SEED = 20080124
SCENARIO = "passwords"
TASK = "recall-passwords"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _request(
    base: str, method: str, path: str, body: Optional[Dict[str, Any]] = None
) -> Tuple[int, Dict[str, Any]]:
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req) as response:
        return response.status, json.loads(response.read())


class _Server:
    """A loopback service over a temporary data directory."""

    def __enter__(self) -> str:
        self._data_dir = tempfile.mkdtemp(prefix="bench-service-")
        self._app = create_app(ServiceConfig(data_dir=self._data_dir))
        self._server = build_server(self._app, "127.0.0.1", 0)
        threading.Thread(target=self._server.serve_forever, daemon=True).start()
        return f"http://127.0.0.1:{self._server.server_port}"

    def __exit__(self, *exc_info: object) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._app.state.close()
        shutil.rmtree(self._data_dir, ignore_errors=True)


def _drive(
    base: str, bodies: Iterator[Tuple[str, Dict[str, Any]]], count: int
) -> Tuple[float, Dict[str, Any]]:
    """Time ``count`` sequential round trips; return (seconds, last payload)."""
    last: Dict[str, Any] = {}
    start = time.perf_counter()
    for _ in range(count):
        path, body = next(bodies)
        status, last = _request(base, "POST", path, body)
        assert status == 200, last
    return time.perf_counter() - start, last


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else 0.0


def measure_service() -> Dict[str, object]:
    report: Dict[str, object]
    with _Server() as base:

        def analyze_uncached() -> Iterator[Tuple[str, Dict[str, Any]]]:
            accounts = 0
            while True:
                accounts += 1  # distinct variant per request: always a miss
                yield "/analyze", {
                    "scenario": SCENARIO,
                    "params": {"distinct_accounts": accounts},
                }

        def analyze_cached() -> Iterator[Tuple[str, Dict[str, Any]]]:
            while True:
                yield "/analyze", {"scenario": SCENARIO}

        def simulate_uncached() -> Iterator[Tuple[str, Dict[str, Any]]]:
            seed = SEED
            while True:
                seed += 1  # fresh seed per request: distinct cache key
                yield "/simulate", {
                    "scenario": SCENARIO,
                    "n_receivers": N_RECEIVERS,
                    "seed": seed,
                    "task": TASK,
                }

        def simulate_cached() -> Iterator[Tuple[str, Dict[str, Any]]]:
            while True:
                yield "/simulate", {
                    "scenario": SCENARIO,
                    "n_receivers": N_RECEIVERS,
                    "seed": SEED,
                    "task": TASK,
                }

        # Warm-up: first import of the engine, first socket accept.
        _request(base, "GET", "/health")
        _request(base, "POST", "/analyze", {"scenario": SCENARIO})

        analyze_miss_seconds, _ = _drive(base, analyze_uncached(), REQUESTS)

        # Prime the cached-analyze point, then every timed request hits.
        _, first_analyze = _drive(base, analyze_cached(), 1)
        analyze_hit_seconds, last_analyze = _drive(base, analyze_cached(), REQUESTS)
        assert last_analyze["row"] == first_analyze["row"]
        assert last_analyze["cache"] == {"served": 1, "computed": 0}

        simulate_miss_seconds, _ = _drive(base, simulate_uncached(), REQUESTS)

        _, first_simulate = _drive(base, simulate_cached(), 1)
        simulate_hit_seconds, last_simulate = _drive(base, simulate_cached(), REQUESTS)
        # Bit-identity over HTTP: the exact bytes of the first computation.
        assert last_simulate["resultset"] == first_simulate["resultset"]
        assert last_simulate["cache"] == {"served": 1, "computed": 0}

        _, health = _request(base, "GET", "/health")
        cache_stats = health["cache"]
        assert cache_stats["hits"] >= 2 * REQUESTS

        report = {
            "benchmark": "service_http",
            "scenario": SCENARIO,
            "task": TASK,
            "requests_per_measurement": REQUESTS,
            "n_receivers_per_simulate": N_RECEIVERS,
            "seed": SEED,
            "cpu_count": os.cpu_count(),
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "analyze": {
                "uncached": {
                    "seconds": round(analyze_miss_seconds, 6),
                    "requests_per_sec": round(
                        _rate(REQUESTS, analyze_miss_seconds), 1
                    ),
                },
                "cached": {
                    "seconds": round(analyze_hit_seconds, 6),
                    "requests_per_sec": round(
                        _rate(REQUESTS, analyze_hit_seconds), 1
                    ),
                },
                "cached_speedup": round(
                    analyze_miss_seconds / analyze_hit_seconds, 3
                ),
            },
            "simulate": {
                "uncached": {
                    "seconds": round(simulate_miss_seconds, 6),
                    "requests_per_sec": round(
                        _rate(REQUESTS, simulate_miss_seconds), 1
                    ),
                },
                "cached": {
                    "seconds": round(simulate_hit_seconds, 6),
                    "requests_per_sec": round(
                        _rate(REQUESTS, simulate_hit_seconds), 1
                    ),
                },
                "cached_speedup": round(
                    simulate_miss_seconds / simulate_hit_seconds, 3
                ),
            },
            "cache_stats": cache_stats,
            "bit_identical_cached_responses": True,  # asserted above
        }
    return report


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_service_writes_report():
    """Loopback throughput measured; cached responses bit-identical."""
    report = measure_service()
    path = write_report(report)
    assert path.exists()
    assert report["bit_identical_cached_responses"]
    simulate = report["simulate"]
    assert simulate["cached"]["requests_per_sec"] > 0
    assert simulate["uncached"]["requests_per_sec"] > 0


def main() -> None:
    report = measure_service()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  {report['requests_per_measurement']} requests per measurement, "
        f"{report['n_receivers_per_simulate']:,} receivers per simulate"
    )
    for endpoint in ("analyze", "simulate"):
        block = report[endpoint]
        print(
            f"  {endpoint:>8}: uncached "
            f"{block['uncached']['requests_per_sec']:>8,.1f} req/s, cached "
            f"{block['cached']['requests_per_sec']:>8,.1f} req/s "
            f"({block['cached_speedup']:.2f}x)"
        )


if __name__ == "__main__":
    main()
