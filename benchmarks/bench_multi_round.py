"""Benchmark: multi-round engine throughput and habituation decay.

Runs the anti-phishing scenario (IE passive warning — the design most
exposed to habituation) through the multi-round batch engine: the same
pre-drawn population advances through repeated hazard encounters while the
engine threads per-receiver exposure state between rounds.  Records
receiver-rounds/second, the per-round notice-rate decay curve, and a
determinism check (two identical runs must agree round by round), then
writes the report to ``BENCH_rounds.json`` at the repository root.

Acceptance criterion tracked here: 100,000 receivers x 10 rounds (one
million receiver-round encounters) must sustain at least 0.5M
receiver-rounds/second.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_multi_round.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_multi_round.py -q

``BENCH_ROUNDS_N`` (receivers, default 100000) and ``BENCH_ROUNDS_ROUNDS``
(rounds, default 10) shrink the run for CI smoke checks; the throughput
assertion only engages at full size, determinism is asserted always.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

from _timing import timed, utc_timestamp
from repro.systems import get_scenario

SEED = 20080326
SCENARIO = "antiphishing"
TASK = "heed-ie_passive-warning"
N_RECEIVERS = int(os.environ.get("BENCH_ROUNDS_N", "100000"))
ROUNDS = int(os.environ.get("BENCH_ROUNDS_ROUNDS", "10"))
RECOVERY_RATE = 0.1
ACCEPTANCE_N = 100_000
ACCEPTANCE_ROUNDS = 10
ACCEPTANCE_RECEIVER_ROUNDS_PER_SEC = 500_000.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_rounds.json"


def _run(scenario):
    return scenario.simulate(
        N_RECEIVERS,
        seed=SEED,
        task=TASK,
        rounds=ROUNDS,
        recovery_rate=RECOVERY_RATE,
    )


def measure_multi_round() -> Dict[str, object]:
    """Time the multi-round engine and build the report payload."""
    scenario = get_scenario(SCENARIO)

    # Warm-up outside the timed region (imports, first-call numpy setup).
    scenario.simulate(1_000, seed=SEED, task=TASK, rounds=3, recovery_rate=RECOVERY_RATE)

    elapsed, result = timed(lambda: _run(scenario))

    rerun = _run(scenario)
    deterministic = (
        result.round_summaries() == rerun.round_summaries()
        and result.outcome_counts() == rerun.outcome_counts()
    )

    receiver_rounds = result.receiver_rounds
    notice_curve = result.round_metric("notice_rate")
    full_size = N_RECEIVERS >= ACCEPTANCE_N and ROUNDS >= ACCEPTANCE_ROUNDS
    rate = receiver_rounds / elapsed
    return {
        "benchmark": "multi_round",
        "scenario": SCENARIO,
        "task": TASK,
        "seed": SEED,
        "mode": "batch",
        "n_receivers": N_RECEIVERS,
        "rounds": ROUNDS,
        "recovery_rate": RECOVERY_RATE,
        "receiver_rounds": receiver_rounds,
        "recorded_at": utc_timestamp(),
        "seconds": round(elapsed, 6),
        "receiver_rounds_per_sec": round(rate, 1),
        "deterministic": deterministic,
        "rounds_series": {
            "notice_rate": [round(value, 4) for value in notice_curve],
            "protection_rate": [
                round(value, 4) for value in result.round_metric("protection_rate")
            ],
        },
        "acceptance": {
            "n_receivers": ACCEPTANCE_N,
            "rounds": ACCEPTANCE_ROUNDS,
            "threshold_receiver_rounds_per_sec": ACCEPTANCE_RECEIVER_ROUNDS_PER_SEC,
            "measured_at_full_size": full_size,
            "receiver_rounds_per_sec": round(rate, 1),
            "passed": (not full_size) or rate >= ACCEPTANCE_RECEIVER_ROUNDS_PER_SEC,
        },
    }


def write_report(report: Dict[str, object]) -> Path:
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return OUTPUT


def test_multi_round_writes_report():
    """Throughput above threshold (full size), determinism and decay always."""
    report = measure_multi_round()
    path = write_report(report)

    assert path.exists()
    assert report["deterministic"], "two identical multi-round runs diverged"
    notice = report["rounds_series"]["notice_rate"]
    assert notice[-1] < notice[0], "habituation decay absent from the round series"
    acceptance = report["acceptance"]
    assert acceptance["passed"], (
        f"multi-round engine sustained {acceptance['receiver_rounds_per_sec']:,.0f} "
        f"receiver-rounds/s "
        f"(threshold {acceptance['threshold_receiver_rounds_per_sec']:,.0f})"
    )


def main() -> None:
    report = measure_multi_round()
    path = write_report(report)
    print(f"wrote {path}")
    print(
        f"  n={report['n_receivers']:,} x {report['rounds']} rounds  "
        f"{report['seconds']:.3f}s  "
        f"{report['receiver_rounds_per_sec']:,.0f} receiver-rounds/s"
    )
    notice = report["rounds_series"]["notice_rate"]
    print(f"  notice rate round 0 -> {len(notice) - 1}: {notice[0]:.3f} -> {notice[-1]:.3f}")
    acceptance = report["acceptance"]
    status = "PASS" if acceptance["passed"] else "FAIL"
    scope = "full size" if acceptance["measured_at_full_size"] else "smoke size (not asserted)"
    print(
        f"  acceptance ({scope}): "
        f"{acceptance['receiver_rounds_per_sec']:,.0f} receiver-rounds/s "
        f"(>= {acceptance['threshold_receiver_rounds_per_sec']:,.0f}) -> {status}"
    )


if __name__ == "__main__":
    main()
