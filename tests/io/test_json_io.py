"""Tests for JSON serialization of the framework models."""

import json

import pytest

from repro.core.exceptions import SerializationError
from repro.io import json_io
from repro.io.json_io import (
    analysis_to_dict,
    communication_from_dict,
    communication_to_dict,
    dumps_system,
    environment_from_dict,
    environment_to_dict,
    failure_to_dict,
    load_system,
    loads_system,
    receiver_from_dict,
    receiver_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.core.analysis import analyze_task
from repro.core.receiver import expert_receiver
from repro.systems import antiphishing, passwords


class TestCommunicationRoundTrip:
    def test_round_trip_preserves_fields(self, blocking_warning):
        payload = communication_to_dict(blocking_warning)
        restored = communication_from_dict(payload)
        assert restored == blocking_warning

    def test_round_trip_through_json_text(self, passive_indicator):
        payload = json.loads(json.dumps(communication_to_dict(passive_indicator)))
        assert communication_from_dict(payload) == passive_indicator

    def test_invalid_payload_raises(self):
        with pytest.raises(SerializationError):
            communication_from_dict({"name": "x", "comm_type": "not-a-type"})


class TestEnvironmentAndReceiverRoundTrip:
    def test_environment_round_trip(self, busy_environment):
        restored = environment_from_dict(environment_to_dict(busy_environment))
        assert len(restored.stimuli) == len(busy_environment.stimuli)
        assert restored.distraction_level == pytest.approx(busy_environment.distraction_level)

    def test_environment_invalid_kind_raises(self):
        with pytest.raises(SerializationError):
            environment_from_dict({"stimuli": [{"kind": "nonsense"}]})

    def test_receiver_round_trip(self):
        receiver = expert_receiver()
        restored = receiver_from_dict(receiver_to_dict(receiver))
        assert restored == receiver

    def test_receiver_invalid_payload(self):
        with pytest.raises(SerializationError):
            receiver_from_dict({"knowledge": {"security_knowledge": 5.0}})


class TestTaskAndSystemRoundTrip:
    def test_task_round_trip(self, warning_task):
        restored = task_from_dict(task_to_dict(warning_task))
        assert restored.name == warning_task.name
        assert restored.communication == warning_task.communication
        assert restored.capability_requirements == warning_task.capability_requirements
        assert len(restored.receivers) == len(warning_task.receivers)

    def test_task_without_communication(self):
        from repro.core.task import HumanSecurityTask

        task = HumanSecurityTask(name="silent", desired_action="act")
        restored = task_from_dict(task_to_dict(task))
        assert restored.communication is None

    def test_system_round_trip_for_case_studies(self):
        for system in (antiphishing.build_system(), passwords.build_system()):
            restored = system_from_dict(system_to_dict(system))
            assert restored.name == system.name
            assert [task.name for task in restored.tasks] == [task.name for task in system.tasks]
            restored.validate()

    def test_dumps_loads_round_trip(self, small_system):
        text = dumps_system(small_system)
        restored = loads_system(text)
        assert restored.name == small_system.name
        assert len(restored) == len(small_system)

    def test_loads_rejects_invalid_json(self):
        with pytest.raises(SerializationError):
            loads_system("{not json")

    def test_save_and_load_file(self, small_system, tmp_path):
        path = tmp_path / "system.json"
        save_system(small_system, str(path))
        restored = load_system(str(path))
        assert restored.name == small_system.name


class TestAnalysisSerialization:
    def test_analysis_to_dict_structure(self, warning_task):
        analysis = analyze_task(warning_task)
        payload = analysis_to_dict(analysis)
        assert payload["task"] == warning_task.name
        assert 0.0 < payload["success_probability"] < 1.0
        assert "attention_switch" in payload["stage_probabilities"]
        assert set(payload["assessments"]) >= {"communication", "capabilities"}
        json.dumps(payload)  # must be JSON-compatible

    def test_failure_to_dict(self, memory_task):
        analysis = analyze_task(memory_task)
        failure = analysis.failures.ranked()[0]
        payload = failure_to_dict(failure)
        assert payload["identifier"] == failure.identifier
        assert payload["risk_score"] == pytest.approx(failure.risk_score)
        json.dumps(payload)


class TestSimulationResultProvenance:
    """Exported simulation JSON records seed, mode, and batch_size."""

    def _result(self, mode="batch", batch_size=64):
        from repro.systems import get_scenario

        return get_scenario("antiphishing").simulate(
            120, seed=17, mode=mode, batch_size=batch_size
        )

    def test_provenance_block_complete(self):
        result = self._result()
        payload = json_io.simulation_result_to_dict(result)
        provenance = dict(payload["provenance"])
        elapsed = provenance.pop("elapsed_seconds")
        assert elapsed > 0.0
        assert provenance == {
            "seed": 17,
            "mode": "batch",
            "batch_size": 64,
            "calibration": result.calibration_label,
            "n_receivers": 120,
            "rounds": 1,
            "recovery_rate": 0.0,
            "dismiss_weight": 1.0,
            "heed_weight": 1.0,
            "trace": True,
            "rng_mode": "counter",
            "chunk_workers": 1,
            "chunks": 2,
        }

    def test_reference_mode_recorded(self):
        payload = json_io.simulation_result_to_dict(self._result(mode="reference"))
        assert payload["provenance"]["mode"] == "reference"

    def test_funnel_block_serialized(self):
        result = self._result()
        payload = json_io.simulation_result_to_dict(result)
        assert payload["funnel"] == result.funnel.to_dict()
        assert payload["funnel"]["n"] == 120
        assert len(payload["round_funnels"]) == 1
        json.dumps(payload)  # must be JSON-compatible

    def test_trace_off_omits_funnel_block(self):
        from repro.systems import get_scenario

        result = get_scenario("antiphishing").simulate(50, seed=17, trace=False)
        payload = json_io.simulation_result_to_dict(result)
        assert payload["provenance"]["trace"] is False
        assert "funnel" not in payload

    def test_weight_provenance_recorded(self):
        from repro.systems import get_scenario

        result = get_scenario("antiphishing").simulate(
            60, seed=17, rounds=2, dismiss_weight=2.0, heed_weight=0.5
        )
        provenance = json_io.simulation_result_to_dict(result)["provenance"]
        assert provenance["dismiss_weight"] == 2.0
        assert provenance["heed_weight"] == 0.5

    def test_payload_is_json_serializable_and_consistent(self):
        import json as json_module

        result = self._result()
        payload = json_module.loads(json_module.dumps(json_io.simulation_result_to_dict(result)))
        assert payload["metrics"]["protection_rate"] == result.protection_rate()
        assert sum(payload["outcomes"].values()) == result.n_receivers

    def test_provenance_reproduces_the_run(self):
        result = self._result()
        payload = json_io.simulation_result_to_dict(result)
        from repro.systems import get_scenario

        provenance = payload["provenance"]
        rerun = get_scenario("antiphishing").simulate(
            provenance["n_receivers"],
            seed=provenance["seed"],
            mode=provenance["mode"],
            batch_size=provenance["batch_size"],
            rng_mode=provenance["rng_mode"],
        )
        rerun_payload = json_io.simulation_result_to_dict(rerun)
        # Wall-clock time is the one provenance datum a bit-identical
        # re-run legitimately disagrees on.
        rerun_payload["provenance"].pop("elapsed_seconds")
        payload["provenance"].pop("elapsed_seconds")
        assert rerun_payload == payload

    def test_hand_built_results_have_no_engine_provenance(self):
        from repro.simulation.metrics import SimulationResult

        result = SimulationResult(task_name="t", population_name="p")
        payload = json_io.simulation_result_to_dict(result)
        assert payload["provenance"]["mode"] is None
        assert payload["provenance"]["batch_size"] is None
