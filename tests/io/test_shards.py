"""Tests for the append-only JSONL shard files (ISSUE 5)."""

import json

import pytest

from repro.core.exceptions import SerializationError
from repro.experiments import Experiment, SweepSpec
from repro.io import (
    SHARD_FORMAT_VERSION,
    TELEMETRY_PREFIXES,
    ShardLogWriter,
    append_shard_rows,
    load_checkpoint,
    read_shard,
    result_row_to_dict,
    shard_filename,
)

SEED = 20260726
HEADER = {
    "experiment": "shard-io-test",
    "seed": SEED,
    "shard_index": 0,
    "shard_count": 2,
    "n_variants": 2,
}


@pytest.fixture(scope="module")
def rows():
    sweep = SweepSpec(scenario="passwords", grid={"single_sign_on": [False, True]})
    experiment = Experiment.from_sweep(
        "shard-io-test", sweep, n_receivers=60, seed=SEED, task="recall-passwords"
    )
    return experiment.run().rows


class TestShardFilename:
    def test_canonical_and_sortable(self):
        names = [shard_filename(index, 12) for index in range(12)]
        assert names[0] == "shard-0000-of-0012.jsonl"
        assert names == sorted(names)


class TestRoundTrip:
    def test_rows_round_trip_exactly(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows, header=HEADER)
        header, loaded = read_shard(path)
        assert header["experiment"] == "shard-io-test"
        assert header["format_version"] == SHARD_FORMAT_VERSION
        assert [result_row_to_dict(row) for row in loaded] == [
            result_row_to_dict(row) for row in rows
        ]

    def test_append_is_append_only(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows[:1], header=HEADER)
        first = path.read_text()
        append_shard_rows(path, rows[1:], header=HEADER)
        assert path.read_text().startswith(first), "existing bytes must not change"
        header_lines = [
            line for line in path.read_text().splitlines() if '"kind": "header"' in line
        ]
        assert len(header_lines) == 1, "header is written exactly once"
        _, loaded = read_shard(path)
        assert len(loaded) == len(rows)

    def test_load_checkpoint_visits_files_in_name_order(self, rows, tmp_path):
        append_shard_rows(tmp_path / shard_filename(1, 2), rows[1:], header=HEADER)
        append_shard_rows(tmp_path / shard_filename(0, 2), rows[:1], header=HEADER)
        entries = load_checkpoint(tmp_path)
        assert [path.name for path, _, _ in entries] == [
            shard_filename(0, 2),
            shard_filename(1, 2),
        ]
        assert [len(loaded) for _, _, loaded in entries] == [1, 1]

    def test_load_checkpoint_requires_directory(self, tmp_path):
        with pytest.raises(SerializationError):
            load_checkpoint(tmp_path / "missing")

    def test_load_checkpoint_skips_telemetry_streams(self, rows, tmp_path):
        # Scheduler event logs and heartbeat streams share the directory
        # (and suffix) but are not checkpoints; loading must skip them
        # rather than choke on their headerless records.
        append_shard_rows(tmp_path / shard_filename(0, 2), rows, header=HEADER)
        (tmp_path / "scheduler-events.jsonl").write_text(
            json.dumps({"seq": 0, "event": "queued", "shard": 0}) + "\n"
        )
        (tmp_path / "heartbeat-0000.jsonl").write_text(
            json.dumps({"seq": 0, "event": "heartbeat", "rows": 1}) + "\n"
        )
        entries = load_checkpoint(tmp_path)
        assert [path.name for path, _, _ in entries] == [shard_filename(0, 2)]


class TestShardLogWriter:
    def test_open_once_appends_are_o_of_rows(self, rows, tmp_path, monkeypatch):
        # The writer's torn-tail recovery scan (the only full-file read
        # on the append path) must happen at most once per run, however
        # many appends the run makes — O(rows), not O(rows²).
        import pathlib

        reads = []
        original = pathlib.Path.read_bytes

        def counting_read_bytes(self):
            reads.append(str(self))
            return original(self)

        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows[:1], header=HEADER)  # pre-existing file
        monkeypatch.setattr(pathlib.Path, "read_bytes", counting_read_bytes)
        with ShardLogWriter(path, HEADER) as writer:
            for row in rows * 3:  # many appends in one run
                writer.append([row])
        assert reads.count(str(path)) == 1
        _, loaded = read_shard(path)
        assert len(loaded) == 1 + len(rows) * 3

    def test_writer_recovers_torn_tail_once(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows[:1], header=HEADER)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "row", "row": {"experi')  # killed mid-append
        with ShardLogWriter(path, HEADER) as writer:
            writer.append(rows[1:])
        header, loaded = read_shard(path)
        assert header is not None
        assert len(loaded) == len(rows)

    def test_lazy_open_creates_no_file_without_appends(self, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        with ShardLogWriter(path, HEADER):
            pass
        assert not path.exists()


class TestTelemetryPrefixes:
    def test_reserved_prefixes_are_pinned(self):
        # repro.cluster derives its event-log and heartbeat file names
        # from these prefixes, and repro.service its cache stream and job
        # ledgers; renaming either side breaks checkpoint loading
        # silently, so the contract is pinned here.
        assert TELEMETRY_PREFIXES == ("scheduler-", "heartbeat-", "service-")


class TestCorruption:
    def test_empty_file_reads_as_nothing_committed(self, rows, tmp_path):
        # Crash after file creation but before the header flushed: the
        # narrowest torn first write, recoverable like any other.
        path = tmp_path / shard_filename(0, 2)
        path.write_text("")
        assert read_shard(path) == (None, [])
        append_shard_rows(path, rows, header=HEADER)
        header, loaded = read_shard(path)
        assert header is not None and len(loaded) == len(rows)

    def test_missing_header_rejected(self, rows, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text(
            json.dumps({"kind": "row", "row": result_row_to_dict(rows[0])}) + "\n"
        )
        with pytest.raises(SerializationError, match="header"):
            read_shard(path)

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format_version": 99, **HEADER}) + "\n"
        )
        with pytest.raises(SerializationError, match="format version"):
            read_shard(path)

    def test_append_after_torn_tail_truncates_the_fragment(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows[:1], header=HEADER)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "row", "row": {"experi')  # no trailing newline
        append_shard_rows(path, rows[1:], header=HEADER)
        header, loaded = read_shard(path)
        assert header is not None
        assert len(loaded) == len(rows), "fresh append must not fuse with the fragment"

    def test_torn_header_reads_as_nothing_committed(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        path.write_text('{"kind": "header", "format_ver')  # crash on first write
        header, loaded = read_shard(path)
        assert header is None and loaded == []
        # Appending recovers the file from scratch, header included.
        append_shard_rows(path, rows, header=HEADER)
        header, loaded = read_shard(path)
        assert header["experiment"] == "shard-io-test"
        assert len(loaded) == len(rows)

    def test_torn_final_line_is_tolerated(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows, header=HEADER)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "row", "row": {"experi')  # killed mid-append
        _, loaded = read_shard(path)
        assert len(loaded) == len(rows)

    def test_committed_malformed_final_line_rejected(self, rows, tmp_path):
        # A newline-terminated garbage line is a *committed* record gone
        # bad (tampering, disk corruption) — not a torn write — and must
        # raise rather than be silently dropped.
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows, header=HEADER)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(SerializationError, match="malformed"):
            read_shard(path)

    def test_terminated_malformed_header_rejected(self, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        path.write_text('{"kind": "header", "format_ver\n')  # garbage, but committed
        with pytest.raises(SerializationError, match="header"):
            read_shard(path)

    def test_malformed_interior_line_rejected(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows[:1], header=HEADER)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        append_shard_rows(path, rows[1:], header=HEADER)
        with pytest.raises(SerializationError, match="malformed"):
            read_shard(path)

    def test_tampered_params_fail_the_hash_check(self, rows, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        append_shard_rows(path, rows, header=HEADER)
        lines = path.read_text().splitlines()
        payload = json.loads(lines[1])
        payload["row"]["params"]["single_sign_on"] = True  # quietly "improve" a result
        lines[1] = json.dumps(payload, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SerializationError, match="hash"):
            read_shard(path)
