"""Tests for the append-only JSONL event streams (ISSUE 7)."""

import json

import pytest

from repro.core.exceptions import SerializationError
from repro.io.eventlog import EventLogWriter, last_event, read_events


class TestEventLogWriter:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "scheduler-events.jsonl"
        with EventLogWriter(path) as writer:
            writer.append({"event": "queued", "shard": 0})
            writer.append({"event": "started", "shard": 0})
        events = read_events(path)
        assert [event["event"] for event in events] == ["queued", "started"]
        assert [event["seq"] for event in events] == [0, 1]

    def test_lazy_open_leaves_no_file(self, tmp_path):
        path = tmp_path / "scheduler-events.jsonl"
        EventLogWriter(path).close()
        assert not path.exists()
        assert read_events(path) == []

    def test_seq_resumes_across_writers(self, tmp_path):
        path = tmp_path / "scheduler-events.jsonl"
        with EventLogWriter(path) as writer:
            writer.append({"event": "queued"})
        with EventLogWriter(path) as writer:
            record = writer.append({"event": "merged"})
        assert record["seq"] == 1
        assert [event["seq"] for event in read_events(path)] == [0, 1]

    def test_torn_final_line_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "scheduler-events.jsonl"
        with EventLogWriter(path) as writer:
            writer.append({"event": "queued"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "sta')  # killed mid-append
        with EventLogWriter(path) as writer:
            writer.append({"event": "requeued"})
        assert [event["event"] for event in read_events(path)] == [
            "queued",
            "requeued",
        ]


class TestReadEvents:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"seq": 0, "event": "queued"}) + "\n" + '{"ev')
        assert [event["event"] for event in read_events(path)] == ["queued"]

    def test_committed_garbage_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('not json\n{"seq": 0}\n')
        with pytest.raises(SerializationError, match="malformed"):
            read_events(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(SerializationError, match="not an event object"):
            read_events(path)

    def test_last_event_filters_by_kind(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogWriter(path) as writer:
            writer.append({"event": "heartbeat", "rows": 1})
            writer.append({"event": "heartbeat", "rows": 3})
            writer.append({"event": "completed"})
        assert last_event(path, kind="heartbeat")["rows"] == 3
        assert last_event(path)["event"] == "completed"
        assert last_event(path, kind="timeout") is None
        assert last_event(tmp_path / "missing.jsonl") is None
