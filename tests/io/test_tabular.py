"""Tests for tabular rendering."""

import pytest

from repro.core.components import Component, ComponentGroup
from repro.core.exceptions import ReproError
from repro.io.tabular import format_cell, render_markdown_table, render_rows, render_table_1


class TestFormatCell:
    def test_small_floats_render_as_percentages(self):
        assert format_cell(0.25) == "25.0%"

    def test_large_floats_render_compactly(self):
        assert format_cell(1234.5678) == "1.23e+03"

    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_strings_passthrough(self):
        assert format_cell("hello") == "hello"


class TestTable1Rendering:
    def test_full_table_has_one_row_per_component(self):
        rendered = render_table_1()
        # Header + separator + 15 component rows.
        assert len(rendered.splitlines()) == 2 + len(list(Component))
        assert "Severity of hazard" in rendered
        assert "Habituation" in rendered

    def test_group_filter(self):
        rendered = render_table_1(group=ComponentGroup.INTENTIONS)
        assert "Motivation" in rendered
        assert "Attention switch" not in rendered


class TestGenericTables:
    def test_markdown_table(self):
        rows = [{"scenario": "a", "rate": 0.5}, {"scenario": "b", "rate": 0.75}]
        rendered = render_markdown_table(rows)
        assert rendered.splitlines()[0] == "| scenario | rate |"
        assert "50.0%" in rendered

    def test_markdown_table_empty(self):
        assert render_markdown_table([]) == "(no rows)"

    def test_plain_rows_aligned(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer-name", "value": 2}]
        rendered = render_rows(rows)
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_plain_rows_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        rendered = render_rows(rows, columns=["b"])
        assert "a" not in rendered.splitlines()[0]

    def test_negative_padding_rejected(self):
        with pytest.raises(ReproError):
            render_rows([{"a": 1}], padding=-1)
