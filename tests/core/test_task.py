"""Tests for the task and system models."""

import pytest

from repro.core.communication import Communication, CommunicationType
from repro.core.exceptions import ModelError, ValidationError
from repro.core.receiver import Capabilities, novice_receiver, typical_receiver
from repro.core.task import AutomationProfile, HumanSecurityTask, SecureSystem


class TestAutomationProfile:
    def test_automation_not_advisable_when_infeasible(self):
        profile = AutomationProfile(can_fully_automate=False, automation_accuracy=0.99)
        assert not profile.automation_advisable(human_reliability=0.1)

    def test_automation_advisable_when_more_accurate_than_human(self):
        profile = AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.9,
            automation_false_positive_rate=0.02,
            human_information_advantage=0.2,
        )
        assert profile.automation_advisable(human_reliability=0.4)
        assert not profile.automation_advisable(human_reliability=0.95)

    def test_human_context_blocks_automation(self):
        profile = AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.95,
            human_information_advantage=0.8,
        )
        assert not profile.automation_advisable(human_reliability=0.2)

    def test_validation(self):
        with pytest.raises(ModelError):
            AutomationProfile(automation_accuracy=1.5)
        with pytest.raises(ModelError):
            AutomationProfile().automation_advisable(human_reliability=2.0)


class TestHumanSecurityTask:
    def test_default_receiver_added_when_none_given(self):
        task = HumanSecurityTask(name="t", desired_action="act")
        assert task.receivers
        assert task.primary_receiver.name == "typical"

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            HumanSecurityTask(name="")

    def test_has_communication_flag(self):
        without = HumanSecurityTask(name="t", desired_action="act")
        with_comm = HumanSecurityTask(
            name="u",
            desired_action="act",
            communication=Communication(name="c", comm_type=CommunicationType.NOTICE),
        )
        assert not without.has_communication
        assert with_comm.has_communication

    def test_receiver_lookup_by_name(self):
        task = HumanSecurityTask(
            name="t", desired_action="act", receivers=[typical_receiver(), novice_receiver()]
        )
        assert task.receiver_named("novice").name == "novice"
        with pytest.raises(ModelError):
            task.receiver_named("missing")

    def test_capability_gap_empty_when_requirements_met(self):
        task = HumanSecurityTask(name="t", desired_action="act")
        assert task.capability_gap() == {}

    def test_capability_gap_reports_shortfall(self):
        task = HumanSecurityTask(
            name="t",
            desired_action="act",
            capability_requirements=Capabilities(
                knowledge_to_act=0.0,
                cognitive_skill=0.0,
                physical_skill=0.0,
                memory_capacity=0.95,
                has_required_software=False,
                has_required_device=False,
            ),
        )
        gaps = task.capability_gap()
        assert "memory_capacity" in gaps
        assert gaps["memory_capacity"] > 0.3

    def test_capability_gap_flags_missing_device(self):
        task = HumanSecurityTask(
            name="t",
            desired_action="act",
            capability_requirements=Capabilities(
                knowledge_to_act=0.0, cognitive_skill=0.0, physical_skill=0.0,
                memory_capacity=0.0, has_required_software=False, has_required_device=True,
            ),
            receivers=[typical_receiver()],
        )
        # The default typical receiver has the device, so no gap.
        assert "has_required_device" not in task.capability_gap()

    def test_validate_requires_desired_action_for_critical_tasks(self):
        task = HumanSecurityTask(name="t", security_critical=True)
        with pytest.raises(ValidationError):
            task.validate()

    def test_validate_passes_for_noncritical_task(self):
        HumanSecurityTask(name="t", security_critical=False).validate()


class TestSecureSystem:
    def test_duplicate_task_names_rejected_at_construction(self):
        task = HumanSecurityTask(name="same", desired_action="act")
        clone = HumanSecurityTask(name="same", desired_action="act")
        with pytest.raises(ModelError):
            SecureSystem(name="s", tasks=[task, clone])

    def test_add_task_rejects_duplicates(self):
        system = SecureSystem(name="s")
        system.add_task(HumanSecurityTask(name="a", desired_action="act"))
        with pytest.raises(ModelError):
            system.add_task(HumanSecurityTask(name="a", desired_action="act"))

    def test_task_lookup(self):
        system = SecureSystem(name="s", tasks=[HumanSecurityTask(name="a", desired_action="act")])
        assert system.task_named("a").name == "a"
        with pytest.raises(ModelError):
            system.task_named("missing")

    def test_security_critical_filter(self):
        system = SecureSystem(
            name="s",
            tasks=[
                HumanSecurityTask(name="critical", desired_action="act", security_critical=True),
                HumanSecurityTask(name="routine", security_critical=False),
            ],
        )
        assert [task.name for task in system.security_critical_tasks()] == ["critical"]

    def test_tasks_without_communication(self):
        system = SecureSystem(
            name="s",
            tasks=[
                HumanSecurityTask(name="silent", desired_action="act"),
                HumanSecurityTask(
                    name="warned",
                    desired_action="act",
                    communication=Communication(name="c", comm_type=CommunicationType.WARNING),
                ),
            ],
        )
        assert [task.name for task in system.tasks_without_communication()] == ["silent"]

    def test_len_and_iter(self):
        system = SecureSystem(name="s", tasks=[HumanSecurityTask(name="a", desired_action="x")])
        assert len(system) == 1
        assert [task.name for task in system] == ["a"]

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            SecureSystem(name="")
