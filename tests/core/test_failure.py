"""Tests for failure modes and the failure inventory."""

import pytest

from repro.core.components import Component, ComponentGroup
from repro.core.exceptions import ModelError
from repro.core.failure import (
    FailureInventory,
    FailureLikelihood,
    FailureMode,
    FailureSeverity,
)
from repro.core.stages import Stage


def _failure(identifier: str, component: Component = Component.CAPABILITIES,
             severity: FailureSeverity = FailureSeverity.MODERATE,
             likelihood: FailureLikelihood = FailureLikelihood.POSSIBLE) -> FailureMode:
    return FailureMode(
        identifier=identifier,
        component=component,
        description="test failure",
        severity=severity,
        likelihood=likelihood,
    )


class TestFailureMode:
    def test_risk_score_is_severity_times_likelihood(self):
        failure = _failure("f", severity=FailureSeverity.CRITICAL,
                           likelihood=FailureLikelihood.ALMOST_CERTAIN)
        assert failure.risk_score == pytest.approx(1.0)

    def test_likelihood_from_probability_bands(self):
        assert FailureLikelihood.from_probability(0.01) is FailureLikelihood.RARE
        assert FailureLikelihood.from_probability(0.1) is FailureLikelihood.UNLIKELY
        assert FailureLikelihood.from_probability(0.3) is FailureLikelihood.POSSIBLE
        assert FailureLikelihood.from_probability(0.6) is FailureLikelihood.LIKELY
        assert FailureLikelihood.from_probability(0.9) is FailureLikelihood.ALMOST_CERTAIN

    def test_likelihood_from_probability_validates(self):
        with pytest.raises(ModelError):
            FailureLikelihood.from_probability(1.5)

    def test_is_critical(self):
        assert _failure("f", severity=FailureSeverity.CRITICAL,
                        likelihood=FailureLikelihood.LIKELY).is_critical()
        assert not _failure("f", severity=FailureSeverity.MINOR,
                            likelihood=FailureLikelihood.RARE).is_critical()

    def test_stage_component_consistency_enforced(self):
        with pytest.raises(ModelError):
            FailureMode(
                identifier="bad",
                component=Component.CAPABILITIES,
                description="mismatch",
                stage=Stage.COMPREHENSION,
            )

    def test_empty_identifier_rejected(self):
        with pytest.raises(ModelError):
            _failure("")

    def test_group_derived_from_component(self):
        assert _failure("f", component=Component.MOTIVATION).group is ComponentGroup.INTENTIONS


class TestFailureInventory:
    def test_add_rejects_duplicate_identifiers(self):
        inventory = FailureInventory()
        inventory.add(_failure("a"))
        with pytest.raises(ModelError):
            inventory.add(_failure("a"))

    def test_ranked_orders_by_risk(self):
        inventory = FailureInventory()
        inventory.add(_failure("low", severity=FailureSeverity.MINOR,
                               likelihood=FailureLikelihood.UNLIKELY))
        inventory.add(_failure("high", severity=FailureSeverity.CRITICAL,
                               likelihood=FailureLikelihood.LIKELY))
        assert [failure.identifier for failure in inventory.ranked()] == ["high", "low"]
        assert [failure.identifier for failure in inventory.top(1)] == ["high"]

    def test_filters(self):
        inventory = FailureInventory()
        inventory.add(_failure("cap", component=Component.CAPABILITIES))
        inventory.add(_failure("mot", component=Component.MOTIVATION))
        assert len(inventory.by_component(Component.CAPABILITIES)) == 1
        assert len(inventory.by_group(ComponentGroup.INTENTIONS)) == 1

    def test_risk_aggregation(self):
        inventory = FailureInventory()
        inventory.add(_failure("a", component=Component.CAPABILITIES,
                               severity=FailureSeverity.MAJOR,
                               likelihood=FailureLikelihood.LIKELY))
        inventory.add(_failure("b", component=Component.CAPABILITIES,
                               severity=FailureSeverity.MINOR,
                               likelihood=FailureLikelihood.POSSIBLE))
        inventory.add(_failure("c", component=Component.MOTIVATION))
        assert inventory.dominant_component() is Component.CAPABILITIES
        assert inventory.total_risk() == pytest.approx(
            sum(failure.risk_score for failure in inventory)
        )

    def test_dominant_component_none_when_empty(self):
        assert FailureInventory().dominant_component() is None

    def test_merge_deduplicates(self):
        first = FailureInventory()
        first.add(_failure("shared"))
        second = FailureInventory()
        second.add(_failure("shared"))
        second.add(_failure("unique"))
        merged = first.merge(second)
        assert len(merged) == 2

    def test_top_rejects_negative(self):
        with pytest.raises(ModelError):
            FailureInventory().top(-1)

    def test_len_and_iteration(self):
        inventory = FailureInventory()
        inventory.extend([_failure("a"), _failure("b")])
        assert len(inventory) == 2
        assert {failure.identifier for failure in inventory} == {"a", "b"}
