"""Tests for environmental stimuli, interference, and the environment aggregate."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.impediments import (
    Environment,
    EnvironmentalStimulus,
    Interference,
    InterferenceSource,
    StimulusKind,
)


class TestEnvironmentalStimulus:
    def test_valid_construction(self):
        stimulus = EnvironmentalStimulus(kind=StimulusKind.PRIMARY_TASK, intensity=0.7)
        assert stimulus.intensity == 0.7

    def test_intensity_validated(self):
        with pytest.raises(ModelError):
            EnvironmentalStimulus(kind=StimulusKind.AMBIENT_NOISE, intensity=1.5)


class TestInterference:
    def test_total_disruption_combines_channels(self):
        channel = Interference(
            source=InterferenceSource.MALICIOUS_ATTACKER,
            block_probability=0.2,
            spoof_probability=0.3,
        )
        assert channel.total_disruption == pytest.approx(1 - 0.8 * 0.7)

    def test_no_disruption_when_zero(self):
        channel = Interference(source=InterferenceSource.TECHNOLOGY_FAILURE)
        assert channel.total_disruption == 0.0

    def test_probabilities_validated(self):
        with pytest.raises(ModelError):
            Interference(source=InterferenceSource.TECHNOLOGY_FAILURE, block_probability=-0.1)


class TestEnvironment:
    def test_quiet_environment_has_no_distraction(self):
        assert Environment.quiet().distraction_level == 0.0

    def test_typical_desktop_is_distracting(self):
        assert Environment.typical_desktop().distraction_level > 0.3

    def test_distraction_increases_with_stimuli(self):
        environment = Environment()
        low = environment.distraction_level
        environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.6)
        mid = environment.distraction_level
        environment.add_stimulus(StimulusKind.AMBIENT_NOISE, 0.5)
        high = environment.distraction_level
        assert low < mid < high

    def test_distraction_bounded(self):
        environment = Environment()
        for _ in range(10):
            environment.add_stimulus(StimulusKind.UNRELATED_COMMUNICATION, 1.0)
        assert environment.distraction_level <= 1.0

    def test_competing_indicators_add_clutter(self):
        base = Environment()
        cluttered = Environment(competing_indicator_count=5)
        assert cluttered.distraction_level > base.distraction_level

    def test_negative_indicator_count_rejected(self):
        with pytest.raises(ModelError):
            Environment(competing_indicator_count=-1)

    def test_block_probability_combines(self):
        environment = Environment()
        environment.add_interference(
            Interference(source=InterferenceSource.TECHNOLOGY_FAILURE, block_probability=0.5)
        )
        environment.add_interference(
            Interference(source=InterferenceSource.MALICIOUS_ATTACKER, block_probability=0.5)
        )
        assert environment.block_probability == pytest.approx(0.75)

    def test_spoof_probability_from_attacker(self):
        environment = Environment()
        environment.add_interference(
            Interference(source=InterferenceSource.MALICIOUS_ATTACKER, spoof_probability=0.4)
        )
        assert environment.spoof_probability == pytest.approx(0.4)
        assert environment.has_active_attacker

    def test_no_attacker_by_default(self):
        assert not Environment().has_active_attacker

    def test_primary_task_intensity(self):
        environment = Environment()
        assert environment.primary_task_intensity() == 0.0
        environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.4)
        environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.8)
        assert environment.primary_task_intensity() == 0.8

    def test_builder_chaining(self):
        environment = (
            Environment()
            .add_stimulus(StimulusKind.PRIMARY_TASK, 0.5)
            .add_interference(
                Interference(source=InterferenceSource.TECHNOLOGY_FAILURE, degrade_probability=0.2)
            )
        )
        assert len(environment.stimuli) == 1
        assert len(environment.interference) == 1
