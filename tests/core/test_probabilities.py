"""Tests for the shared stage-probability model."""

import pytest

from repro.core import probabilities
from repro.core.behavior import TaskDesign
from repro.core.communication import Communication, CommunicationType
from repro.core.exceptions import ModelError
from repro.core.impediments import Environment, Interference, InterferenceSource, StimulusKind
from repro.core.receiver import expert_receiver, novice_receiver, typical_receiver
from repro.core.stages import Stage
from repro.core.task import HumanSecurityTask


def _warning(**overrides) -> Communication:
    defaults = dict(
        name="w",
        comm_type=CommunicationType.WARNING,
        activeness=0.9,
        clarity=0.7,
        includes_instructions=True,
        conspicuity=0.8,
    )
    defaults.update(overrides)
    return Communication(**defaults)


class TestClampAndHabituation:
    def test_clamp_bounds(self):
        assert probabilities.clamp_probability(-1.0) == pytest.approx(0.02)
        assert probabilities.clamp_probability(2.0) == pytest.approx(0.98)
        assert probabilities.clamp_probability(0.5) == 0.5

    def test_habituation_decays_with_exposures(self):
        fresh = probabilities.habituation_factor(0, activeness=0.2)
        worn = probabilities.habituation_factor(30, activeness=0.2)
        assert fresh == pytest.approx(1.0)
        assert worn < fresh

    def test_habituation_slower_for_active_communications(self):
        passive = probabilities.habituation_factor(20, activeness=0.1)
        active = probabilities.habituation_factor(20, activeness=1.0)
        assert active > passive

    def test_habituation_floor(self):
        assert probabilities.habituation_factor(1000, activeness=0.0) >= 0.25

    def test_habituation_validates_inputs(self):
        with pytest.raises(ModelError):
            probabilities.habituation_factor(-1, 0.5)
        with pytest.raises(ModelError):
            probabilities.habituation_factor(1, 1.5)


class TestAttentionSwitch:
    def test_active_noticed_more_than_passive(self):
        environment = Environment.typical_desktop()
        receiver = typical_receiver()
        active = probabilities.attention_switch_probability(
            _warning(activeness=1.0), environment, receiver
        )
        passive = probabilities.attention_switch_probability(
            _warning(activeness=0.1, conspicuity=0.2), environment, receiver
        )
        assert active > passive + 0.3

    def test_distraction_hurts_passive_more_than_active(self):
        receiver = typical_receiver()
        quiet = Environment.quiet()
        busy = Environment.typical_desktop()
        passive = _warning(activeness=0.15, conspicuity=0.3)
        active = _warning(activeness=1.0)
        passive_drop = probabilities.attention_switch_probability(
            passive, quiet, receiver
        ) - probabilities.attention_switch_probability(passive, busy, receiver)
        active_drop = probabilities.attention_switch_probability(
            active, quiet, receiver
        ) - probabilities.attention_switch_probability(active, busy, receiver)
        assert passive_drop > active_drop

    def test_habituated_indicator_noticed_less(self):
        environment = Environment.typical_desktop()
        receiver = typical_receiver()
        fresh = probabilities.attention_switch_probability(
            _warning(activeness=0.2), environment, receiver
        )
        habituated = probabilities.attention_switch_probability(
            _warning(activeness=0.2, habituation_exposures=30), environment, receiver
        )
        assert habituated < fresh

    def test_blocked_delivery_reduces_notice(self):
        receiver = typical_receiver()
        blocked = Environment()
        blocked.add_interference(
            Interference(source=InterferenceSource.TECHNOLOGY_FAILURE, block_probability=0.6)
        )
        assert probabilities.attention_switch_probability(
            _warning(), blocked, receiver
        ) < probabilities.attention_switch_probability(_warning(), Environment(), receiver)


class TestProcessingStages:
    def test_comprehension_better_for_experts(self):
        communication = _warning(clarity=0.5)
        assert probabilities.comprehension_probability(
            communication, expert_receiver()
        ) > probabilities.comprehension_probability(communication, novice_receiver())

    def test_comprehension_hurt_by_lookalike_warnings(self):
        receiver = typical_receiver()
        plain = probabilities.comprehension_probability(_warning(), receiver)
        lookalike = probabilities.comprehension_probability(
            _warning(resembles_low_risk_communications=True), receiver
        )
        assert lookalike < plain

    def test_instructions_help_knowledge_acquisition(self):
        receiver = novice_receiver()
        with_instructions = probabilities.knowledge_acquisition_probability(
            _warning(includes_instructions=True), receiver
        )
        without = probabilities.knowledge_acquisition_probability(
            _warning(includes_instructions=False), receiver
        )
        assert with_instructions > without

    def test_long_messages_hurt_attention_maintenance(self):
        receiver = typical_receiver()
        environment = Environment.quiet()
        short = probabilities.attention_maintenance_probability(
            _warning(length_words=20), environment, receiver
        )
        long = probabilities.attention_maintenance_probability(
            _warning(length_words=400), environment, receiver
        )
        assert long < short

    def test_retention_and_transfer_better_with_training(self):
        communication = Communication(
            name="policy", comm_type=CommunicationType.POLICY, clarity=0.7
        )
        assert probabilities.knowledge_retention_probability(
            communication, expert_receiver()
        ) > probabilities.knowledge_retention_probability(communication, novice_receiver())
        assert probabilities.knowledge_transfer_probability(
            communication, expert_receiver()
        ) > probabilities.knowledge_transfer_probability(communication, novice_receiver())


class TestIntentionAndCapability:
    def test_false_positives_erode_intention(self):
        receiver = typical_receiver()
        clean = probabilities.intention_probability(_warning(false_positive_rate=0.0), receiver)
        noisy = probabilities.intention_probability(_warning(false_positive_rate=0.5), receiver)
        assert noisy < clean

    def test_override_option_lowers_intention_for_warnings(self):
        receiver = typical_receiver()
        with_override = probabilities.intention_probability(
            _warning(allows_override=True), receiver
        )
        without_override = probabilities.intention_probability(
            _warning(allows_override=False), receiver
        )
        assert with_override < without_override

    def test_capability_probability_penalizes_gaps(self, memory_task):
        assert probabilities.capability_probability(memory_task, typical_receiver()) < 0.5

    def test_capability_probability_high_without_gaps(self, warning_task):
        assert probabilities.capability_probability(warning_task, typical_receiver()) > 0.7


class TestPipelineComposition:
    def test_applicable_stages_for_warning_skip_retention(self):
        applicability = probabilities.applicable_stages(_warning())
        assert not applicability[Stage.KNOWLEDGE_RETENTION]
        assert not applicability[Stage.KNOWLEDGE_TRANSFER]
        assert applicability[Stage.ATTENTION_SWITCH]

    def test_applicable_stages_for_policy_include_retention(self):
        policy = Communication(name="p", comm_type=CommunicationType.POLICY)
        applicability = probabilities.applicable_stages(policy)
        assert applicability[Stage.KNOWLEDGE_RETENTION]
        assert applicability[Stage.KNOWLEDGE_TRANSFER]

    def test_no_communication_has_no_applicable_stages(self):
        applicability = probabilities.applicable_stages(None)
        assert not any(applicability.values())

    def test_stage_probabilities_cover_applicable_stages(self, warning_task):
        stage_probs = probabilities.stage_probabilities(warning_task)
        assert Stage.ATTENTION_SWITCH in stage_probs
        assert Stage.KNOWLEDGE_RETENTION not in stage_probs
        assert all(0.0 < probability < 1.0 for probability in stage_probs.values())

    def test_stage_probabilities_empty_without_communication(self):
        task = HumanSecurityTask(name="silent", desired_action="act")
        assert probabilities.stage_probabilities(task) == {}

    def test_end_to_end_success_between_zero_and_one(self, warning_task, memory_task):
        for task in (warning_task, memory_task):
            probability = probabilities.end_to_end_success_probability(task)
            assert 0.0 < probability < 1.0

    def test_end_to_end_success_higher_for_experts(self, warning_task):
        novice = probabilities.end_to_end_success_probability(warning_task, novice_receiver())
        expert = probabilities.end_to_end_success_probability(warning_task, expert_receiver())
        assert expert > novice

    def test_end_to_end_without_communication_is_small(self):
        task = HumanSecurityTask(name="silent", desired_action="act")
        assert probabilities.end_to_end_success_probability(task) < 0.2

    def test_behavior_probability_reflects_design(self):
        receiver = typical_receiver()
        good = probabilities.behavior_success_probability(
            TaskDesign(controls_discoverable=0.95, feedback_quality=0.9), receiver
        )
        bad = probabilities.behavior_success_probability(
            TaskDesign(steps=8, controls_discoverable=0.2, feedback_quality=0.2,
                       controls_distinguishable=0.3),
            receiver,
        )
        assert good > bad
