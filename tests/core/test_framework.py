"""Tests for the HumanInTheLoopFramework facade."""

import networkx as nx
import pytest

from repro.core import (
    Component,
    ComponentGroup,
    HazardProfile,
    HazardSeverity,
    HumanInTheLoopFramework,
    Mitigation,
    MitigationStrategy,
)
from repro.core.analysis import analyze_task


class TestFrameworkStructure:
    def test_components_listed_in_order(self):
        framework = HumanInTheLoopFramework()
        assert framework.components() == list(Component)

    def test_component_groups_complete(self):
        groups = HumanInTheLoopFramework.component_groups()
        assert set(groups) == set(ComponentGroup)

    def test_checklist_entry_lookup(self):
        entry = HumanInTheLoopFramework.checklist_entry(Component.MOTIVATION)
        assert entry.component is Component.MOTIVATION

    def test_table_1_has_fifteen_rows(self):
        assert len(HumanInTheLoopFramework.table_1()) == 15

    def test_influence_graph_structure(self):
        graph = HumanInTheLoopFramework.influence_graph()
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 11
        assert nx.is_directed_acyclic_graph(graph)
        assert ComponentGroup.BEHAVIOR.value in graph
        # Behavior is the sink of the framework.
        assert graph.out_degree(ComponentGroup.BEHAVIOR.value) == 0

    def test_receiver_nodes_flagged(self):
        graph = HumanInTheLoopFramework.influence_graph()
        receiver_nodes = [node for node, data in graph.nodes(data=True) if data.get("receiver")]
        assert ComponentGroup.CAPABILITIES.value in receiver_nodes
        assert ComponentGroup.COMMUNICATION.value not in receiver_nodes


class TestFrameworkOperations:
    def test_advise_communication(self):
        advice = HumanInTheLoopFramework.advise_communication(
            HazardProfile(severity=HazardSeverity.CRITICAL, user_action_necessity=0.9)
        )
        assert advice.recommended_type.value == "warning"

    def test_analyze_task_matches_module_function(self, warning_task):
        framework = HumanInTheLoopFramework()
        facade_result = framework.analyze_task(warning_task)
        direct_result = analyze_task(warning_task)
        assert facade_result.success_probability == pytest.approx(
            direct_result.success_probability
        )

    def test_analyze_system_and_report(self, small_system):
        framework = HumanInTheLoopFramework()
        analysis = framework.analyze_system(small_system)
        report = framework.report_system(analysis)
        assert small_system.name in report

    def test_suggest_mitigations_uses_extended_catalog(self, memory_task):
        extra = Mitigation(
            name="bespoke-memory-aid",
            strategy=MitigationStrategy.SUPPORT,
            description="a very specific memory aid",
            addresses_components=(Component.CAPABILITIES,),
            effectiveness=0.99,
            cost=0.0,
        )
        framework = HumanInTheLoopFramework(mitigation_catalog=[extra])
        analysis = framework.analyze_task(memory_task)
        plan = framework.suggest_mitigations(analysis.failures)
        assert "bespoke-memory-aid" in [mitigation.name for mitigation in plan.ranked_mitigations()]

    def test_run_process(self, small_system):
        framework = HumanInTheLoopFramework()
        result = framework.run_process(small_system, max_passes=2)
        assert result.pass_count >= 1
        assert result.system_name == small_system.name

    def test_report_task(self, warning_task):
        framework = HumanInTheLoopFramework()
        report = framework.report_task(framework.analyze_task(warning_task))
        assert "Framework analysis" in report
