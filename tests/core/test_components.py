"""Tests for the framework component inventory (Figure 1 structure)."""

import pytest

from repro.core.components import (
    Component,
    ComponentGroup,
    GROUP_MEMBERS,
    PROCESSING_STEP_COMPONENTS,
    RECEIVER_COMPONENTS,
    component_group,
    components_in_group,
    influence_edges,
    ordered_components,
)


class TestComponentInventory:
    def test_fifteen_components(self):
        assert len(list(Component)) == 15

    def test_nine_groups(self):
        assert len(list(ComponentGroup)) == 9

    def test_every_component_has_a_group(self):
        for component in Component:
            assert isinstance(component.group, ComponentGroup)

    def test_every_component_has_a_title(self):
        for component in Component:
            assert component.title
            assert component.title[0].isupper()

    def test_ordered_components_matches_enum_order(self):
        assert ordered_components() == list(Component)

    def test_group_members_partition_components(self):
        all_members = [component for members in GROUP_MEMBERS.values() for component in members]
        assert sorted(all_members, key=lambda c: c.value) == sorted(
            Component, key=lambda c: c.value
        )
        assert len(all_members) == len(set(all_members))


class TestGroupStructure:
    def test_communication_delivery_members(self):
        members = components_in_group(ComponentGroup.COMMUNICATION_DELIVERY)
        assert members == (Component.ATTENTION_SWITCH, Component.ATTENTION_MAINTENANCE)

    def test_communication_processing_members(self):
        members = components_in_group(ComponentGroup.COMMUNICATION_PROCESSING)
        assert members == (Component.COMPREHENSION, Component.KNOWLEDGE_ACQUISITION)

    def test_application_members(self):
        members = components_in_group(ComponentGroup.APPLICATION)
        assert members == (Component.KNOWLEDGE_RETENTION, Component.KNOWLEDGE_TRANSFER)

    def test_personal_variables_split_in_two(self):
        members = components_in_group(ComponentGroup.PERSONAL_VARIABLES)
        assert Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS in members
        assert Component.KNOWLEDGE_AND_EXPERIENCE in members
        assert len(members) == 2

    def test_intentions_split_in_two(self):
        members = components_in_group(ComponentGroup.INTENTIONS)
        assert Component.ATTITUDES_AND_BELIEFS in members
        assert Component.MOTIVATION in members

    def test_impediment_group_members(self):
        members = components_in_group(ComponentGroup.COMMUNICATION_IMPEDIMENTS)
        assert set(members) == {Component.ENVIRONMENTAL_STIMULI, Component.INTERFERENCE}

    def test_component_group_lookup_consistent(self):
        for component in Component:
            assert component in components_in_group(component_group(component))


class TestReceiverClassification:
    def test_receiver_components_exclude_communication_and_behavior(self):
        assert Component.COMMUNICATION not in RECEIVER_COMPONENTS
        assert Component.BEHAVIOR not in RECEIVER_COMPONENTS
        assert Component.ENVIRONMENTAL_STIMULI not in RECEIVER_COMPONENTS
        assert Component.INTERFERENCE not in RECEIVER_COMPONENTS

    def test_receiver_components_include_capabilities(self):
        assert Component.CAPABILITIES in RECEIVER_COMPONENTS

    def test_processing_step_components_are_six(self):
        assert len(PROCESSING_STEP_COMPONENTS) == 6

    def test_processing_groups_flagged(self):
        assert ComponentGroup.COMMUNICATION_DELIVERY.is_processing_step
        assert ComponentGroup.APPLICATION.is_processing_step
        assert not ComponentGroup.BEHAVIOR.is_processing_step
        assert not ComponentGroup.INTENTIONS.is_processing_step

    def test_receiver_group_flags(self):
        assert ComponentGroup.CAPABILITIES.is_receiver_group
        assert not ComponentGroup.COMMUNICATION.is_receiver_group
        assert not ComponentGroup.BEHAVIOR.is_receiver_group


class TestInfluenceEdges:
    def test_edges_are_nonempty_and_unique(self):
        edges = influence_edges()
        assert edges
        assert len(edges) == len(set(edges))

    def test_communication_flows_to_delivery(self):
        assert (
            ComponentGroup.COMMUNICATION.value,
            ComponentGroup.COMMUNICATION_DELIVERY.value,
        ) in influence_edges()

    def test_application_flows_to_behavior(self):
        assert (
            ComponentGroup.APPLICATION.value,
            ComponentGroup.BEHAVIOR.value,
        ) in influence_edges()

    def test_impediments_reach_delivery(self):
        edges = influence_edges()
        assert (Component.ENVIRONMENTAL_STIMULI.value,
                ComponentGroup.COMMUNICATION_DELIVERY.value) in edges
        assert (Component.INTERFERENCE.value,
                ComponentGroup.COMMUNICATION_DELIVERY.value) in edges

    def test_intentions_and_capabilities_reach_behavior(self):
        edges = influence_edges()
        assert (ComponentGroup.INTENTIONS.value, ComponentGroup.BEHAVIOR.value) in edges
        assert (ComponentGroup.CAPABILITIES.value, ComponentGroup.BEHAVIOR.value) in edges
