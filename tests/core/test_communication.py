"""Tests for the communication taxonomy and the §2.1 design guidance."""

import dataclasses

import pytest

from repro.core.communication import (
    ActivenessLevel,
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    advise,
    recommend_activeness,
    recommend_communication_type,
)
from repro.core.exceptions import ModelError


class TestCommunicationType:
    def test_five_types(self):
        assert len(list(CommunicationType)) == 5

    def test_only_warning_triggers_immediate_action(self):
        assert CommunicationType.WARNING.triggers_immediate_action
        for comm_type in CommunicationType:
            if comm_type is not CommunicationType.WARNING:
                assert not comm_type.triggers_immediate_action

    def test_training_and_policy_require_knowledge_transfer(self):
        assert CommunicationType.TRAINING.requires_knowledge_transfer
        assert CommunicationType.POLICY.requires_knowledge_transfer
        assert not CommunicationType.WARNING.requires_knowledge_transfer
        assert not CommunicationType.STATUS_INDICATOR.requires_knowledge_transfer

    def test_every_type_has_description(self):
        for comm_type in CommunicationType:
            assert len(comm_type.description) > 20


class TestActivenessLevel:
    def test_levels_ordered_by_score(self):
        scores = [level.score for level in ActivenessLevel]
        assert scores == sorted(scores, reverse=True)

    def test_blocking_is_maximal(self):
        assert ActivenessLevel.BLOCKING.score == 1.0

    def test_from_score_roundtrip(self):
        for level in ActivenessLevel:
            assert ActivenessLevel.from_score(level.score) is level

    def test_from_score_nearest(self):
        assert ActivenessLevel.from_score(0.95) is ActivenessLevel.BLOCKING
        assert ActivenessLevel.from_score(0.05) is ActivenessLevel.PASSIVE_SUBTLE

    def test_from_score_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            ActivenessLevel.from_score(1.5)

    def test_interrupting_levels(self):
        assert ActivenessLevel.BLOCKING.interrupts_primary_task
        assert ActivenessLevel.INTERRUPTING.interrupts_primary_task
        assert not ActivenessLevel.PASSIVE_SUBTLE.interrupts_primary_task


class TestHazardProfile:
    def test_risk_score_monotone_in_severity(self):
        low = HazardProfile(severity=HazardSeverity.LOW)
        high = HazardProfile(severity=HazardSeverity.CRITICAL)
        assert high.risk_score > low.risk_score

    def test_risk_score_bounded(self):
        worst = HazardProfile(
            severity=HazardSeverity.CRITICAL,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=1.0,
        )
        assert 0.0 <= worst.risk_score <= 1.0

    def test_invalid_necessity_rejected(self):
        with pytest.raises(ModelError):
            HazardProfile(user_action_necessity=1.4)


class TestCommunicationModel:
    def test_defaults_are_valid(self):
        communication = Communication(name="c", comm_type=CommunicationType.NOTICE)
        assert communication.is_passive

    def test_activeness_level_accepted_in_constructor(self):
        communication = Communication(
            name="c",
            comm_type=CommunicationType.WARNING,
            activeness=ActivenessLevel.BLOCKING,
        )
        assert communication.activeness == 1.0
        assert communication.activeness_level is ActivenessLevel.BLOCKING

    def test_is_active_threshold(self):
        assert Communication(name="a", comm_type=CommunicationType.WARNING, activeness=0.6).is_active
        assert Communication(name="b", comm_type=CommunicationType.WARNING, activeness=0.4).is_passive

    def test_with_activeness_returns_copy(self):
        original = Communication(name="c", comm_type=CommunicationType.WARNING, activeness=0.3)
        modified = original.with_activeness(0.9)
        assert original.activeness == 0.3
        assert modified.activeness == 0.9
        assert modified.name == original.name

    def test_with_exposures_returns_copy(self):
        original = Communication(name="c", comm_type=CommunicationType.WARNING)
        modified = original.with_exposures(12)
        assert modified.habituation_exposures == 12
        assert original.habituation_exposures == 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("activeness", 1.5),
            ("clarity", -0.1),
            ("conspicuity", 2.0),
            ("false_positive_rate", 1.1),
        ],
    )
    def test_unit_fields_validated(self, field, value):
        kwargs = {"name": "c", "comm_type": CommunicationType.WARNING, field: value}
        with pytest.raises(ModelError):
            Communication(**kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Communication(name="", comm_type=CommunicationType.WARNING)

    def test_negative_length_rejected(self):
        with pytest.raises(ModelError):
            Communication(name="c", comm_type=CommunicationType.WARNING, length_words=-1)


class TestDesignGuidance:
    def test_severe_actionable_hazard_gets_warning(self):
        hazard = HazardProfile(
            severity=HazardSeverity.CRITICAL, user_action_necessity=0.9
        )
        assert recommend_communication_type(hazard) is CommunicationType.WARNING

    def test_unactionable_hazard_gets_status_indicator(self):
        hazard = HazardProfile(
            severity=HazardSeverity.HIGH, user_action_necessity=0.1
        )
        assert recommend_communication_type(hazard) is CommunicationType.STATUS_INDICATOR

    def test_moderate_hazard_gets_notice(self):
        hazard = HazardProfile(
            severity=HazardSeverity.LOW, user_action_necessity=0.6
        )
        assert recommend_communication_type(hazard) is CommunicationType.NOTICE

    def test_severe_rare_hazard_gets_blocking_warning(self):
        hazard = HazardProfile(
            severity=HazardSeverity.CRITICAL,
            frequency=HazardFrequency.RARE,
            user_action_necessity=1.0,
        )
        assert recommend_activeness(hazard) is ActivenessLevel.BLOCKING

    def test_frequent_low_risk_hazard_gets_passive_treatment(self):
        hazard = HazardProfile(
            severity=HazardSeverity.LOW,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=0.3,
        )
        level = recommend_activeness(hazard)
        assert level in (ActivenessLevel.PASSIVE_NOTICEABLE, ActivenessLevel.PASSIVE_SUBTLE)

    def test_activeness_monotone_in_severity(self):
        low = recommend_activeness(HazardProfile(severity=HazardSeverity.LOW))
        high = recommend_activeness(
            HazardProfile(severity=HazardSeverity.CRITICAL, user_action_necessity=0.9)
        )
        assert high.score >= low.score

    def test_advise_produces_rationale(self):
        advice = advise(
            HazardProfile(severity=HazardSeverity.HIGH, user_action_necessity=0.9)
        )
        assert advice.recommended_type is CommunicationType.WARNING
        assert advice.rationale
        assert "Recommended type" in advice.summary()

    def test_advise_flags_habituation_for_frequent_hazards(self):
        advice = advise(
            HazardProfile(
                severity=HazardSeverity.LOW,
                frequency=HazardFrequency.CONSTANT,
                user_action_necessity=0.5,
            )
        )
        assert advice.habituation_risk > 0.3
        assert any("habituation" in reason.lower() or "frequently" in reason.lower()
                   for reason in advice.rationale)
