"""Tests for the information-processing stages and stage traces."""

import pytest

from repro.core.components import Component, ComponentGroup
from repro.core.exceptions import ModelError
from repro.core.stages import STAGE_ORDER, Stage, StageOutcome, StageTrace, stages_for_group


class TestStageStructure:
    def test_seven_stages_in_order(self):
        assert len(STAGE_ORDER) == 7
        assert STAGE_ORDER[0] is Stage.ATTENTION_SWITCH
        assert STAGE_ORDER[-1] is Stage.BEHAVIOR

    def test_stage_component_mapping_is_one_to_one(self):
        components = [stage.component for stage in STAGE_ORDER]
        assert len(components) == len(set(components))

    def test_stage_groups(self):
        assert Stage.ATTENTION_SWITCH.group is ComponentGroup.COMMUNICATION_DELIVERY
        assert Stage.COMPREHENSION.group is ComponentGroup.COMMUNICATION_PROCESSING
        assert Stage.KNOWLEDGE_RETENTION.group is ComponentGroup.APPLICATION
        assert Stage.BEHAVIOR.group is ComponentGroup.BEHAVIOR

    def test_stage_index_matches_order(self):
        for index, stage in enumerate(STAGE_ORDER):
            assert stage.index == index

    def test_stages_for_group(self):
        assert stages_for_group(ComponentGroup.COMMUNICATION_DELIVERY) == (
            Stage.ATTENTION_SWITCH,
            Stage.ATTENTION_MAINTENANCE,
        )
        assert stages_for_group(ComponentGroup.APPLICATION) == (
            Stage.KNOWLEDGE_RETENTION,
            Stage.KNOWLEDGE_TRANSFER,
        )


class TestStageOutcome:
    def test_probability_validated(self):
        with pytest.raises(ModelError):
            StageOutcome(stage=Stage.COMPREHENSION, succeeded=True, probability=1.4)


class TestStageTrace:
    def test_records_in_order(self):
        trace = StageTrace()
        trace.record(StageOutcome(Stage.ATTENTION_SWITCH, True, 0.9))
        trace.record(StageOutcome(Stage.COMPREHENSION, True, 0.8))
        assert trace.succeeded
        assert trace.failed_stage is None
        assert trace.evaluated_stages == [Stage.ATTENTION_SWITCH, Stage.COMPREHENSION]

    def test_out_of_order_recording_rejected(self):
        trace = StageTrace()
        trace.record(StageOutcome(Stage.COMPREHENSION, True, 0.8))
        with pytest.raises(ModelError):
            trace.record(StageOutcome(Stage.ATTENTION_SWITCH, True, 0.9))

    def test_failed_stage_reported(self):
        trace = StageTrace()
        trace.record(StageOutcome(Stage.ATTENTION_SWITCH, True, 0.9))
        trace.record(StageOutcome(Stage.ATTENTION_MAINTENANCE, False, 0.5))
        assert not trace.succeeded
        assert trace.failed_stage is Stage.ATTENTION_MAINTENANCE

    def test_outcome_lookup(self):
        trace = StageTrace()
        outcome = StageOutcome(Stage.ATTENTION_SWITCH, True, 0.7)
        trace.record(outcome)
        assert trace.outcome_for(Stage.ATTENTION_SWITCH) is outcome
        assert trace.outcome_for(Stage.BEHAVIOR) is None

    def test_success_probability_is_product(self):
        trace = StageTrace()
        trace.record(StageOutcome(Stage.ATTENTION_SWITCH, True, 0.5))
        trace.record(StageOutcome(Stage.ATTENTION_MAINTENANCE, True, 0.5))
        assert trace.success_probability() == pytest.approx(0.25)

    def test_skipped_stages_tracked(self):
        trace = StageTrace()
        trace.skip(Stage.KNOWLEDGE_RETENTION)
        trace.skip(Stage.KNOWLEDGE_TRANSFER)
        assert Stage.KNOWLEDGE_RETENTION in trace.skipped
        assert trace.succeeded  # nothing evaluated, nothing failed

    def test_empty_trace_probability_is_one(self):
        assert StageTrace().success_probability() == 1.0
