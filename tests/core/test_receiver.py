"""Tests for the human-receiver model (personal variables, intentions, capabilities)."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.receiver import (
    AttitudesBeliefs,
    Capabilities,
    Demographics,
    EducationLevel,
    HumanReceiver,
    Intentions,
    KnowledgeExperience,
    Motivation,
    PersonalVariables,
    expert_receiver,
    novice_receiver,
    typical_receiver,
)


class TestDemographics:
    def test_default_is_valid(self):
        assert Demographics().age == 35

    def test_implausible_age_rejected(self):
        with pytest.raises(ModelError):
            Demographics(age=200)

    def test_disabilities_flag(self):
        assert not Demographics().has_disabilities
        assert Demographics(disabilities=("low vision",)).has_disabilities

    def test_education_weights_ordered(self):
        weights = [level.weight for level in (
            EducationLevel.PRIMARY,
            EducationLevel.SECONDARY,
            EducationLevel.UNDERGRADUATE,
            EducationLevel.GRADUATE,
        )]
        assert weights == sorted(weights)


class TestKnowledgeExperience:
    def test_expertise_monotone_in_security_knowledge(self):
        low = KnowledgeExperience(security_knowledge=0.1)
        high = KnowledgeExperience(security_knowledge=0.9)
        assert high.expertise > low.expertise

    def test_fields_validated(self):
        with pytest.raises(ModelError):
            KnowledgeExperience(security_knowledge=1.2)

    def test_expertise_bounded(self):
        maxed = KnowledgeExperience(
            security_knowledge=1.0, domain_knowledge=1.0, computer_proficiency=1.0
        )
        assert 0.0 <= maxed.expertise <= 1.0


class TestIntentions:
    def test_belief_score_decreases_with_annoyance(self):
        calm = AttitudesBeliefs(annoyance=0.0)
        annoyed = AttitudesBeliefs(annoyance=0.9)
        assert annoyed.belief_score < calm.belief_score

    def test_belief_score_increases_with_trust(self):
        assert AttitudesBeliefs(trust=0.9).belief_score > AttitudesBeliefs(trust=0.2).belief_score

    def test_motivation_decreases_with_conflicting_goals(self):
        focused = Motivation(conflicting_goals=0.0)
        conflicted = Motivation(conflicting_goals=0.9)
        assert conflicted.motivation_score < focused.motivation_score

    def test_motivation_increases_with_consequences(self):
        assert (
            Motivation(perceived_consequences=0.9).motivation_score
            > Motivation(perceived_consequences=0.1).motivation_score
        )

    def test_incentives_raise_motivation(self):
        assert (
            Motivation(incentives=0.8).motivation_score
            > Motivation(incentives=0.0).motivation_score
        )

    def test_intention_score_combines_both(self):
        strong = Intentions(
            attitudes=AttitudesBeliefs(trust=0.9, risk_perception=0.8),
            motivation=Motivation(perceived_consequences=0.9, conflicting_goals=0.0),
        )
        weak = Intentions(
            attitudes=AttitudesBeliefs(trust=0.2, risk_perception=0.1),
            motivation=Motivation(perceived_consequences=0.1, conflicting_goals=0.9),
        )
        assert strong.intention_score > weak.intention_score
        assert 0.0 <= weak.intention_score <= 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            AttitudesBeliefs(trust=-0.5)
        with pytest.raises(ModelError):
            Motivation(incentives=1.5)


class TestCapabilities:
    def test_capability_score_penalizes_missing_software(self):
        with_software = Capabilities(has_required_software=True)
        without_software = Capabilities(has_required_software=False)
        assert without_software.capability_score < with_software.capability_score

    def test_meets_requires_every_dimension(self):
        strong = Capabilities(knowledge_to_act=0.8, cognitive_skill=0.8, memory_capacity=0.8)
        weak_requirement = Capabilities(
            knowledge_to_act=0.5, cognitive_skill=0.5, physical_skill=0.5, memory_capacity=0.5,
            has_required_software=False, has_required_device=False,
        )
        hard_requirement = Capabilities(
            knowledge_to_act=0.5, cognitive_skill=0.5, physical_skill=0.5, memory_capacity=0.95,
            has_required_software=False, has_required_device=False,
        )
        assert strong.meets(weak_requirement)
        assert not strong.meets(hard_requirement)

    def test_validation(self):
        with pytest.raises(ModelError):
            Capabilities(memory_capacity=2.0)


class TestReceiverProfiles:
    def test_expert_more_expert_than_novice(self):
        assert expert_receiver().expertise > typical_receiver().expertise > novice_receiver().expertise

    def test_expert_flag(self):
        assert expert_receiver().is_expert
        assert not novice_receiver().is_expert

    def test_profiles_have_distinct_names(self):
        names = {novice_receiver().name, typical_receiver().name, expert_receiver().name}
        assert len(names) == 3

    def test_receiver_aggregate_scores_bounded(self):
        for receiver in (novice_receiver(), typical_receiver(), expert_receiver()):
            assert 0.0 <= receiver.intention_score <= 1.0
            assert 0.0 <= receiver.capability_score <= 1.0

    def test_default_receiver_construction(self):
        receiver = HumanReceiver()
        assert receiver.name == "user"
        assert isinstance(receiver.personal_variables, PersonalVariables)
