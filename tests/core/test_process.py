"""Tests for the four-step human threat identification and mitigation process."""

import pytest

from repro.core.exceptions import ProcessError
from repro.core.process import (
    AutomationDecision,
    HumanThreatProcess,
    ProcessResult,
)
from repro.core.task import AutomationProfile, HumanSecurityTask, SecureSystem


class TestProcessSteps:
    def test_task_identification_returns_critical_tasks(self, small_system):
        process = HumanThreatProcess(small_system)
        tasks = process.identify_tasks()
        assert {task.name for task in tasks} == {task.name for task in small_system.tasks}

    def test_failure_identification_produces_analysis(self, small_system):
        process = HumanThreatProcess(small_system)
        analysis = process.identify_failures()
        assert len(analysis.failures) > 0

    def test_automation_decisions_have_rationale(self, small_system):
        process = HumanThreatProcess(small_system)
        analysis = process.identify_failures()
        outcomes = process.evaluate_automation(analysis)
        assert set(outcomes) == {task.name for task in small_system.tasks}
        for outcome in outcomes.values():
            assert outcome.rationale
            assert 0.0 <= outcome.human_reliability_estimate <= 1.0

    def test_unautomatable_task_keeps_human(self, small_system):
        process = HumanThreatProcess(small_system)
        analysis = process.identify_failures()
        outcomes = process.evaluate_automation(analysis)
        # The fixture tasks use the default AutomationProfile (not automatable).
        assert all(outcome.decision is AutomationDecision.KEEP_HUMAN
                   for outcome in outcomes.values())

    def test_reliable_automation_recommended_for_unreliable_humans(self):
        task = HumanSecurityTask(
            name="automatable",
            desired_action="act",
            automation=AutomationProfile(
                can_fully_automate=True,
                automation_accuracy=0.95,
                automation_false_positive_rate=0.01,
                human_information_advantage=0.1,
            ),
        )
        system = SecureSystem(name="s", tasks=[task])
        process = HumanThreatProcess(system)
        analysis = process.identify_failures()
        outcomes = process.evaluate_automation(analysis)
        assert outcomes["automatable"].decision is AutomationDecision.AUTOMATE

    def test_vendor_constraint_mentioned_for_partial_automation(self):
        task = HumanSecurityTask(
            name="constrained",
            desired_action="act",
            automation=AutomationProfile(
                can_fully_automate=True,
                automation_accuracy=0.5,
                human_information_advantage=0.8,
                vendor_constraints="vendor requires an override",
            ),
        )
        system = SecureSystem(name="s", tasks=[task])
        process = HumanThreatProcess(system)
        analysis = process.identify_failures()
        outcomes = process.evaluate_automation(analysis)
        assert outcomes["constrained"].decision is AutomationDecision.PARTIALLY_AUTOMATE
        assert "vendor requires an override" in outcomes["constrained"].rationale

    def test_mitigation_plans_for_human_tasks(self, small_system):
        process = HumanThreatProcess(small_system)
        analysis = process.identify_failures()
        outcomes = process.evaluate_automation(analysis)
        plans = process.plan_mitigations(analysis, outcomes)
        assert set(plans) == set(analysis.task_analyses)
        assert any(plan.recommendations for plan in plans.values())


class TestFullProcess:
    def test_single_pass_records_everything(self, small_system):
        process = HumanThreatProcess(small_system)
        process_pass = process.run_pass()
        assert process_pass.pass_number == 1
        assert process_pass.identified_tasks
        assert process_pass.residual_risk >= 0.0
        assert set(process_pass.mitigation_plans) == set(process_pass.analysis.task_analyses)

    def test_iteration_reduces_or_stops(self, small_system):
        process = HumanThreatProcess(small_system, acceptable_risk=0.0)
        result = process.run(max_passes=3)
        trajectory = result.risk_trajectory()
        assert len(trajectory) >= 1
        assert all(later <= earlier + 1e-9 for earlier, later in zip(trajectory, trajectory[1:]))

    def test_stops_when_risk_acceptable(self, small_system):
        process = HumanThreatProcess(small_system, acceptable_risk=1e6)
        result = process.run(max_passes=3)
        assert result.pass_count == 1

    def test_tasks_without_communication_surfaced(self):
        silent = HumanSecurityTask(name="silent", desired_action="act")
        system = SecureSystem(name="s", tasks=[silent])
        result = HumanThreatProcess(system).run(max_passes=1)
        assert "silent" in result.final_pass.tasks_without_communication

    def test_final_pass_of_empty_result_raises(self):
        with pytest.raises(ProcessError):
            ProcessResult(system_name="s", passes=[]).final_pass

    def test_invalid_parameters_rejected(self, small_system):
        with pytest.raises(ProcessError):
            HumanThreatProcess(small_system, mitigation_discount=1.5)
        with pytest.raises(ProcessError):
            HumanThreatProcess(small_system, acceptable_risk=-1.0)
        with pytest.raises(ProcessError):
            HumanThreatProcess(small_system).run(max_passes=0)

    def test_converged_detection(self, small_system):
        process = HumanThreatProcess(small_system, acceptable_risk=0.0)
        result = process.run(max_passes=5)
        # Either the process converged (risk stopped falling) or it hit the
        # pass limit while still improving; both are valid terminations.
        assert result.pass_count <= 5
        if result.pass_count >= 2 and result.pass_count < 5:
            final_delta = result.passes[-2].residual_risk - result.passes[-1].residual_risk
            assert final_delta >= 0.0
