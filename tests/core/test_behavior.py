"""Tests for the behavior stage: outcomes, task design, and design assessment."""

import pytest

from repro.core.behavior import (
    BehaviorFailureKind,
    BehaviorOutcome,
    TaskDesign,
    assess_behavior_design,
)
from repro.core.exceptions import ModelError


class TestBehaviorOutcome:
    def test_hazard_avoided_semantics(self):
        assert BehaviorOutcome.SUCCESS.hazard_avoided
        assert BehaviorOutcome.FAILED_SAFE.hazard_avoided
        assert BehaviorOutcome.SUCCESS_BUT_PREDICTABLE.hazard_avoided
        assert not BehaviorOutcome.FAILURE.hazard_avoided
        assert not BehaviorOutcome.NO_ACTION.hazard_avoided


class TestBehaviorFailureKind:
    def test_all_kinds_have_descriptions(self):
        for kind in BehaviorFailureKind:
            assert len(kind.description) > 20


class TestTaskDesign:
    def test_gulf_widths_complement_design_quality(self):
        design = TaskDesign(controls_discoverable=0.3, feedback_quality=0.4)
        assert design.gulf_of_execution == pytest.approx(0.7)
        assert design.gulf_of_evaluation == pytest.approx(0.6)

    def test_single_step_has_no_lapse_exposure(self):
        assert TaskDesign(steps=1).lapse_exposure == 0.0

    def test_lapse_exposure_grows_with_steps(self):
        short = TaskDesign(steps=2)
        long = TaskDesign(steps=8)
        assert long.lapse_exposure > short.lapse_exposure

    def test_guidance_reduces_lapse_exposure(self):
        unguided = TaskDesign(steps=6, guidance_through_steps=False)
        guided = TaskDesign(steps=6, guidance_through_steps=True)
        assert guided.lapse_exposure < unguided.lapse_exposure

    def test_slip_exposure_from_confusable_controls(self):
        clear = TaskDesign(controls_distinguishable=0.95)
        confusing = TaskDesign(controls_distinguishable=0.3)
        assert confusing.slip_exposure > clear.slip_exposure

    def test_validation(self):
        with pytest.raises(ModelError):
            TaskDesign(steps=-1)
        with pytest.raises(ModelError):
            TaskDesign(choice_predictability=1.5)


class TestBehaviorAssessment:
    def test_good_design_has_high_success_likelihood(self):
        design = TaskDesign(
            steps=1,
            controls_discoverable=0.95,
            feedback_quality=0.9,
            controls_distinguishable=0.95,
        )
        assessment = assess_behavior_design(design, receiver_capability=0.7, receiver_knowledge=0.7)
        assert assessment.success_likelihood > 0.8
        assert not assessment.notes

    def test_poor_design_flags_gulfs(self):
        design = TaskDesign(
            steps=6,
            controls_discoverable=0.2,
            feedback_quality=0.2,
            controls_distinguishable=0.4,
        )
        assessment = assess_behavior_design(design, receiver_capability=0.4, receiver_knowledge=0.4)
        assert assessment.success_likelihood < 0.5
        assert BehaviorFailureKind.GULF_OF_EXECUTION in assessment.dominant_risks
        assert BehaviorFailureKind.GULF_OF_EVALUATION in assessment.dominant_risks
        assert assessment.notes

    def test_predictability_only_when_choice_required(self):
        free_choice = TaskDesign(requires_unpredictable_choice=True, choice_predictability=0.6)
        no_choice = TaskDesign(requires_unpredictable_choice=False, choice_predictability=0.0)
        with_choice = assess_behavior_design(free_choice)
        without_choice = assess_behavior_design(no_choice)
        assert with_choice.risk_for(BehaviorFailureKind.PREDICTABLE_BEHAVIOR) == pytest.approx(0.6)
        assert without_choice.risk_for(BehaviorFailureKind.PREDICTABLE_BEHAVIOR) == 0.0

    def test_mistake_risk_decreases_with_knowledge(self):
        design = TaskDesign()
        naive = assess_behavior_design(design, receiver_knowledge=0.1)
        informed = assess_behavior_design(design, receiver_knowledge=0.9)
        assert naive.risk_for(BehaviorFailureKind.MISTAKE) > informed.risk_for(
            BehaviorFailureKind.MISTAKE
        )

    def test_dominant_risks_sorted_by_score(self):
        design = TaskDesign(
            steps=8, controls_discoverable=0.2, feedback_quality=0.9, controls_distinguishable=0.9
        )
        assessment = assess_behavior_design(design, receiver_capability=0.3, receiver_knowledge=0.8)
        scores = [assessment.risk_for(kind) for kind in assessment.dominant_risks]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelError):
            assess_behavior_design(TaskDesign(), receiver_capability=1.5)
        with pytest.raises(ModelError):
            assess_behavior_design(TaskDesign(), receiver_knowledge=-0.2)
