"""Tests for the Table-1 checklist encoding."""

import pytest

from repro.core.checklist import (
    TABLE_1,
    Checklist,
    all_questions,
    build_checklist,
    entry_for,
    iter_entries,
)
from repro.core.components import Component, ComponentGroup
from repro.core.exceptions import UnknownComponentError


class TestTable1Encoding:
    def test_one_entry_per_component(self):
        assert len(TABLE_1) == len(list(Component))
        assert {entry.component for entry in TABLE_1} == set(Component)

    def test_entries_in_table_order(self):
        assert [entry.component for entry in TABLE_1] == list(Component)

    def test_every_entry_has_questions_and_factors(self):
        for entry in TABLE_1:
            assert entry.questions
            assert entry.factors
            assert all(question.endswith("?") for question in entry.questions)

    def test_communication_entry_text(self):
        entry = entry_for(Component.COMMUNICATION)
        assert any("warning, notice, status indicator" in question for question in entry.questions)
        assert "Severity of hazard" in entry.factors

    def test_capabilities_entry_mentions_memorability(self):
        entry = entry_for(Component.CAPABILITIES)
        assert "Memorability" in entry.factors

    def test_attention_switch_mentions_habituation(self):
        entry = entry_for(Component.ATTENTION_SWITCH)
        assert "Habituation" in entry.factors

    def test_behavior_entry_mentions_gems(self):
        entry = entry_for(Component.BEHAVIOR)
        assert any("GEMS" in factor for factor in entry.factors)

    def test_interference_factors(self):
        entry = entry_for(Component.INTERFERENCE)
        assert "Malicious attackers" in entry.factors
        assert "Technology failures" in entry.factors

    def test_iter_entries_filtered_by_group(self):
        intention_entries = list(iter_entries(ComponentGroup.INTENTIONS))
        assert {entry.component for entry in intention_entries} == {
            Component.ATTITUDES_AND_BELIEFS,
            Component.MOTIVATION,
        }

    def test_all_questions_cover_every_component(self):
        questions = all_questions()
        assert {component for component, _question in questions} == set(Component)
        assert len(questions) >= 25


class TestAnswerableChecklist:
    def test_build_checklist_covers_all_questions(self):
        checklist = build_checklist(subject="test")
        assert len(checklist.answers) == len(all_questions())
        assert checklist.completion() == 0.0
        assert checklist.subject == "test"

    def test_build_checklist_subset(self):
        checklist = build_checklist(components=[Component.CAPABILITIES])
        assert all(
            answer.question.component is Component.CAPABILITIES for answer in checklist.answers
        )

    def test_answer_component_marks_all_its_questions(self):
        checklist = build_checklist()
        count = checklist.answer(Component.MOTIVATION, satisfactory=False, notes="low motivation")
        assert count == len(entry_for(Component.MOTIVATION).questions)
        assert Component.MOTIVATION in checklist.components_flagged()

    def test_completion_progresses(self):
        checklist = build_checklist()
        for component in Component:
            checklist.answer(component, satisfactory=True)
        assert checklist.completion() == pytest.approx(1.0)
        assert not checklist.pending()
        assert not checklist.unsatisfactory()

    def test_unsatisfactory_components_ordered(self):
        checklist = build_checklist()
        checklist.answer(Component.BEHAVIOR, satisfactory=False)
        checklist.answer(Component.COMMUNICATION, satisfactory=False)
        flagged = checklist.components_flagged()
        assert flagged == [Component.COMMUNICATION, Component.BEHAVIOR]

    def test_empty_checklist_completion_is_one(self):
        assert Checklist().completion() == 1.0
