"""Tests for the mitigation vocabulary and suggestion engine."""

import pytest

from repro.core.components import Component
from repro.core.exceptions import ModelError
from repro.core.failure import (
    FailureInventory,
    FailureLikelihood,
    FailureMode,
    FailureSeverity,
)
from repro.core.mitigation import (
    GENERIC_MITIGATIONS,
    Mitigation,
    MitigationStrategy,
    suggest_mitigations,
)


def _inventory(*components: Component) -> FailureInventory:
    inventory = FailureInventory(subject="test")
    for index, component in enumerate(components):
        inventory.add(
            FailureMode(
                identifier=f"failure-{index}",
                component=component,
                description="test",
                severity=FailureSeverity.MAJOR,
                likelihood=FailureLikelihood.LIKELY,
            )
        )
    return inventory


class TestMitigationModel:
    def test_strategies_have_descriptions(self):
        for strategy in MitigationStrategy:
            assert len(strategy.description) > 20

    def test_generic_catalog_covers_every_mitigable_component(self):
        covered = {
            component
            for mitigation in GENERIC_MITIGATIONS
            for component in mitigation.addresses_components
        }
        # Demographics are a design input (who the users are), not a failure
        # that can be mitigated, so they are the single uncovered component.
        expected = set(Component) - {Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS}
        assert expected.issubset(covered)

    def test_mitigation_validation(self):
        with pytest.raises(ModelError):
            Mitigation(
                name="",
                strategy=MitigationStrategy.SUPPORT,
                description="x",
                addresses_components=(Component.BEHAVIOR,),
            )
        with pytest.raises(ModelError):
            Mitigation(
                name="m",
                strategy=MitigationStrategy.SUPPORT,
                description="x",
                addresses_components=(),
            )
        with pytest.raises(ModelError):
            Mitigation(
                name="m",
                strategy=MitigationStrategy.SUPPORT,
                description="x",
                addresses_components=(Component.BEHAVIOR,),
                effectiveness=1.5,
            )

    def test_addresses(self):
        mitigation = Mitigation(
            name="m",
            strategy=MitigationStrategy.SUPPORT,
            description="x",
            addresses_components=(Component.CAPABILITIES,),
        )
        capability_failure = FailureMode(
            identifier="f", component=Component.CAPABILITIES, description="d"
        )
        motivation_failure = FailureMode(
            identifier="g", component=Component.MOTIVATION, description="d"
        )
        assert mitigation.addresses(capability_failure)
        assert not mitigation.addresses(motivation_failure)

    def test_priority_score_discounted_by_cost(self):
        cheap = Mitigation(
            name="cheap", strategy=MitigationStrategy.SUPPORT, description="x",
            addresses_components=(Component.BEHAVIOR,), effectiveness=0.5, cost=0.0,
        )
        expensive = Mitigation(
            name="expensive", strategy=MitigationStrategy.SUPPORT, description="x",
            addresses_components=(Component.BEHAVIOR,), effectiveness=0.5, cost=1.0,
        )
        assert cheap.priority_score(1.0) > expensive.priority_score(1.0)


class TestSuggestionEngine:
    def test_capability_failures_rank_capability_mitigations_first(self):
        plan = suggest_mitigations(_inventory(Component.CAPABILITIES, Component.CAPABILITIES))
        top = plan.ranked_mitigations()[0]
        assert Component.CAPABILITIES in top.addresses_components

    def test_attention_failures_rank_activeness_mitigations(self):
        plan = suggest_mitigations(_inventory(Component.ATTENTION_SWITCH))
        names = [mitigation.name for mitigation in plan.top(3)]
        assert "make-communication-active" in names

    def test_interference_failures_rank_channel_protection(self):
        plan = suggest_mitigations(_inventory(Component.INTERFERENCE))
        assert plan.covers_component(Component.INTERFERENCE)
        assert "protect-communication-channel" in [m.name for m in plan.ranked_mitigations()]

    def test_empty_inventory_gives_empty_plan(self):
        plan = suggest_mitigations(FailureInventory())
        assert not plan.recommendations
        assert not plan.unaddressed

    def test_scores_are_descending(self):
        plan = suggest_mitigations(
            _inventory(Component.CAPABILITIES, Component.MOTIVATION, Component.COMPREHENSION)
        )
        scores = [score for _mitigation, score in plan.recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_minimum_score_filters(self):
        inventory = _inventory(Component.CAPABILITIES)
        unfiltered = suggest_mitigations(inventory)
        filtered = suggest_mitigations(inventory, minimum_score=10.0)
        assert len(filtered.recommendations) < len(unfiltered.recommendations)

    def test_custom_catalog_respected(self):
        custom = [
            Mitigation(
                name="only-option",
                strategy=MitigationStrategy.TRAIN,
                description="x",
                addresses_components=(Component.MOTIVATION,),
            )
        ]
        plan = suggest_mitigations(_inventory(Component.MOTIVATION), catalog=custom)
        assert [mitigation.name for mitigation in plan.ranked_mitigations()] == ["only-option"]

    def test_unaddressed_failures_reported(self):
        custom = [
            Mitigation(
                name="narrow",
                strategy=MitigationStrategy.SUPPORT,
                description="x",
                addresses_components=(Component.BEHAVIOR,),
            )
        ]
        plan = suggest_mitigations(_inventory(Component.MOTIVATION), catalog=custom)
        assert plan.unaddressed
        assert not plan.recommendations
