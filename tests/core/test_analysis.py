"""Tests for the framework analysis (failure identification) rules."""

import pytest

from repro.core.analysis import (
    ComponentRating,
    SystemAnalysis,
    TaskAnalysis,
    analyze_system,
    analyze_task,
)
from repro.core.communication import Communication, CommunicationType, HazardProfile, HazardSeverity
from repro.core.components import Component
from repro.core.exceptions import AnalysisError
from repro.core.impediments import Environment, Interference, InterferenceSource, StimulusKind
from repro.core.receiver import expert_receiver, novice_receiver
from repro.core.stages import Stage
from repro.core.task import HumanSecurityTask, SecureSystem


class TestComponentRating:
    def test_from_score_bands(self):
        assert ComponentRating.from_score(0.9) is ComponentRating.STRONG
        assert ComponentRating.from_score(0.7) is ComponentRating.ADEQUATE
        assert ComponentRating.from_score(0.4) is ComponentRating.WEAK
        assert ComponentRating.from_score(0.1) is ComponentRating.CRITICAL

    def test_problematic_flags(self):
        assert ComponentRating.CRITICAL.is_problematic
        assert ComponentRating.WEAK.is_problematic
        assert not ComponentRating.STRONG.is_problematic


class TestTaskAnalysis:
    def test_every_component_assessed(self, warning_task):
        analysis = analyze_task(warning_task)
        assert set(analysis.assessments) == set(Component)

    def test_checklist_fully_answered(self, warning_task):
        analysis = analyze_task(warning_task)
        assert analysis.checklist.completion() == pytest.approx(1.0)

    def test_missing_communication_is_critical(self):
        task = HumanSecurityTask(name="silent", desired_action="act")
        analysis = analyze_task(task)
        communication_assessment = analysis.assessment(Component.COMMUNICATION)
        assert communication_assessment.rating is ComponentRating.CRITICAL
        assert any(
            failure.component is Component.COMMUNICATION for failure in analysis.failures
        )

    def test_capability_gap_produces_capability_failure(self, memory_task):
        analysis = analyze_task(memory_task)
        capability_failures = analysis.failures.by_component(Component.CAPABILITIES)
        assert capability_failures
        assert analysis.assessment(Component.CAPABILITIES).rating.is_problematic

    def test_passive_warning_in_busy_environment_flags_attention(self, passive_indicator,
                                                                  busy_environment):
        task = HumanSecurityTask(
            name="notice-passive",
            communication=passive_indicator,
            environment=busy_environment,
            desired_action="react to the indicator",
        )
        analysis = analyze_task(task)
        assert analysis.failures.by_component(Component.ATTENTION_SWITCH)
        assert analysis.assessment(Component.ENVIRONMENTAL_STIMULI).score < 0.8

    def test_spoofable_indicator_flags_interference(self, blocking_warning):
        environment = Environment()
        environment.add_interference(
            Interference(source=InterferenceSource.MALICIOUS_ATTACKER, spoof_probability=0.4)
        )
        task = HumanSecurityTask(
            name="spoofable",
            communication=blocking_warning,
            environment=environment,
            desired_action="act",
        )
        analysis = analyze_task(task)
        assert analysis.failures.by_component(Component.INTERFERENCE)

    def test_too_passive_communication_flagged(self):
        task = HumanSecurityTask(
            name="too-passive",
            communication=Communication(
                name="subtle",
                comm_type=CommunicationType.STATUS_INDICATOR,
                activeness=0.05,
                conspicuity=0.1,
                hazard=HazardProfile(severity=HazardSeverity.CRITICAL, user_action_necessity=0.95),
            ),
            desired_action="act",
        )
        analysis = analyze_task(task)
        identifiers = [failure.identifier for failure in analysis.failures]
        assert any("too-passive" in identifier for identifier in identifiers)

    def test_expert_receiver_triggers_second_guessing_finding(self, warning_task):
        analysis = analyze_task(warning_task, receiver=expert_receiver())
        findings = " ".join(analysis.findings())
        assert "second-guess" in findings

    def test_novice_receiver_triggers_mental_model_failure(self, warning_task):
        analysis = analyze_task(warning_task, receiver=novice_receiver())
        assert analysis.failures.by_component(Component.KNOWLEDGE_AND_EXPERIENCE)

    def test_success_probability_in_range(self, warning_task, memory_task):
        for task in (warning_task, memory_task):
            analysis = analyze_task(task)
            assert 0.0 < analysis.success_probability < 1.0

    def test_weakest_component_has_minimum_score(self, memory_task):
        analysis = analyze_task(memory_task)
        weakest = analysis.weakest_component()
        weakest_score = analysis.assessment(weakest).score
        assert all(weakest_score <= assessment.score for assessment in analysis.assessments.values())

    def test_problematic_components_are_ordered_subset(self, memory_task):
        analysis = analyze_task(memory_task)
        problematic = analysis.problematic_components()
        assert all(analysis.assessment(component).rating.is_problematic for component in problematic)
        indices = [list(Component).index(component) for component in problematic]
        assert indices == sorted(indices)

    def test_retention_not_applicable_for_warnings(self, warning_task):
        analysis = analyze_task(warning_task)
        retention = analysis.assessment(Component.KNOWLEDGE_RETENTION)
        assert retention.rating is ComponentRating.STRONG
        assert any("Not applicable" in finding for finding in retention.findings)

    def test_predictable_choice_flagged_at_behavior(self):
        from repro.core.behavior import TaskDesign

        task = HumanSecurityTask(
            name="pick-graphical-password",
            communication=Communication(name="g", comm_type=CommunicationType.NOTICE,
                                        activeness=0.6, clarity=0.7),
            task_design=TaskDesign(requires_unpredictable_choice=True, choice_predictability=0.6),
            desired_action="choose unpredictably",
        )
        analysis = analyze_task(task)
        behavior_failures = analysis.failures.by_component(Component.BEHAVIOR)
        assert any(failure.behavior_kind is not None for failure in behavior_failures)


class TestSystemAnalysis:
    def test_system_analysis_covers_critical_tasks(self, small_system):
        analysis = analyze_system(small_system)
        assert set(analysis.task_analyses) == {task.name for task in small_system.tasks}

    def test_merged_failures_tagged_with_system(self, small_system):
        analysis = analyze_system(small_system)
        assert all(failure.system_name == small_system.name for failure in analysis.failures)

    def test_weakest_task_identified(self, small_system):
        analysis = analyze_system(small_system)
        weakest = analysis.weakest_task()
        assert weakest in analysis.task_analyses
        weakest_probability = analysis.task_analyses[weakest].success_probability
        assert all(
            weakest_probability <= task_analysis.success_probability
            for task_analysis in analysis.task_analyses.values()
        )

    def test_mean_success_probability(self, small_system):
        analysis = analyze_system(small_system)
        values = [ta.success_probability for ta in analysis.task_analyses.values()]
        assert analysis.mean_success_probability() == pytest.approx(sum(values) / len(values))

    def test_missing_task_lookup_raises(self, small_system):
        analysis = analyze_system(small_system)
        with pytest.raises(AnalysisError):
            analysis.analysis_for("nonexistent")

    def test_noncritical_tasks_excluded(self):
        system = SecureSystem(
            name="s",
            tasks=[
                HumanSecurityTask(name="critical", desired_action="act"),
                HumanSecurityTask(name="optional", security_critical=False),
            ],
        )
        analysis = analyze_system(system)
        assert "optional" not in analysis.task_analyses
