"""Tests for report rendering."""

import pytest

from repro.core.analysis import analyze_system, analyze_task
from repro.core.mitigation import suggest_mitigations
from repro.core.process import HumanThreatProcess
from repro.core.report import (
    render_failure_table,
    render_mitigation_plan,
    render_process_result,
    render_system_analysis,
    render_task_analysis,
)


class TestTaskReport:
    def test_report_includes_components_and_probability(self, warning_task):
        analysis = analyze_task(warning_task)
        report = render_task_analysis(analysis)
        assert "Framework analysis: heed-test-warning" in report
        assert "Communication" in report
        assert "Capabilities" in report
        assert "%" in report

    def test_report_lists_failures_when_present(self, memory_task):
        analysis = analyze_task(memory_task)
        report = render_task_analysis(analysis)
        assert "Identified failure modes" in report
        assert "capabilities" in report.lower()

    def test_stage_probabilities_rendered(self, warning_task):
        analysis = analyze_task(warning_task)
        report = render_task_analysis(analysis)
        assert "Stage success probabilities" in report
        assert "attention switch" in report


class TestSystemAndProcessReports:
    def test_system_report_includes_every_task(self, small_system):
        analysis = analyze_system(small_system)
        report = render_system_analysis(analysis)
        for task in small_system.tasks:
            assert task.name in report
        assert "Weakest task" in report

    def test_process_report_shows_passes_and_decisions(self, small_system):
        result = HumanThreatProcess(small_system).run(max_passes=2)
        report = render_process_result(result)
        assert "Pass 1" in report
        assert "Task automation decisions" in report
        assert "Residual risk" in report

    def test_mitigation_plan_report(self, memory_task):
        analysis = analyze_task(memory_task)
        plan = suggest_mitigations(analysis.failures)
        report = render_mitigation_plan(plan)
        assert "Mitigation plan" in report
        assert "1." in report

    def test_empty_mitigation_plan_report(self):
        from repro.core.failure import FailureInventory

        plan = suggest_mitigations(FailureInventory())
        report = render_mitigation_plan(plan)
        assert "No mitigations recommended" in report

    def test_failure_table_is_markdown(self, memory_task):
        analysis = analyze_task(memory_task)
        table = render_failure_table(analysis.failures)
        assert table.startswith("| Failure |")
        assert table.count("|") > 10
