"""Result-cache unit tests: identity, accounting, durability, concurrency."""

from __future__ import annotations

import threading

from repro.service.cache import CACHE_FILENAME, ResultCache, row_cache_key

ROW = {
    "experiment": "exp",
    "scenario": "passwords",
    "variant": "passwords",
    "params": {},
    "mode": "batch",
    "metrics": {"failure_rate": 0.25},
    "seed": 7,
    "n_receivers": 40,
    "rounds": 1,
    "rng_mode": "counter",
    "task": "recall-passwords",
    "variant_hash": "abc123",
}


class TestKeys:
    def test_row_key_reads_recorded_identity(self):
        key = row_cache_key(ROW)
        assert key == ("abc123", 7, 40, "batch", "counter", 1, "recall-passwords")

    def test_task_separates_otherwise_identical_rows(self):
        other = dict(ROW, task="change-password", metrics={"failure_rate": 0.9})
        cache = ResultCache()
        assert cache.store(row_cache_key(ROW), ROW)
        assert cache.store(row_cache_key(other), other)
        served = cache.serve(row_cache_key(other))
        assert served is not None and served["metrics"]["failure_rate"] == 0.9


class TestAccounting:
    def test_serve_counts_hits_and_misses(self):
        cache = ResultCache()
        key = row_cache_key(ROW)
        assert cache.serve(key) is None
        cache.store(key, ROW)
        assert cache.serve(key) == ROW
        cache.note_misses(2)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 3}

    def test_peek_does_not_touch_counters(self):
        cache = ResultCache()
        key = row_cache_key(ROW)
        assert not cache.peek(key)
        cache.store(key, ROW)
        assert cache.peek(key)
        assert cache.stats() == {"entries": 1, "hits": 0, "misses": 0}

    def test_served_payloads_are_isolated_copies(self):
        cache = ResultCache()
        key = row_cache_key(ROW)
        cache.store(key, ROW)
        first = cache.serve(key)
        first["metrics"]["failure_rate"] = 999.0
        again = cache.serve(key)
        assert again["metrics"]["failure_rate"] == 0.25


class TestFirstWriteWins:
    def test_second_store_never_replaces_bytes(self):
        cache = ResultCache()
        key = row_cache_key(ROW)
        assert cache.store(key, ROW) is True
        rival = dict(ROW, metrics={"failure_rate": 0.99})
        assert cache.store(key, rival) is False
        assert cache.serve(key)["metrics"]["failure_rate"] == 0.25


class TestPersistence:
    def test_restarted_cache_replays_its_stream(self, tmp_path):
        path = tmp_path / CACHE_FILENAME
        cache = ResultCache(path)
        cache.store(row_cache_key(ROW), ROW)
        cache.close()
        warmed = ResultCache(path)
        assert warmed.serve(row_cache_key(ROW)) == ROW
        assert warmed.stats()["entries"] == 1
        warmed.close()

    def test_torn_final_line_reads_as_never_written(self, tmp_path):
        path = tmp_path / CACHE_FILENAME
        cache = ResultCache(path)
        cache.store(row_cache_key(ROW), ROW)
        cache.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": ["torn"')  # killed mid-append
        recovered = ResultCache(path)
        assert recovered.stats()["entries"] == 1
        recovered.close()

    def test_unpersisted_cache_writes_nothing(self, tmp_path):
        cache = ResultCache()
        cache.store(row_cache_key(ROW), ROW)
        cache.close()
        assert list(tmp_path.iterdir()) == []


class TestConcurrency:
    def test_racing_stores_and_serves_stay_consistent(self):
        cache = ResultCache()
        key = row_cache_key(ROW)
        inserted = []

        def writer(value: float) -> None:
            payload = dict(ROW, metrics={"failure_rate": value})
            if cache.store(key, payload):
                inserted.append(value)

        def reader() -> None:
            for _ in range(50):
                payload = cache.serve(key)
                if payload is not None:
                    assert payload["metrics"]["failure_rate"] in (0.1, 0.2, 0.3)

        threads = [
            threading.Thread(target=writer, args=(value,))
            for value in (0.1, 0.2, 0.3)
        ] + [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one writer won, and every subsequent serve returns its bytes.
        assert len(inserted) == 1
        assert cache.serve(key)["metrics"]["failure_rate"] == inserted[0]

    def test_concurrent_distinct_keys_all_land(self):
        cache = ResultCache()

        def store_many(offset: int) -> None:
            for index in range(25):
                row = dict(
                    ROW,
                    seed=offset * 100 + index,
                    variant_hash=f"hash-{offset}-{index}",
                )
                cache.store(row_cache_key(row), row)

        threads = [
            threading.Thread(target=store_many, args=(offset,))
            for offset in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats()["entries"] == 100
