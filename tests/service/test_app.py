"""Routing-core tests: dispatch, error mapping, WSGI behavior."""

from __future__ import annotations

from repro.service import create_app

from .conftest import wsgi_call


class TestRouting:
    def test_unknown_route_is_404(self, app):
        status, payload = app.handle("GET", "/nope")
        assert status == 404
        assert payload["error"] == "not_found"

    def test_wrong_method_is_405_with_allowed(self, app):
        status, payload = app.handle("GET", "/analyze")
        assert status == 405
        assert payload["error"] == "method_not_allowed"
        assert payload["allowed"] == ["POST"]

    def test_path_params_capture(self, app):
        status, payload = app.handle("GET", "/scenarios/passwords")
        assert status == 200
        assert payload["name"] == "passwords"

    def test_trailing_slash_matches_same_route(self, app):
        assert app.handle("GET", "/health/")[0] == 200

    def test_missing_body_is_400(self, app):
        status, payload = app.handle("POST", "/analyze")
        assert status == 400
        assert "JSON object body" in payload["message"]

    def test_unexpected_handler_error_is_500_not_unwind(self, app, monkeypatch):
        def boom():
            raise RuntimeError("stats exploded")

        monkeypatch.setattr(app.state.cache, "stats", boom)
        status, payload = app.handle("GET", "/health")
        assert status == 500
        assert payload["error"] == "internal"
        assert "RuntimeError" in payload["message"]


class TestWsgi:
    def test_health_over_wsgi_environ(self, app):
        status, payload = wsgi_call(app, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["scenarios"] > 0

    def test_malformed_json_body_is_400(self, app):
        status, payload = wsgi_call(
            app, "POST", "/analyze", raw_body=b"{not json"
        )
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_non_object_json_body_is_400(self, app):
        status, payload = wsgi_call(app, "POST", "/analyze", raw_body=b"[1, 2]")
        assert status == 400
        assert "JSON object" in payload["message"]

    def test_post_analyze_over_wsgi(self, app):
        status, payload = wsgi_call(
            app, "POST", "/analyze", body={"scenario": "passwords"}
        )
        assert status == 200
        assert payload["row"]["mode"] == "analytic"


class TestCreateApp:
    def test_create_app_requires_config_or_state(self):
        import pytest

        with pytest.raises(ValueError):
            create_app()

    def test_create_app_from_config_builds_state(self, tmp_path):
        from repro.service import ServiceConfig

        app = create_app(
            ServiceConfig(data_dir=str(tmp_path / "svc"), threaded_worker=False)
        )
        try:
            assert app.handle("GET", "/health")[0] == 200
        finally:
            app.state.close()
