"""Job ledger and worker: streams, crash visibility, restart recovery."""

from __future__ import annotations

from repro.io.shards import load_checkpoint
from repro.service import ServiceConfig, ServiceState, create_app
from repro.service.jobs import JobStore

SWEEP = {
    "scenario": "passwords",
    "grid": {"rounds": [1, 2]},
    "n_receivers": 25,
    "seed": 6,
    "name": "job-sweep",
    "detach": True,
}


def submit_and_run(app, state, body=SWEEP):
    status, payload = app.handle("POST", "/sweep", body=dict(body))
    assert status == 202
    state.run_pending_jobs()
    return payload["job"]["job_id"]


class TestLifecycle:
    def test_done_job_streams_every_transition(self, app, service_state):
        job_id = submit_and_run(app, service_state)
        status, payload = app.handle("GET", f"/jobs/{job_id}/events")
        assert status == 200
        kinds = [event["event"] for event in payload["events"]]
        assert kinds[0] == "submitted"
        assert kinds[1] == "running"
        assert "progress" in kinds
        assert kinds[-1] == "done"
        # seq is strictly ordered: the ledger is one append-only stream.
        assert [event["seq"] for event in payload["events"]] == list(
            range(len(kinds))
        )

    def test_progress_observations_come_from_shard_backend(
        self, app, service_state
    ):
        job_id = submit_and_run(app, service_state)
        record = service_state.jobs.get(job_id)
        assert record.progress["variants_done"] == 2
        assert record.progress["variants_total"] == 2
        assert record.progress["rows_committed"] == 2

    def test_job_checkpoint_files_live_in_job_dir(self, app, service_state):
        job_id = submit_and_run(app, service_state)
        entries = load_checkpoint(service_state.jobs.job_dir(job_id))
        rows = [row for _, header, shard_rows in entries for row in shard_rows]
        assert len(rows) == 2  # the ledger itself is skipped as telemetry

    def test_unknown_job_is_404(self, app):
        assert app.handle("GET", "/jobs/job-9999")[0] == 404
        assert app.handle("GET", "/jobs/job-9999/events")[0] == 404

    def test_jobs_listing(self, app, service_state):
        submit_and_run(app, service_state)
        status, payload = app.handle("GET", "/jobs")
        assert status == 200
        assert [job["status"] for job in payload["jobs"]] == ["done"]


class TestFailureInjection:
    def test_worker_crash_marks_failed_with_error_in_stream(
        self, app, service_state, monkeypatch
    ):
        def exploding_executor(job_id: str):
            raise RuntimeError("worker died mid-variant")

        monkeypatch.setattr(
            service_state.worker, "_executor", exploding_executor
        )
        status, payload = app.handle("POST", "/sweep", body=dict(SWEEP))
        assert status == 202
        job_id = payload["job"]["job_id"]
        service_state.run_pending_jobs()

        status, payload = app.handle("GET", f"/jobs/{job_id}")
        assert payload["job"]["status"] == "failed"
        assert "worker died mid-variant" in payload["job"]["error"]

        status, payload = app.handle("GET", f"/jobs/{job_id}/events")
        kinds = [event["event"] for event in payload["events"]]
        assert kinds == ["submitted", "running", "failed"]
        assert "worker died mid-variant" in payload["events"][-1]["error"]

    def test_failed_job_result_fetch_is_a_clean_400(
        self, app, service_state, monkeypatch
    ):
        monkeypatch.setattr(
            service_state.worker,
            "_executor",
            lambda job_id: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        _, payload = app.handle("POST", "/sweep", body=dict(SWEEP))
        job_id = payload["job"]["job_id"]
        service_state.run_pending_jobs()
        status, payload = app.handle("GET", f"/results/{job_id}")
        assert status == 400
        assert payload["status"] == "failed"


class TestRestartRecovery:
    def test_restarted_store_marks_in_flight_jobs_interrupted(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        record = store.submit({"scenario": "passwords"})
        store.mark_running(record.job_id)
        store.close()  # the process dies here, mid-run

        reopened = JobStore(tmp_path / "jobs")
        recovered = reopened.get(record.job_id)
        assert recovered.status == "failed"
        assert "restarted" in recovered.error
        kinds = [event["event"] for event in reopened.events(record.job_id)]
        assert kinds == ["submitted", "running", "interrupted"]
        reopened.close()

    def test_restarted_store_keeps_done_jobs_done(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        record = store.submit({"scenario": "passwords"})
        store.mark_running(record.job_id)
        store.mark_done(record.job_id, {"rows": 2})
        store.close()

        reopened = JobStore(tmp_path / "jobs")
        assert reopened.get(record.job_id).status == "done"
        assert reopened.get(record.job_id).summary == {"rows": 2}
        reopened.close()

    def test_restarted_service_still_serves_old_job_results(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        state = ServiceState(
            ServiceConfig(
                data_dir=data_dir, inline_threshold=500, threaded_worker=False
            )
        )
        app = create_app(state=state)
        job_id = submit_and_run(app, state)
        first = app.handle("GET", f"/results/{job_id}")[1]
        state.close()

        # A fresh process over the same data directory: ledger and
        # checkpoints replay; the result is byte-identical.
        reopened = ServiceState(
            ServiceConfig(
                data_dir=data_dir, inline_threshold=500, threaded_worker=False
            )
        )
        app2 = create_app(state=reopened)
        status, second = app2.handle("GET", f"/results/{job_id}")
        assert status == 200
        assert second == first
        reopened.close()


class TestCachedJobPath:
    def test_second_identical_job_completes_from_cache(
        self, app, service_state, monkeypatch
    ):
        import repro.experiments.backends as backends

        first_id = submit_and_run(app, service_state)
        first = app.handle("GET", f"/results/{first_id}")[1]

        def forbidden(self, experiment):
            raise AssertionError("backend ran on a fully-cached job")

        monkeypatch.setattr(backends.ShardBackend, "execute", forbidden)
        second_id = submit_and_run(app, service_state)
        record = service_state.jobs.get(second_id)
        assert record.status == "done"
        assert record.summary["from_cache"] is True
        second = app.handle("GET", f"/results/{second_id}")[1]
        assert second["resultset"] == first["resultset"]
