"""Simulate/sweep endpoints: dispatch threshold, cache bit-identity."""

from __future__ import annotations

import repro.service.requests as service_requests


class TestDispatchThreshold:
    def test_small_request_runs_inline(self, app):
        status, payload = app.handle(
            "POST",
            "/simulate",
            body={"scenario": "passwords", "n_receivers": 30, "seed": 3},
        )
        assert status == 200
        assert payload["status"] == "completed"
        assert payload["cost"] == 30
        assert len(payload["resultset"]["rows"]) == 1

    def test_cost_above_threshold_becomes_job(self, app, service_state):
        # inline_threshold is 500 in the fixture; 80 receivers x 10 rounds
        # x 1 variant = 800 receiver-rounds.
        status, payload = app.handle(
            "POST",
            "/simulate",
            body={
                "scenario": "passwords",
                "params": {"rounds": 10},
                "n_receivers": 80,
            },
        )
        assert status == 202
        assert payload["status"] == "submitted"
        assert payload["cost"] == 800
        assert payload["job"]["status"] == "submitted"
        assert service_state.run_pending_jobs() == 1
        job_id = payload["job"]["job_id"]
        assert app.handle("GET", f"/jobs/{job_id}")[1]["job"]["status"] == "done"

    def test_detach_forces_async_even_when_small(self, app, service_state):
        status, payload = app.handle(
            "POST",
            "/simulate",
            body={"scenario": "passwords", "n_receivers": 10, "detach": True},
        )
        assert status == 202
        assert service_state.run_pending_jobs() == 1

    def test_rounds_param_scales_cost(self, app):
        status, payload = app.handle(
            "POST",
            "/sweep",
            body={
                "scenario": "passwords",
                "grid": {"rounds": [1, 2]},
                "n_receivers": 50,
            },
        )
        assert status == 200
        assert payload["cost"] == 50 * (1 + 2)


class TestValidationAndFields:
    def test_unknown_body_field_is_400(self, app):
        # Engine knobs must travel inside params, never as body fields —
        # that is what keeps them inside the variant hash.
        status, payload = app.handle(
            "POST",
            "/simulate",
            body={"scenario": "passwords", "rounds": 5},
        )
        assert status == 400
        assert "rounds" in payload["message"]

    def test_bad_parameter_is_422_naming_it(self, app):
        status, payload = app.handle(
            "POST",
            "/simulate",
            body={"scenario": "passwords", "params": {"rounds": 0}},
        )
        assert status == 422
        assert payload["parameter"] == "rounds"

    def test_unknown_scenario_is_422(self, app):
        status, payload = app.handle(
            "POST", "/simulate", body={"scenario": "nowhere"}
        )
        assert status == 422
        assert payload["parameter"] == "scenario"

    def test_params_and_grid_are_mutually_exclusive(self, app):
        status, payload = app.handle(
            "POST",
            "/sweep",
            body={
                "scenario": "passwords",
                "params": {"rounds": 2},
                "grid": {"rounds": [1]},
            },
        )
        assert status == 400


class TestCacheBitIdentity:
    def test_second_identical_sweep_served_from_cache_without_engine_work(
        self, app, service_state, monkeypatch
    ):
        body = {
            "scenario": "passwords",
            "grid": {"rounds": [1, 2]},
            "n_receivers": 30,
            "seed": 11,
            "name": "sweep-twice",
        }
        status, first = app.handle("POST", "/sweep", body=dict(body))
        assert status == 200
        assert first["cache"] == {"served": 0, "computed": 2}
        hits_before = service_state.cache.stats()["hits"]

        def forbidden(run):
            raise AssertionError("engine work on a fully-cached sweep")

        monkeypatch.setattr(service_requests, "run_variant", forbidden)
        status, second = app.handle("POST", "/sweep", body=dict(body))
        assert status == 200
        assert second["cache"] == {"served": 2, "computed": 0}
        # Bit-identical: the exact bytes of the first computation.
        assert second["resultset"] == first["resultset"]
        assert service_state.cache.stats()["hits"] == hits_before + 2

    def test_simulate_and_sweep_share_the_content_cache(self, app):
        # A sweep point and a single-point simulate at the same identity
        # are the same computation; the second query is a pure hit.
        common = {"scenario": "passwords", "n_receivers": 25, "seed": 4}
        status, swept = app.handle(
            "POST",
            "/sweep",
            body={**common, "grid": {"rounds": [1]}, "seed_strategy": "shared"},
        )
        assert status == 200 and swept["cache"]["computed"] == 1
        status, single = app.handle(
            "POST", "/simulate", body={**common, "params": {"rounds": 1}}
        )
        assert status == 200
        assert single["cache"] == {"served": 1, "computed": 0}

    def test_different_task_never_collides(self, app):
        # The task rides in the cache key: same scenario/params/seed with
        # a different task must be a distinct computation, never a hit.
        base = {"scenario": "passwords", "n_receivers": 20, "seed": 9}
        status, first = app.handle(
            "POST", "/simulate", body={**base, "task": "recall"}
        )
        assert status == 200
        status, second = app.handle(
            "POST", "/simulate", body={**base, "task": "create"}
        )
        assert status == 200
        assert second["cache"] == {"served": 0, "computed": 1}
        row_first = first["resultset"]["rows"][0]
        row_second = second["resultset"]["rows"][0]
        assert row_first["variant_hash"] == row_second["variant_hash"]
        assert row_first["task"] != row_second["task"]


class TestAnalyze:
    def test_analyze_is_cached_and_inline(self, app):
        body = {"scenario": "antiphishing"}
        status, first = app.handle("POST", "/analyze", body=dict(body))
        assert status == 200
        assert first["cache"] == {"served": 0, "computed": 1}
        status, second = app.handle("POST", "/analyze", body=dict(body))
        assert second["cache"] == {"served": 1, "computed": 0}
        assert second["row"] == first["row"]

    def test_analyze_rejects_simulation_fields(self, app):
        status, payload = app.handle(
            "POST", "/analyze", body={"scenario": "passwords", "n_receivers": 5}
        )
        assert status == 400
