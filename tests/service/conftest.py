"""Shared fixtures for the service tests: in-process apps, no sockets.

Every test drives the full WSGI stack either through the pure
``app.handle(method, path, body)`` core or through ``wsgi_call``, which
builds a ``wsgiref``-style test environ (``setup_testing_defaults`` plus
a JSON body) and invokes the app exactly as a real server would — still
without opening a socket anywhere.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Optional, Tuple
from wsgiref.util import setup_testing_defaults

import pytest

from repro.service import ServiceConfig, ServiceState, create_app
from repro.service.app import ServiceApp


@pytest.fixture
def service_state(tmp_path):
    """A service with a tiny inline budget and a manually-drained worker."""
    state = ServiceState(
        ServiceConfig(
            data_dir=str(tmp_path / "service"),
            inline_threshold=500,
            threaded_worker=False,
        )
    )
    yield state
    state.close()


@pytest.fixture
def app(service_state) -> ServiceApp:
    return create_app(state=service_state)


def wsgi_call(
    app: ServiceApp,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    raw_body: Optional[bytes] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Drive the app through a wsgiref test environ; returns (status, JSON)."""
    environ: Dict[str, Any] = {}
    setup_testing_defaults(environ)
    environ["REQUEST_METHOD"] = method
    environ["PATH_INFO"] = path
    payload = raw_body
    if payload is None and body is not None:
        payload = json.dumps(body).encode("utf-8")
    if payload is not None:
        environ["wsgi.input"] = io.BytesIO(payload)
        environ["CONTENT_LENGTH"] = str(len(payload))
    captured: Dict[str, Any] = {}

    def start_response(status: str, headers) -> None:
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    data = b"".join(chunks)
    assert captured["headers"]["Content-Type"] == "application/json"
    assert int(captured["headers"]["Content-Length"]) == len(data)
    return captured["status"], json.loads(data.decode("utf-8"))
