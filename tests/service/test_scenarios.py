"""Scenario endpoints: listing, description, structured 422 validation."""

from __future__ import annotations

from repro.systems.scenario import available_scenarios, variant_hash


class TestListing:
    def test_lists_every_registered_scenario(self, app):
        status, payload = app.handle("GET", "/scenarios")
        assert status == 200
        names = [entry["name"] for entry in payload["scenarios"]]
        assert names == available_scenarios()

    def test_describe_returns_parameter_space(self, app):
        status, payload = app.handle("GET", "/scenarios/passwords")
        assert status == 200
        names = [parameter["name"] for parameter in payload["parameters"]]
        assert "rounds" in names and "rng_mode" in names

    def test_describe_unknown_scenario_is_404(self, app):
        status, payload = app.handle("GET", "/scenarios/no-such-thing")
        assert status == 404
        assert payload["scenario"] == "no-such-thing"


class TestValidation:
    def test_valid_overrides_echo_hash_and_label(self, app):
        status, payload = app.handle(
            "POST",
            "/scenarios/passwords/validate",
            body={"params": {"rounds": 3}},
        )
        assert status == 200
        assert payload["label"] == "passwords[rounds=3]"
        assert payload["variant_hash"] == variant_hash(
            "passwords", {"rounds": 3}
        )

    def test_out_of_bounds_value_names_the_parameter(self, app):
        status, payload = app.handle(
            "POST",
            "/scenarios/passwords/validate",
            body={"params": {"user_noise_std": 9.0}},
        )
        assert status == 422
        assert payload["error"] == "validation"
        assert payload["parameter"] == "user_noise_std"

    def test_unknown_parameter_names_itself(self, app):
        status, payload = app.handle(
            "POST",
            "/scenarios/passwords/validate",
            body={"params": {"bogus_knob": 1}},
        )
        assert status == 422
        assert payload["parameter"] == "bogus_knob"

    def test_unknown_scenario_is_422_naming_scenario(self, app):
        status, payload = app.handle(
            "POST", "/scenarios/missing/validate", body={"params": {}}
        )
        assert status == 422
        assert payload["parameter"] == "scenario"

    def test_multi_knob_failure_blames_the_bad_one(self, app):
        status, payload = app.handle(
            "POST",
            "/scenarios/passwords/validate",
            body={"params": {"rounds": 2, "recovery_rate": 7.5}},
        )
        assert status == 422
        assert payload["parameter"] == "recovery_rate"
