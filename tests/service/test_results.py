"""Results endpoints: content addressing, merge, bit-exact reproduction."""

from __future__ import annotations

import pytest

from repro.experiments.runner import _simulation_metrics
from repro.systems.scenario import get_scenario, variant_hash

SWEEP = {
    "scenario": "passwords",
    "grid": {"rounds": [1, 2]},
    "n_receivers": 25,
    "seed": 6,
    "name": "results-sweep",
    "detach": True,
}


@pytest.fixture
def done_job(app, service_state):
    status, payload = app.handle("POST", "/sweep", body=dict(SWEEP))
    assert status == 202
    service_state.run_pending_jobs()
    return payload["job"]["job_id"]


class TestJobResults:
    def test_job_resultset_is_canonical(self, app, done_job):
        status, payload = app.handle("GET", f"/results/{done_job}")
        assert status == 200
        rows = payload["resultset"]["rows"]
        assert [row["params"]["rounds"] for row in rows] == [1, 2]
        assert payload["resultset"]["seed"] == 6

    def test_job_row_by_hash(self, app, done_job):
        point = variant_hash("passwords", {"rounds": 2})
        status, payload = app.handle(
            "GET", f"/results/{done_job}/rows/{point}"
        )
        assert status == 200
        assert payload["row"]["variant_hash"] == point

    def test_job_row_unknown_hash_is_404(self, app, done_job):
        status, _ = app.handle(
            "GET", f"/results/{done_job}/rows/{'0' * 16}"
        )
        assert status == 404

    def test_cached_rows_by_hash(self, app, done_job):
        point = variant_hash("passwords", {"rounds": 1})
        status, payload = app.handle("GET", f"/results/by-hash/{point}")
        assert status == 200
        assert [row["variant_hash"] for row in payload["rows"]] == [point]

    def test_by_hash_miss_is_404(self, app):
        assert app.handle("GET", f"/results/by-hash/{'f' * 16}")[0] == 404


class TestMerge:
    def test_merge_reassembles_shards_canonically(self, app, done_job):
        full = app.handle("GET", f"/results/{done_job}")[1]["resultset"]
        shard_a = dict(full, rows=[full["rows"][1]])
        shard_b = dict(full, rows=[full["rows"][0]])
        status, payload = app.handle(
            "POST", "/results/merge", body={"resultsets": [shard_a, shard_b]}
        )
        assert status == 200
        assert payload["resultset"] == full

    def test_merge_rejects_overlapping_sets(self, app, done_job):
        full = app.handle("GET", f"/results/{done_job}")[1]["resultset"]
        status, payload = app.handle(
            "POST", "/results/merge", body={"resultsets": [full, full]}
        )
        assert status == 400
        assert "overlapping" in payload["message"]

    def test_merge_requires_a_list(self, app):
        assert (
            app.handle("POST", "/results/merge", body={"resultsets": {}})[0]
            == 400
        )


class TestImport:
    def test_imported_rows_become_cache_entries(self, app, service_state):
        # Archive a sweep, wipe the service, import the archive: the rows
        # are addressable by hash again without any engine work.
        inline = app.handle(
            "POST",
            "/sweep",
            body={**SWEEP, "detach": False},
        )[1]
        archived = inline["resultset"]
        status, payload = app.handle(
            "POST", "/results/import", body={"resultset": archived}
        )
        assert status == 200
        assert payload["rows"] == 2
        assert payload["inserted"] == 0  # already cached from the inline run

    def test_tampered_archive_is_rejected(self, app, done_job):
        full = app.handle("GET", f"/results/{done_job}")[1]["resultset"]
        doctored = dict(full)
        doctored["rows"] = [dict(full["rows"][0])]
        doctored["rows"][0]["params"] = {"rounds": 7}  # hash no longer matches
        status, payload = app.handle(
            "POST", "/results/import", body={"resultset": doctored}
        )
        assert status == 400
        assert "altered" in payload["message"]


class TestReproduce:
    def test_reproduce_cached_row_by_hash_matches(self, app, done_job):
        point = variant_hash("passwords", {"rounds": 2})
        status, payload = app.handle(
            "POST", "/results/reproduce", body={"variant_hash": point}
        )
        assert status == 200
        assert payload["match"] is True
        assert payload["rng_mode"] == "counter"

    def test_reproduce_inline_row_matches(self, app, done_job):
        row = app.handle("GET", f"/results/{done_job}")[1]["resultset"]["rows"][0]
        status, payload = app.handle(
            "POST", "/results/reproduce", body={"row": row}
        )
        assert status == 200
        assert payload["match"] is True

    def test_reproduce_analytic_row_is_a_clean_400(self, app):
        analytic = app.handle(
            "POST", "/analyze", body={"scenario": "passwords"}
        )[1]["row"]
        status, payload = app.handle(
            "POST", "/results/reproduce", body={"row": analytic}
        )
        assert status == 400
        assert "analytic" in payload["message"]


class TestLegacyRngModePin:
    """The PR-9 legacy pin, honored over HTTP.

    Rows archived before ``rng_mode`` existed were drawn by the matrix
    source; ``reproduce_row`` pins ``rng_mode="matrix"`` when the field
    is absent, and the reproduce endpoint must inherit that — otherwise
    every archived row would re-run under today's counter default and
    silently mismatch.
    """

    @pytest.fixture
    def archived_row(self):
        # Emulate a PR-8-era archive: a matrix-mode run whose row payload
        # predates the rng_mode field entirely.
        scenario = get_scenario("passwords")
        result = scenario.simulate(40, seed=7, mode="batch", rng_mode="matrix")
        return {
            "experiment": "archive-pr8",
            "scenario": "passwords",
            "variant": "passwords",
            "params": {},
            "mode": "batch",
            "metrics": _simulation_metrics(result),
            "seed": 7,
            "n_receivers": 40,
            "batch_size": result.batch_size,
            "task": result.task_name,
            "population": result.population_name,
            "calibration_label": result.calibration_label,
            "rounds": result.rounds,
            "recovery_rate": result.recovery_rate,
            "dismiss_weight": result.dismiss_weight,
            "heed_weight": result.heed_weight,
            "variant_hash": variant_hash("passwords", {}),
            # deliberately no "rng_mode": the field did not exist yet
        }

    def test_archived_row_reproduces_bit_identically_over_http(
        self, app, archived_row
    ):
        status, payload = app.handle(
            "POST", "/results/reproduce", body={"row": archived_row}
        )
        assert status == 200
        assert payload["rng_mode"] == "matrix"  # the pin, not today's default
        assert payload["match"] is True

    def test_counter_default_would_not_match(self, archived_row):
        # The pin is load-bearing: the same row re-run under the counter
        # default produces different bits.
        from repro.experiments.results import WALL_CLOCK_METRICS

        scenario = get_scenario("passwords")
        fresh = scenario.simulate(40, seed=7, mode="batch", rng_mode="counter")
        fresh_metrics = {
            name: value
            for name, value in _simulation_metrics(fresh).items()
            if name not in WALL_CLOCK_METRICS
        }
        recorded = {
            name: value
            for name, value in archived_row["metrics"].items()
            if name not in WALL_CLOCK_METRICS
        }
        assert fresh_metrics != recorded
