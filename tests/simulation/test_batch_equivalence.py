"""Regression tests: the vectorized batch engine must reproduce the
scalar per-receiver reference walk exactly.

Both modes consume identical pre-drawn randomness (traits, spoof and
noise vectors, one decision matrix), so for a fixed seed the realized
outcome of every receiver — not just the aggregate rates — must match.
"""

import pytest

from repro.core.communication import Communication, CommunicationType
from repro.core.task import HumanSecurityTask
from repro.simulation.attacker import spoofing_attacker
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.population import general_web_population, organization_population
from repro.systems import antiphishing
from repro.systems.antiphishing import WarningVariant

N = 500
SEED = 20260726


def _simulator(**overrides) -> HumanLoopSimulator:
    overrides.setdefault("n_receivers", N)
    overrides.setdefault("seed", SEED)
    return HumanLoopSimulator(SimulationConfig(**overrides))


def _assert_equivalent(simulator, task, population):
    batch = simulator.simulate_task(task, population, mode="batch")
    reference = simulator.simulate_task(task, population, mode="reference")

    # Per-stage first-failure counts — the headline equivalence check.
    assert batch.stage_failure_counts() == reference.stage_failure_counts()
    # Full outcome distribution and every aggregate rate.
    assert batch.outcome_counts() == reference.outcome_counts()
    assert batch.protection_rate() == reference.protection_rate()
    assert batch.heed_rate() == reference.heed_rate()
    assert batch.notice_rate() == reference.notice_rate()
    assert batch.intention_failure_rate() == reference.intention_failure_rate()
    assert batch.capability_failure_rate() == reference.capability_failure_rate()
    assert batch.spoofed_rate() == reference.spoofed_rate()
    # Per-receiver records (materialized for small runs) agree one-to-one.
    assert len(batch.records) == len(reference.records) == batch.n_receivers
    for batch_record, reference_record in zip(batch.records, reference.records):
        assert batch_record.outcome is reference_record.outcome
        assert batch_record.protected == reference_record.protected
        assert batch_record.failed_stage is reference_record.failed_stage
        assert batch_record.intention_failed == reference_record.intention_failed
        assert batch_record.capability_failed == reference_record.capability_failed
        assert batch_record.spoofed == reference_record.spoofed
        assert batch_record.receiver_name == reference_record.receiver_name
        assert batch_record.trace.skipped == reference_record.trace.skipped
        assert (
            batch_record.trace.evaluated_stages == reference_record.trace.evaluated_stages
        )
    return batch, reference


class TestBatchMatchesReference:
    def test_blocking_warning(self, warning_task):
        _assert_equivalent(_simulator(), warning_task, general_web_population())

    def test_passive_indicator(self, passive_indicator, busy_environment):
        task = HumanSecurityTask(
            name="notice-passive",
            communication=passive_indicator,
            environment=busy_environment,
            desired_action="react",
        )
        _assert_equivalent(_simulator(), task, general_web_population())

    def test_calibrated_case_study(self):
        simulator = _simulator(calibration=antiphishing.calibration())
        task = antiphishing.task_for(WarningVariant.IE_ACTIVE)
        batch, _ = _assert_equivalent(simulator, task, antiphishing.population())
        # The case-study shape survives in both modes.
        assert batch.protection_rate() > 0.5

    def test_with_spoofing_attacker(self, warning_task):
        simulator = _simulator(attacker=spoofing_attacker(0.4))
        batch, _ = _assert_equivalent(simulator, warning_task, general_web_population())
        assert batch.spoofed_rate() > 0.2

    def test_policy_communication_with_retention_stages(self):
        task = HumanSecurityTask(
            name="follow-policy",
            communication=Communication(
                name="policy",
                comm_type=CommunicationType.POLICY,
                activeness=0.5,
                clarity=0.8,
                includes_instructions=True,
            ),
            desired_action="comply",
        )
        _assert_equivalent(_simulator(), task, organization_population())

    def test_no_communication(self):
        task = HumanSecurityTask(name="silent", desired_action="act")
        _assert_equivalent(_simulator(), task, general_web_population())

    def test_equivalence_across_chunk_boundaries(self, warning_task):
        # A batch_size smaller than the population exercises the streaming
        # chunk loop in both modes.
        simulator = _simulator(batch_size=64)
        _assert_equivalent(simulator, warning_task, general_web_population())

    def test_large_run_tallies_without_records(self, warning_task):
        simulator = _simulator(record_limit=100)
        result = simulator.simulate_task(
            warning_task, general_web_population(), n_receivers=2_000
        )
        # Beyond record_limit the batch engine keeps only the streaming tally.
        assert result.records == []
        assert result.n_receivers == 2_000
        reference = simulator.simulate_task(
            warning_task, general_web_population(), n_receivers=2_000, mode="reference"
        )
        assert result.stage_failure_counts() == reference.stage_failure_counts()
        assert result.outcome_counts() == reference.outcome_counts()
