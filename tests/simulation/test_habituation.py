"""Tests for habituation dynamics."""

import pytest

from repro.core.communication import Communication, CommunicationType
from repro.core.exceptions import SimulationError
from repro.simulation.habituation import HabituationState, simulate_exposure_series
from repro.simulation.rng import SimulationRng


def _indicator(activeness: float = 0.2) -> Communication:
    return Communication(
        name="indicator",
        comm_type=CommunicationType.STATUS_INDICATOR,
        activeness=activeness,
        conspicuity=0.4,
    )


class TestHabituationState:
    def test_exposures_accumulate(self):
        state = HabituationState()
        communication = _indicator()
        assert state.exposure_count(communication) == 0
        state.record_exposure(communication)
        state.record_exposure(communication)
        assert state.exposure_count(communication) == 2

    def test_baked_in_prior_exposures_respected(self):
        state = HabituationState()
        seasoned = _indicator().with_exposures(10)
        assert state.exposure_count(seasoned) == 10

    def test_attention_factor_decreases_with_exposures(self):
        state = HabituationState()
        communication = _indicator()
        fresh = state.attention_factor(communication)
        for _ in range(20):
            state.record_exposure(communication)
        worn = state.attention_factor(communication)
        assert worn < fresh

    def test_recovery_reduces_exposures(self):
        state = HabituationState(recovery_rate=0.5)
        communication = _indicator()
        for _ in range(8):
            state.record_exposure(communication)
        state.recover(periods=2)
        assert state.exposure_count(communication) == pytest.approx(2.0)

    def test_recovery_validation(self):
        with pytest.raises(SimulationError):
            HabituationState(recovery_rate=1.5)
        with pytest.raises(SimulationError):
            HabituationState().recover(periods=-1)


class TestExposureSeries:
    def test_series_length_and_determinism(self):
        series_a = simulate_exposure_series(_indicator(), exposures=15, rng=SimulationRng(5))
        series_b = simulate_exposure_series(_indicator(), exposures=15, rng=SimulationRng(5))
        assert len(series_a) == 15
        assert [point.noticed for point in series_a] == [point.noticed for point in series_b]

    def test_notice_probability_declines_over_exposures(self):
        series = simulate_exposure_series(_indicator(), exposures=25, rng=SimulationRng(1))
        assert series[-1].notice_probability < series[0].notice_probability

    def test_blocking_warning_stays_noticed_while_passive_fades(self):
        from repro.core.impediments import Environment

        quiet = Environment.quiet()
        passive = simulate_exposure_series(
            _indicator(0.1), environment=quiet, exposures=30, rng=SimulationRng(2)
        )
        blocking = simulate_exposure_series(
            Communication(name="block", comm_type=CommunicationType.WARNING,
                          activeness=1.0, conspicuity=0.9),
            environment=quiet,
            exposures=30,
            rng=SimulationRng(2),
        )
        # After heavy exposure the passive indicator is mostly ignored while
        # the blocking warning is still noticed by most receivers.
        assert passive[-1].notice_probability < 0.3
        assert blocking[-1].notice_probability > 0.4
        # And the passive indicator loses a larger share of its initial
        # notice probability than the blocking warning does.
        passive_retention = passive[-1].notice_probability / passive[0].notice_probability
        blocking_retention = blocking[-1].notice_probability / blocking[0].notice_probability
        assert passive_retention < blocking_retention + 0.05

    def test_zero_exposures_gives_empty_series(self):
        assert simulate_exposure_series(_indicator(), exposures=0) == []

    def test_negative_exposures_rejected(self):
        with pytest.raises(SimulationError):
            simulate_exposure_series(_indicator(), exposures=-1)


class TestHabituationEdgeCases:
    """Edge cases: recovery clamping, rate bounds, series monotonicity."""

    def test_recover_with_zero_recorded_exposures_is_a_noop(self):
        state = HabituationState(recovery_rate=0.5)
        communication = _indicator()
        state.recover(periods=5)
        assert state.exposure_count(communication) == 0
        # Recovery steps that happen before the state ever sees a
        # communication cannot touch its baked-in count: it only
        # materializes (and starts recovering) on first access.
        seasoned = _indicator().with_exposures(10)
        fresh_state = HabituationState(recovery_rate=0.5)
        fresh_state.recover(periods=5)
        assert fresh_state.exposure_count(seasoned) == 10

    def test_recover_zero_periods_changes_nothing(self):
        state = HabituationState(recovery_rate=0.5)
        communication = _indicator()
        state.record_exposure(communication)
        state.recover(periods=0)
        assert state.exposure_count(communication) == 1.0

    def test_exposures_clamp_toward_zero_never_below(self):
        state = HabituationState(recovery_rate=0.9)
        communication = _indicator()
        state.record_exposure(communication)
        state.recover(periods=50)
        count = state.exposure_count(communication)
        assert 0.0 <= count < 1e-12

    def test_recovery_rate_boundary_values(self):
        # Both bounds of [0, 1] are legal...
        frozen = HabituationState(recovery_rate=0.0)
        total = HabituationState(recovery_rate=1.0)
        communication = _indicator()
        for _ in range(4):
            frozen.record_exposure(communication)
            total.record_exposure(communication)
        # ... a zero rate never recovers, a unit rate recovers fully.
        frozen.recover(periods=3)
        assert frozen.exposure_count(communication) == 4.0
        total.recover()
        assert total.exposure_count(communication) == 0.0

    def test_recovery_rate_out_of_bounds_rejected(self):
        with pytest.raises(SimulationError):
            HabituationState(recovery_rate=-0.01)
        with pytest.raises(SimulationError):
            HabituationState(recovery_rate=1.01)

    def test_recovery_uniform_for_baked_in_exposures(self):
        """Identical histories recover identically whether the exposure
        entry was materialized by a read or by an explicit record."""
        seasoned = _indicator().with_exposures(8)
        read_state = HabituationState(recovery_rate=0.5)
        factor_state = HabituationState(recovery_rate=0.5)
        read_state.exposure_count(seasoned)  # materializes via a read
        factor_state.attention_factor(seasoned)  # materializes via the factor
        read_state.recover(periods=2)
        factor_state.recover(periods=2)
        assert read_state.exposure_count(seasoned) == pytest.approx(2.0)
        assert read_state.exposure_count(seasoned) == factor_state.exposure_count(seasoned)

    def test_recorded_and_never_recorded_recover_identically(self):
        """A baked-in count decays under recovery exactly like the same
        count built from explicit records (the old fallback skipped it)."""
        baked = _indicator().with_exposures(4)
        recorded = Communication(
            name="recorded-indicator",
            comm_type=CommunicationType.STATUS_INDICATOR,
            activeness=0.2,
            conspicuity=0.4,
        )
        state = HabituationState(recovery_rate=0.5)
        state.exposure_count(baked)
        for _ in range(4):
            state.record_exposure(recorded)
        state.recover(periods=1)
        assert state.exposure_count(baked) == state.exposure_count(recorded) == 2.0
        assert state.attention_factor(baked) == state.attention_factor(recorded)

    def test_fractional_counts_change_attention_monotonically(self):
        """Post-recovery fractional counts must not be quantized: 0.6 and
        1.4 effective exposures yield distinct, ordered factors."""
        from repro.core.probabilities import habituation_factor

        communication = _indicator(activeness=0.2)
        state = HabituationState(recovery_rate=0.3)
        factors = []
        counts = []
        for _ in range(6):
            state.record_exposure(communication)
            state.recover()
            counts.append(state.exposure_count(communication))
            factors.append(state.attention_factor(communication))
        # Counts grow fractionally toward the equilibrium, factors shrink.
        assert all(0 < c != int(c) for c in counts)
        assert all(later < earlier for earlier, later in zip(factors, factors[1:]))
        # And the factor is the continuous one, not the rounded-count one.
        assert factors[0] == pytest.approx(
            habituation_factor(counts[0], communication.activeness)
        )
        assert factors[0] != habituation_factor(round(counts[0]), communication.activeness)

    def test_habituation_factor_polymorphic_over_arrays(self):
        import numpy as np

        from repro.core.exceptions import ModelError
        from repro.core.probabilities import habituation_factor

        counts = np.array([0.0, 0.6, 1.4, 40.0])
        factors = habituation_factor(counts, activeness=0.2)
        scalars = [habituation_factor(float(count), 0.2) for count in counts]
        assert factors.shape == counts.shape
        # Scalar and array branches agree bit for bit (the batch/reference
        # equivalence of the multi-round engine depends on this).
        assert list(factors) == scalars
        assert factors[-1] == 0.25  # floor engages for heavy habituation
        with pytest.raises(ModelError):
            habituation_factor(np.array([1.0, -0.5]), 0.2)
        with pytest.raises(ModelError):
            habituation_factor(-1.0, 0.2)

    def test_exposure_series_with_recovery_stays_above_plain_decay(self):
        quiet_series = simulate_exposure_series(
            _indicator(activeness=0.2), exposures=20, rng=SimulationRng(3)
        )
        rested_series = simulate_exposure_series(
            _indicator(activeness=0.2), exposures=20, rng=SimulationRng(3), recovery_rate=0.5
        )
        assert (
            rested_series[-1].notice_probability > quiet_series[-1].notice_probability
        )

    def test_exposure_series_monotone_under_zero_recovery(self):
        """Without recovery periods, notice probability can only decay."""
        series = simulate_exposure_series(
            _indicator(activeness=0.3), exposures=25, rng=SimulationRng(11)
        )
        probabilities = [point.notice_probability for point in series]
        assert all(
            later <= earlier + 1e-12
            for earlier, later in zip(probabilities, probabilities[1:])
        )
        assert probabilities[-1] < probabilities[0]

    def test_zero_exposures_series_is_empty(self):
        assert simulate_exposure_series(_indicator(), exposures=0) == []
