"""Tests for outcome-coupled habituation (ISSUE 4).

Section 2.3.1: habituation is driven by what receivers *do* at each
encounter.  The engine threads each round's realized outcomes back into
:func:`~repro.simulation.habituation.advance_exposures`, weighting a
delivered encounter by ``dismiss_weight`` (hazard not avoided) or
``heed_weight`` (hazard avoided).  Unit weights must reproduce the
delivery-only accrual rule bit for bit.
"""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.habituation import HabituationState, advance_exposures
from repro.simulation.population import general_web_population
from repro.systems import get_scenario
from repro.systems.antiphishing import ie_passive_warning

N = 400
SEED = 20260726


def _simulator(**overrides) -> HumanLoopSimulator:
    overrides.setdefault("n_receivers", N)
    overrides.setdefault("seed", SEED)
    return HumanLoopSimulator(SimulationConfig(**overrides))


class TestAdvanceExposures:
    def test_unit_weights_reproduce_delivery_only_rule(self):
        exposures = np.array([0.0, 2.0, 5.0])
        delivered = np.array([True, False, True])
        heeded = np.array([True, True, False])
        legacy = advance_exposures(exposures, delivered, recovery_rate=0.25)
        coupled = advance_exposures(
            exposures, delivered, recovery_rate=0.25,
            heeded=heeded, dismiss_weight=1.0, heed_weight=1.0,
        )
        assert np.array_equal(legacy, coupled)

    def test_weighted_accrual(self):
        exposures = np.zeros(4)
        delivered = np.array([True, True, True, False])
        heeded = np.array([True, False, True, False])
        advanced = advance_exposures(
            exposures, delivered, recovery_rate=0.0,
            heeded=heeded, dismiss_weight=2.0, heed_weight=0.5,
        )
        assert advanced.tolist() == [0.5, 2.0, 0.5, 0.0]

    def test_recovery_applies_after_weighted_accrual(self):
        advanced = advance_exposures(
            np.array([1.0]), np.array([True]), recovery_rate=0.5,
            heeded=np.array([False]), dismiss_weight=3.0, heed_weight=1.0,
        )
        assert advanced[0] == pytest.approx((1.0 + 3.0) * 0.5)

    def test_non_unit_weights_require_outcomes(self):
        with pytest.raises(SimulationError):
            advance_exposures(
                np.zeros(2), np.ones(2, dtype=bool), recovery_rate=0.0,
                dismiss_weight=2.0,
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(SimulationError):
            advance_exposures(
                np.zeros(1), np.ones(1, dtype=bool), 0.0,
                heeded=np.ones(1, dtype=bool), dismiss_weight=-1.0,
            )

    def test_scalar_state_weighted_exposure(self):
        communication = ie_passive_warning()
        state = HabituationState(recovery_rate=0.0)
        state.exposure_count(communication)
        state.record_exposure(communication, weight=2.5)
        assert state.exposure_count(communication) == pytest.approx(
            communication.habituation_exposures + 2.5
        )
        with pytest.raises(SimulationError):
            state.record_exposure(communication, weight=-0.1)


class TestEngineCoupling:
    def test_default_weights_are_bit_identical(self, warning_task):
        population = general_web_population()
        legacy = _simulator().simulate_task(
            warning_task, population, rounds=5, recovery_rate=0.2
        )
        explicit = _simulator().simulate_task(
            warning_task, population, rounds=5, recovery_rate=0.2,
            dismiss_weight=1.0, heed_weight=1.0,
        )
        assert legacy.outcome_counts() == explicit.outcome_counts()
        assert [t.outcome_counts() for t in legacy.round_tallies] == [
            t.outcome_counts() for t in explicit.round_tallies
        ]
        assert legacy.dismiss_weight == explicit.dismiss_weight == 1.0

    def test_weights_only_matter_beyond_round_one(self, warning_task):
        population = general_web_population()
        a = _simulator().simulate_task(warning_task, population, dismiss_weight=5.0)
        b = _simulator().simulate_task(warning_task, population)
        assert a.outcome_counts() == b.outcome_counts()

    def test_dismissal_heavy_weights_decay_notice_faster(self):
        scenario = get_scenario("antiphishing")
        common = dict(
            seed=SEED, task="heed-ie_passive-warning", rounds=8, recovery_rate=0.0
        )
        baseline = scenario.simulate(4_000, **common)
        coupled = scenario.simulate(
            4_000, dismiss_weight=3.0, heed_weight=0.0, **common
        )
        # Most passive-warning receivers dismiss, so tripling their accrual
        # erodes the tail notice rate faster than the delivery-only rule.
        assert (
            coupled.round_metric("notice_rate")[-1]
            < baseline.round_metric("notice_rate")[-1]
        )
        assert coupled.dismiss_weight == 3.0 and coupled.heed_weight == 0.0

    def test_heed_only_accrual_is_gentler_than_delivery_only(self):
        scenario = get_scenario("antiphishing")
        common = dict(
            seed=SEED, task="heed-ie_passive-warning", rounds=8, recovery_rate=0.0
        )
        baseline = scenario.simulate(4_000, **common)
        gentle = scenario.simulate(4_000, dismiss_weight=0.0, heed_weight=1.0, **common)
        assert (
            gentle.round_metric("notice_rate")[-1]
            > baseline.round_metric("notice_rate")[-1]
        )

    @pytest.mark.parametrize("weights", [(1.0, 1.0), (2.5, 0.5), (0.0, 4.0)])
    def test_batch_reference_equivalence_with_weights(self, warning_task, weights):
        dismiss_weight, heed_weight = weights
        population = general_web_population()
        common = dict(
            rounds=3,
            recovery_rate=0.25,
            dismiss_weight=dismiss_weight,
            heed_weight=heed_weight,
        )
        batch = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="batch", **common
        )
        reference = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="reference", **common
        )
        for batch_round, reference_round in zip(batch.round_tallies, reference.round_tallies):
            assert batch_round.outcome_counts() == reference_round.outcome_counts()
            assert (
                batch_round.stage_failure_counts()
                == reference_round.stage_failure_counts()
            )

    def test_config_and_override_validation(self, warning_task):
        with pytest.raises(SimulationError):
            SimulationConfig(dismiss_weight=-0.5)
        with pytest.raises(SimulationError):
            SimulationConfig(heed_weight=-1.0)
        with pytest.raises(SimulationError):
            _simulator().simulate_task(
                warning_task, general_web_population(), heed_weight=-2.0
            )

    def test_weights_recorded_on_result(self, warning_task):
        result = _simulator().simulate_task(
            warning_task, general_web_population(), rounds=2,
            dismiss_weight=2.0, heed_weight=0.25,
        )
        assert result.dismiss_weight == 2.0
        assert result.heed_weight == 0.25


class TestScenarioIntegration:
    def test_weights_bindable_and_become_simulation_defaults(self):
        variant = get_scenario("antiphishing").bind(
            variant="ie_passive", rounds=3, dismiss_weight=2.0, heed_weight=0.5
        )
        defaults = variant.simulation_defaults()
        assert defaults["dismiss_weight"] == 2.0
        assert defaults["heed_weight"] == 0.5
        result = variant.simulate(200, seed=SEED)
        assert result.dismiss_weight == 2.0
        assert result.heed_weight == 0.5
        # Explicit overrides win over the bound knobs.
        assert variant.simulate(200, seed=SEED, dismiss_weight=1.0).dismiss_weight == 1.0

    def test_trace_bindable(self):
        variant = get_scenario("antiphishing").bind(variant="ie_passive", trace=False)
        assert variant.simulation_defaults() == {"trace": False}
        assert variant.simulate(100, seed=SEED).funnel is None

    def test_weights_sweepable(self):
        from repro.experiments import Experiment, SweepSpec

        sweep = SweepSpec(
            scenario="antiphishing",
            grid={"dismiss_weight": [1.0, 4.0]},
            base={"variant": "ie_passive", "rounds": 6, "heed_weight": 1.0},
        )
        results = Experiment.from_sweep(
            "dismissal", sweep, n_receivers=2_000, seed=SEED, seed_strategy="shared"
        ).run()
        by_variant = {row.variant: row for row in results.rows}
        assert by_variant["dismiss_weight=1.0"].dismiss_weight == 1.0
        assert by_variant["dismiss_weight=4.0"].dismiss_weight == 4.0
        assert (
            by_variant["dismiss_weight=4.0"].metrics["round5:notice_rate"]
            < by_variant["dismiss_weight=1.0"].metrics["round5:notice_rate"]
        )
