"""Tests for the deterministic simulation RNG."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.rng import SimulationRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = [SimulationRng(7).uniform() for _ in range(1)]
        second = [SimulationRng(7).uniform() for _ in range(1)]
        assert first == second

    def test_different_seeds_differ(self):
        assert SimulationRng(1).uniform() != SimulationRng(2).uniform()

    def test_spawned_streams_are_deterministic(self):
        parent_a = SimulationRng(5)
        parent_b = SimulationRng(5)
        assert parent_a.spawn(3).uniform() == parent_b.spawn(3).uniform()

    def test_spawned_streams_independent_of_order(self):
        parent = SimulationRng(5)
        value_3 = parent.spawn(3).uniform()
        parent2 = SimulationRng(5)
        parent2.spawn(1)
        assert parent2.spawn(3).uniform() == value_3


class TestDraws:
    def test_bernoulli_extremes(self, rng):
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False

    def test_bernoulli_validates_probability(self, rng):
        with pytest.raises(SimulationError):
            rng.bernoulli(1.2)

    def test_bernoulli_rate_approximates_probability(self):
        rng = SimulationRng(11)
        draws = [rng.bernoulli(0.3) for _ in range(5000)]
        rate = sum(draws) / len(draws)
        assert 0.25 < rate < 0.35

    def test_truncated_normal_respects_bounds(self):
        rng = SimulationRng(3)
        values = [rng.truncated_normal(0.5, 0.5, 0.0, 1.0) for _ in range(200)]
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_truncated_normal_zero_std_returns_mean(self, rng):
        assert rng.truncated_normal(0.4, 0.0) == 0.4

    def test_uniform_range(self, rng):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value < 3.0

    def test_integers_range(self, rng):
        values = {rng.integers(0, 3) for _ in range(50)}
        assert values.issubset({0, 1, 2})

    def test_choice_with_weights(self, rng):
        value = rng.choice(["a", "b"], probabilities=[0.0, 1.0])
        assert value == "b"

    def test_choice_validation(self, rng):
        with pytest.raises(SimulationError):
            rng.choice([])
        with pytest.raises(SimulationError):
            rng.choice(["a"], probabilities=[0.5, 0.5])

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            SimulationRng(-1)
        with pytest.raises(SimulationError):
            SimulationRng(0).spawn(-1)
