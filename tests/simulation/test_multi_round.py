"""Tests for the multi-round simulation subsystem.

Pins the three invariants ISSUE 3 requires:

* ``rounds=1`` is bit-identical to the single-shot engine (and round 0 of
  any multi-round run consumes the identical draw stream),
* batch/reference equivalence holds *per round* for ``rounds > 1``, and
* the per-receiver exposure state evolves exactly as the scalar
  :class:`~repro.simulation.habituation.HabituationState` prescribes.
"""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.habituation import HabituationState, advance_exposures, initial_exposures
from repro.simulation.population import general_web_population
from repro.systems import get_scenario
from repro.systems.antiphishing import ie_passive_warning

N = 400
SEED = 20260726


def _simulator(**overrides) -> HumanLoopSimulator:
    overrides.setdefault("n_receivers", N)
    overrides.setdefault("seed", SEED)
    return HumanLoopSimulator(SimulationConfig(**overrides))


class TestConfigValidation:
    def test_rounds_and_recovery_bounds(self):
        with pytest.raises(SimulationError):
            SimulationConfig(rounds=0)
        with pytest.raises(SimulationError):
            SimulationConfig(recovery_rate=1.5)
        with pytest.raises(SimulationError):
            SimulationConfig(recovery_rate=-0.1)

    def test_per_call_overrides_validated(self, warning_task):
        simulator = _simulator()
        population = general_web_population()
        with pytest.raises(SimulationError):
            simulator.simulate_task(warning_task, population, rounds=0)
        with pytest.raises(SimulationError):
            simulator.simulate_task(warning_task, population, recovery_rate=2.0)


class TestSingleRoundIdentity:
    """rounds=1 must reproduce the single-shot engine bit for bit."""

    def test_rounds_one_matches_default(self, warning_task):
        population = general_web_population()
        single = _simulator().simulate_task(warning_task, population)
        explicit = _simulator().simulate_task(warning_task, population, rounds=1)
        assert single.outcome_counts() == explicit.outcome_counts()
        assert single.stage_failure_counts() == explicit.stage_failure_counts()
        assert [r.outcome for r in single.records] == [r.outcome for r in explicit.records]
        assert explicit.rounds == 1
        assert len(explicit.round_tallies) == 1
        assert explicit.round_tallies[0].outcome_counts() == single.outcome_counts()

    def test_round_zero_of_multi_round_matches_single_shot(self, warning_task):
        # The multi-round loop must consume the identical round-0 draw
        # stream, chunk by chunk, that a single-shot run does.
        population = general_web_population()
        single = _simulator(batch_size=128).simulate_task(warning_task, population)
        multi = _simulator(batch_size=128).simulate_task(
            warning_task, population, rounds=4, recovery_rate=0.2
        )
        assert multi.round_tallies[0].outcome_counts() == single.outcome_counts()
        assert (
            multi.round_tallies[0].stage_failure_counts()
            == single.stage_failure_counts()
        )

    def test_recovery_rate_is_irrelevant_for_one_round(self, warning_task):
        population = general_web_population()
        a = _simulator().simulate_task(warning_task, population, rounds=1, recovery_rate=0.0)
        b = _simulator().simulate_task(warning_task, population, rounds=1, recovery_rate=0.9)
        assert a.outcome_counts() == b.outcome_counts()


class TestPerRoundEquivalence:
    """Batch and reference modes must agree round by round, exactly."""

    @pytest.mark.parametrize("recovery_rate", [0.0, 0.25])
    def test_batch_matches_reference_per_round(self, warning_task, recovery_rate):
        population = general_web_population()
        common = dict(rounds=3, recovery_rate=recovery_rate)
        batch = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="batch", **common
        )
        reference = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="reference", **common
        )
        assert len(batch.round_tallies) == len(reference.round_tallies) == 3
        for batch_round, reference_round in zip(batch.round_tallies, reference.round_tallies):
            assert batch_round.outcome_counts() == reference_round.outcome_counts()
            assert batch_round.stage_failure_counts() == reference_round.stage_failure_counts()
            assert batch_round.notice_rate() == reference_round.notice_rate()
            assert batch_round.protection_rate() == reference_round.protection_rate()
        # Per-record agreement, round index included.
        assert len(batch.records) == len(reference.records) == N * 3
        for batch_record, reference_record in zip(batch.records, reference.records):
            assert batch_record.round_index == reference_record.round_index
            assert batch_record.outcome is reference_record.outcome
            assert batch_record.failed_stage is reference_record.failed_stage
            assert batch_record.receiver_name == reference_record.receiver_name

    def test_passive_indicator_equivalence(self, busy_environment):
        from repro.core.task import HumanSecurityTask

        task = HumanSecurityTask(
            name="notice-passive",
            communication=ie_passive_warning(),
            environment=busy_environment,
            desired_action="react",
        )
        population = general_web_population()
        batch = _simulator().simulate_task(task, population, rounds=4, recovery_rate=0.1)
        reference = _simulator().simulate_task(
            task, population, rounds=4, recovery_rate=0.1, mode="reference"
        )
        for batch_round, reference_round in zip(batch.round_tallies, reference.round_tallies):
            assert batch_round.outcome_counts() == reference_round.outcome_counts()


class TestHabituationDynamics:
    def test_notice_rate_decays_over_rounds_for_passive(self):
        scenario = get_scenario("antiphishing")
        result = scenario.simulate(
            2_000, seed=SEED, task="heed-ie_passive-warning", rounds=8, recovery_rate=0.0
        )
        notice = result.round_metric("notice_rate")
        assert notice[-1] < notice[0]
        # Zero recovery means exposures only accumulate: the tail of the
        # decay curve must sit strictly below the head.
        assert max(notice[-2:]) < min(notice[:2])

    def test_recovery_slows_the_decay(self):
        scenario = get_scenario("antiphishing")
        worn = scenario.simulate(
            2_000, seed=SEED, task="heed-ie_passive-warning", rounds=10, recovery_rate=0.0
        )
        rested = scenario.simulate(
            2_000, seed=SEED, task="heed-ie_passive-warning", rounds=10, recovery_rate=0.8
        )
        assert rested.round_metric("notice_rate")[-1] > worn.round_metric("notice_rate")[-1]

    def test_exposure_trajectory_matches_scalar_state(self):
        # The vectorized advance must reproduce the scalar bookkeeping:
        # record one exposure, then recover through the gap.
        communication = ie_passive_warning().with_exposures(3)
        state = HabituationState(recovery_rate=0.3)
        exposures = initial_exposures(communication, count=5)
        assert exposures is not None and float(exposures[0]) == 3.0
        delivered = np.ones(5, dtype=bool)
        for _ in range(6):
            expected = state.exposure_count(communication)
            assert exposures[0] == pytest.approx(expected)
            state.record_exposure(communication)
            state.recover()
            exposures = advance_exposures(exposures, delivered, recovery_rate=0.3)

    def test_spoofed_receivers_do_not_accumulate_exposures(self):
        exposures = np.array([2.0, 2.0])
        delivered = np.array([True, False])
        advanced = advance_exposures(exposures, delivered, recovery_rate=0.5)
        assert advanced[0] == pytest.approx(1.5)  # (2 + 1) * 0.5
        assert advanced[1] == pytest.approx(1.0)  # (2 + 0) * 0.5

    def test_no_communication_task_supports_rounds(self):
        from repro.core.task import HumanSecurityTask

        task = HumanSecurityTask(name="silent", desired_action="act")
        result = _simulator().simulate_task(task, general_web_population(), rounds=3)
        assert result.rounds == 3
        assert result.tally.n == N * 3
        assert initial_exposures(None, 10) is None


class TestMultiRoundResultShape:
    def test_receiver_round_accounting(self, warning_task):
        result = _simulator().simulate_task(
            warning_task, general_web_population(), rounds=5
        )
        assert result.n_receivers == N
        assert result.receiver_rounds == N * 5
        assert sum(tally.n for tally in result.round_tallies) == N * 5
        summaries = result.round_summaries()
        assert [row["round"] for row in summaries] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_records_capped_by_receiver_rounds(self, warning_task):
        population = general_web_population()
        kept = _simulator(record_limit=N * 3).simulate_task(
            warning_task, population, rounds=3
        )
        assert len(kept.records) == N * 3
        assert len(kept.records_for_round(1)) == N
        dropped = _simulator(record_limit=N * 3).simulate_task(
            warning_task, population, rounds=4
        )
        assert dropped.records == []
        assert dropped.tally.n == N * 4

    def test_determinism(self, warning_task):
        population = general_web_population()
        first = _simulator().simulate_task(warning_task, population, rounds=4, recovery_rate=0.2)
        second = _simulator().simulate_task(warning_task, population, rounds=4, recovery_rate=0.2)
        assert first.outcome_counts() == second.outcome_counts()
        assert [t.outcome_counts() for t in first.round_tallies] == [
            t.outcome_counts() for t in second.round_tallies
        ]

    def test_rounds_differ_from_each_other(self, warning_task):
        # Fresh encounter randomness per round: realized outcomes must not
        # simply repeat round 0.
        result = _simulator().simulate_task(warning_task, general_web_population(), rounds=2)
        first = [r.outcome for r in result.records_for_round(0)]
        second = [r.outcome for r in result.records_for_round(1)]
        assert first != second


class TestScenarioAndExperimentIntegration:
    def test_bound_variant_runs_multi_round(self):
        variant = get_scenario("antiphishing").bind(
            variant="ie_passive", rounds=3, recovery_rate=0.5
        )
        assert variant.simulation_defaults() == {"rounds": 3, "recovery_rate": 0.5}
        result = variant.simulate(200, seed=SEED)
        assert result.rounds == 3
        assert result.recovery_rate == 0.5
        # Explicit overrides win over the bound knobs.
        assert variant.simulate(200, seed=SEED, rounds=1).rounds == 1

    def test_experiment_rounds_provenance_round_trips(self, tmp_path):
        from repro.experiments import Experiment, VariantSpec, reproduce_row
        from repro.io.experiments_io import load_resultset, save_resultset

        experiment = Experiment(
            name="habituation-rounds",
            variants=(VariantSpec(scenario="antiphishing", params={"variant": "ie_passive"}),),
            n_receivers=200,
            seed=SEED,
            rounds=3,
            recovery_rate=0.25,
        )
        results = experiment.run()
        row = results.rows[0]
        assert row.rounds == 3
        assert row.recovery_rate == 0.25
        assert "round2:notice_rate" in row.metrics

        path = tmp_path / "rounds.json"
        save_resultset(results, str(path))
        loaded = load_resultset(str(path))
        loaded_row = loaded.rows[0]
        assert loaded_row.rounds == 3
        assert loaded_row.recovery_rate == 0.25

        rerun = reproduce_row(loaded_row)
        assert rerun.rounds == 3
        assert rerun.round_metric("notice_rate") == [
            row.metrics[f"round{k}:notice_rate"] for k in range(3)
        ]

    def test_experiment_rounds_cannot_shadow_bound_or_swept_rounds(self):
        from repro.experiments import Experiment, SweepSpec, VariantSpec
        from repro.experiments.results import ExperimentError

        with pytest.raises(ExperimentError):
            Experiment.from_sweep(
                "clash",
                SweepSpec(scenario="antiphishing", grid={"rounds": [1, 4]}),
                n_receivers=100,
                rounds=2,
            )
        with pytest.raises(ExperimentError):
            Experiment(
                name="clash",
                variants=(VariantSpec(scenario="antiphishing", params={"recovery_rate": 0.5}),),
                recovery_rate=0.1,
            )

    def test_rounds_as_sweep_axis(self):
        from repro.experiments import Experiment, SweepSpec

        sweep = SweepSpec(
            scenario="antiphishing",
            grid={"rounds": [1, 4]},
            base={"variant": "ie_passive", "recovery_rate": 0.0},
        )
        results = Experiment.from_sweep(
            "rounds-axis", sweep, n_receivers=400, seed=SEED, seed_strategy="shared"
        ).run()
        by_variant = {row.variant: row for row in results.rows}
        assert by_variant["rounds=1"].rounds == 1
        assert by_variant["rounds=4"].rounds == 4
        # More encounters with no recovery erode the notice rate.
        assert (
            by_variant["rounds=4"].metrics["round3:notice_rate"]
            < by_variant["rounds=1"].metrics["notice_rate"]
        )
