"""Tests for stage calibrations."""

import pytest

from repro.core.exceptions import CalibrationError
from repro.core.stages import Stage
from repro.simulation.calibration import StageCalibration


class TestStageCalibration:
    def test_neutral_leaves_probabilities_unchanged(self):
        calibration = StageCalibration.neutral()
        assert calibration.apply_stage(Stage.COMPREHENSION, 0.5) == 0.5
        assert calibration.apply_intention(0.4) == 0.4
        assert calibration.apply_capability(0.6) == 0.6

    def test_multiplier_applied_and_clamped(self):
        calibration = StageCalibration(stage_multipliers={Stage.COMPREHENSION: 2.0})
        assert calibration.apply_stage(Stage.COMPREHENSION, 0.4) == pytest.approx(0.8)
        assert calibration.apply_stage(Stage.COMPREHENSION, 0.9) == pytest.approx(0.98)
        # Other stages untouched.
        assert calibration.apply_stage(Stage.ATTENTION_SWITCH, 0.4) == 0.4

    def test_with_multiplier_returns_copy(self):
        base = StageCalibration.neutral()
        modified = base.with_multiplier(Stage.BEHAVIOR, 0.5)
        assert modified.multiplier_for(Stage.BEHAVIOR) == 0.5
        assert base.multiplier_for(Stage.BEHAVIOR) == 1.0

    def test_intention_and_capability_multipliers(self):
        calibration = StageCalibration(intention_multiplier=2.0, capability_multiplier=0.5)
        assert calibration.apply_intention(0.3) == pytest.approx(0.6)
        assert calibration.apply_capability(0.8) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            StageCalibration(stage_multipliers={Stage.BEHAVIOR: -1.0})
        with pytest.raises(CalibrationError):
            StageCalibration(stage_multipliers={"behavior": 1.0})
        with pytest.raises(CalibrationError):
            StageCalibration(intention_multiplier=-0.5)
        with pytest.raises(CalibrationError):
            StageCalibration(override_given_misunderstanding=1.5)
        with pytest.raises(CalibrationError):
            StageCalibration(user_noise_std=-0.1)

    def test_label_default(self):
        assert StageCalibration.neutral().label == "neutral"
