"""Tests for the blocking / passive / spoofed outcome semantics.

The engine's module docstring documents three outcome regimes; these tests
pin each one down directly, both through the shared failure-semantics
helpers in :mod:`repro.core.pipeline` and through simulated populations.
"""

import dataclasses

import pytest

from repro.core.behavior import BehaviorOutcome
from repro.core.communication import Communication, CommunicationType
from repro.core.pipeline import (
    build_pipeline,
    failure_needs_override,
    failure_outcome,
)
from repro.core.stages import Stage
from repro.core.task import HumanSecurityTask
from repro.simulation.attacker import spoofing_attacker
from repro.simulation.calibration import StageCalibration
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.population import general_web_population

SEED = 9


def _task(communication, environment=None, name="semantics-task"):
    kwargs = {"name": name, "communication": communication, "desired_action": "act"}
    if environment is not None:
        kwargs["environment"] = environment
    return HumanSecurityTask(**kwargs)


def _simulate(task, n=600, **config_overrides):
    config_overrides.setdefault("n_receivers", n)
    config_overrides.setdefault("seed", SEED)
    simulator = HumanLoopSimulator(SimulationConfig(**config_overrides))
    return simulator.simulate_task(task, general_web_population())


class TestFailureSemanticsHelpers:
    """The shared outcome-resolution rules, stage by stage."""

    def test_blocking_attention_failure_fails_safe(self):
        assert (
            failure_outcome(Stage.ATTENTION_SWITCH, default_safe=True)
            is BehaviorOutcome.FAILED_SAFE
        )

    def test_passive_attention_failure_is_no_action(self):
        assert (
            failure_outcome(Stage.ATTENTION_SWITCH, default_safe=False)
            is BehaviorOutcome.NO_ACTION
        )

    @pytest.mark.parametrize(
        "stage",
        [Stage.ATTENTION_MAINTENANCE, Stage.COMPREHENSION, Stage.KNOWLEDGE_ACQUISITION],
    )
    def test_blocking_misunderstanding_fails_safe_unless_overridden(self, stage):
        assert failure_needs_override(stage, default_safe=True)
        assert failure_outcome(stage, True, overrode=False) is BehaviorOutcome.FAILED_SAFE
        assert failure_outcome(stage, True, overrode=True) is BehaviorOutcome.FAILURE

    @pytest.mark.parametrize(
        "stage",
        [Stage.ATTENTION_MAINTENANCE, Stage.COMPREHENSION, Stage.KNOWLEDGE_ACQUISITION],
    )
    def test_passive_processing_failure_is_unprotected(self, stage):
        assert not failure_needs_override(stage, default_safe=False)
        assert failure_outcome(stage, False) is BehaviorOutcome.FAILURE

    @pytest.mark.parametrize(
        "stage", [Stage.KNOWLEDGE_RETENTION, Stage.KNOWLEDGE_TRANSFER]
    )
    def test_retention_failures_always_unprotected(self, stage):
        assert failure_outcome(stage, True) is BehaviorOutcome.FAILURE
        assert failure_outcome(stage, False) is BehaviorOutcome.FAILURE
        assert not failure_needs_override(stage, default_safe=True)


class TestBlockingSemantics:
    """Blocking communications: the safe outcome is the default."""

    def test_stage_failures_mostly_fail_safe(self, blocking_warning, busy_environment):
        result = _simulate(_task(blocking_warning, busy_environment))
        counts = result.outcome_counts()
        # Failures before the intention gate land in FAILED_SAFE far more
        # often than in FAILURE-by-override.
        stage_failures = sum(
            count
            for stage, count in result.stage_failure_counts().items()
            if stage is not Stage.BEHAVIOR
        )
        assert stage_failures > 0
        assert counts[BehaviorOutcome.FAILED_SAFE] > 0
        # NO_ACTION never occurs: a blocking dialog cannot go unnoticed.
        assert counts[BehaviorOutcome.NO_ACTION] == 0

    def test_unprotected_receivers_overrode_or_were_spoofed(
        self, blocking_warning, busy_environment
    ):
        result = _simulate(_task(blocking_warning, busy_environment))
        for record in result.records:
            if record.protected:
                continue
            # With a blocking warning, reaching the hazard requires an
            # explicit decision (intention failure), a deliberate override
            # after misunderstanding, or attacker interference.
            assert (
                record.intention_failed
                or record.spoofed
                or record.failed_stage is not None
            )
            assert record.outcome is BehaviorOutcome.FAILURE

    def test_override_rate_controls_blocking_failures(self, blocking_warning, busy_environment):
        task = _task(blocking_warning, busy_environment)
        never = _simulate(
            task,
            calibration=StageCalibration(
                override_given_misunderstanding=0.0, label="never-override"
            ),
        )
        always = _simulate(
            task,
            calibration=StageCalibration(
                override_given_misunderstanding=1.0, label="always-override"
            ),
        )
        assert always.protection_rate() < never.protection_rate()
        # With override probability 0, every misunderstanding fails safe.
        for record in never.records:
            if record.failed_stage in (
                Stage.ATTENTION_MAINTENANCE,
                Stage.COMPREHENSION,
                Stage.KNOWLEDGE_ACQUISITION,
            ):
                assert record.outcome is BehaviorOutcome.FAILED_SAFE
        # With override probability 1, every misunderstanding reaches the hazard.
        for record in always.records:
            if record.failed_stage in (
                Stage.ATTENTION_MAINTENANCE,
                Stage.COMPREHENSION,
                Stage.KNOWLEDGE_ACQUISITION,
            ):
                assert record.outcome is BehaviorOutcome.FAILURE


class TestPassiveSemantics:
    """Passive communications: the hazard proceeds by default."""

    def test_every_failure_leaves_receiver_unprotected(
        self, passive_indicator, busy_environment
    ):
        result = _simulate(_task(passive_indicator, busy_environment))
        for record in result.records:
            if record.outcome is not BehaviorOutcome.SUCCESS:
                assert not record.protected
        # FAILED_SAFE never occurs for a passive indicator.
        assert result.outcome_counts()[BehaviorOutcome.FAILED_SAFE] == 0

    def test_unnoticed_indicator_means_no_action(self, passive_indicator, busy_environment):
        result = _simulate(_task(passive_indicator, busy_environment))
        attention_failures = [
            record
            for record in result.records
            if record.failed_stage is Stage.ATTENTION_SWITCH
        ]
        assert attention_failures  # subtle indicator in a busy environment
        for record in attention_failures:
            assert record.outcome is BehaviorOutcome.NO_ACTION

    def test_passive_protects_less_than_blocking(
        self, blocking_warning, passive_indicator, busy_environment
    ):
        blocking = _simulate(_task(blocking_warning, busy_environment, name="blocking"))
        passive = _simulate(_task(passive_indicator, busy_environment, name="passive"))
        assert passive.protection_rate() < blocking.protection_rate()


class TestSpoofedSemantics:
    """Spoofed indicators defeat the receiver regardless of processing."""

    def test_spoofed_receivers_always_unprotected(self, warning_task):
        result = _simulate(warning_task, attacker=spoofing_attacker(0.5))
        spoofed_records = [record for record in result.records if record.spoofed]
        assert spoofed_records
        for record in spoofed_records:
            assert record.outcome is BehaviorOutcome.FAILURE
            assert not record.protected
            # Processing never happened: the trace is empty.
            assert record.trace.outcomes == []
            assert record.failed_stage is None

    def test_spoof_rate_tracks_attacker_capability(self, warning_task):
        weak = _simulate(warning_task, attacker=spoofing_attacker(0.2))
        strong = _simulate(warning_task, attacker=spoofing_attacker(0.8))
        assert weak.spoofed_rate() == pytest.approx(0.2, abs=0.06)
        assert strong.spoofed_rate() == pytest.approx(0.8, abs=0.06)
        assert strong.protection_rate() < weak.protection_rate()

    def test_spoofing_applies_in_both_modes(self, warning_task):
        simulator = HumanLoopSimulator(
            SimulationConfig(n_receivers=400, seed=SEED, attacker=spoofing_attacker(0.5))
        )
        batch = simulator.simulate_task(warning_task, general_web_population(), mode="batch")
        reference = simulator.simulate_task(
            warning_task, general_web_population(), mode="reference"
        )
        assert batch.spoofed_rate() == reference.spoofed_rate() > 0.3
