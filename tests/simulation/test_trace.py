"""Tests for the stage-outcome trace layer (ISSUE 4 tentpole).

Pins the refactor's invariants:

* the batch and reference modes emit *identical* funnel tallies round by
  round (reference is the same kernel at width 1),
* traces agree with the streaming :class:`SimulationTally` counters
  (trace↔tally consistency), and
* the scalar ``walk()`` — now a width-1 drive of the kernel — still
  matches a full-width batch evaluation row for row.
"""

import numpy as np
import pytest

from repro.core.exceptions import ModelError, SimulationError
from repro.core.pipeline import build_pipeline, decision_columns, walk_from_row
from repro.core.stages import GATE_CHECKPOINTS, Stage, StageTraceBatch
from repro.core.task import HumanSecurityTask
from repro.simulation import batch as batch_module
from repro.simulation.calibration import StageCalibration
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.metrics import FunnelTally
from repro.simulation.population import general_web_population
from repro.simulation.rng import SimulationRng
from repro.systems import get_scenario

N = 400
SEED = 20260726


def _simulator(**overrides) -> HumanLoopSimulator:
    overrides.setdefault("n_receivers", N)
    overrides.setdefault("seed", SEED)
    return HumanLoopSimulator(SimulationConfig(**overrides))


class TestKernelTrace:
    """The kernel's StageTraceBatch must be internally consistent."""

    def _evaluate(self, warning_task, trace=True):
        plan = build_pipeline(warning_task, calibration=StageCalibration.neutral())
        draws = batch_module.draw_batch(
            plan, general_web_population(), N, SimulationRng(SEED)
        )
        return plan, batch_module.evaluate_batch(plan, draws, trace=trace)

    def test_trace_labels_are_stages_then_gates(self, warning_task):
        plan, outcomes = self._evaluate(warning_task)
        trace = outcomes.trace
        assert trace is not None
        assert trace.labels == tuple(s.value for s in plan.stages) + GATE_CHECKPOINTS
        assert trace.count == N

    def test_trace_off_by_default(self, warning_task):
        _, outcomes = self._evaluate(warning_task, trace=False)
        assert outcomes.trace is None

    def test_entered_is_monotone_nonincreasing(self, warning_task):
        _, outcomes = self._evaluate(warning_task)
        entered = outcomes.trace.entered_counts()
        assert all(entered[k] >= entered[k + 1] for k in range(len(entered) - 1))
        # passed at one checkpoint is exactly entered at the next.
        passed = outcomes.trace.passed_counts()
        assert all(passed[k] == entered[k + 1] for k in range(len(entered) - 1))

    def test_trace_matches_outcome_arrays(self, warning_task):
        plan, outcomes = self._evaluate(warning_task)
        trace = outcomes.trace
        # Spoofed receivers enter nothing.
        assert not trace.entered[outcomes.spoofed].any()
        # First checkpoint is entered by every non-spoofed receiver.
        assert trace.entered[:, 0].sum() == np.count_nonzero(~outcomes.spoofed)
        # Attention checkpoint agrees with the dedicated counters.
        attention = trace.column(Stage.ATTENTION_SWITCH.value)
        assert (
            trace.entered[:, attention].sum()
            == np.count_nonzero(outcomes.attention_evaluated)
        )
        assert (
            trace.passed[:, attention].sum()
            == np.count_nonzero(outcomes.attention_succeeded)
        )
        # Behavior survivors are exactly the successes.
        from repro.core.behavior import BehaviorOutcome, outcome_code

        behavior = trace.column("behavior")
        assert trace.passed[:, behavior].sum() == np.count_nonzero(
            outcomes.outcome_codes == outcome_code(BehaviorOutcome.SUCCESS)
        )

    def test_no_communication_trace(self):
        task = HumanSecurityTask(name="silent", desired_action="act")
        plan = build_pipeline(task)
        draws = batch_module.draw_batch(
            plan, general_web_population(), 50, SimulationRng(1)
        )
        outcomes = batch_module.evaluate_batch(plan, draws, trace=True)
        assert outcomes.trace.labels == ("self_initiated",)
        assert outcomes.trace.entered[:, 0].all()
        assert outcomes.trace.passed[:, 0].sum() == np.count_nonzero(outcomes.protected)

    def test_batch_trace_validation(self):
        with pytest.raises(ModelError):
            StageTraceBatch(
                labels=("a", "b"),
                stages=(),
                skipped=(),
                entered=np.zeros((3, 1), dtype=bool),
                passed=np.zeros((3, 1), dtype=bool),
                spoofed=np.zeros(3, dtype=bool),
            )
        with pytest.raises(ModelError):
            StageTraceBatch(
                labels=("a",),
                stages=(),
                skipped=(),
                entered=np.zeros((3, 1), dtype=bool),
                passed=np.zeros((2, 1), dtype=bool),
                spoofed=np.zeros(3, dtype=bool),
            )


class TestScalarWalkIsKernelWidthOne:
    """plan.walk() and the batch kernel must realize identical passes."""

    def test_walk_matches_batch_rows(self, warning_task):
        plan = build_pipeline(warning_task, calibration=StageCalibration.neutral())
        draws = batch_module.draw_batch(
            plan, general_web_population(), 100, SimulationRng(SEED)
        )
        outcomes = batch_module.evaluate_batch(plan, draws)
        columns = decision_columns(plan)
        population = general_web_population()

        for row in range(100):
            receiver = population.receiver_from_traits(draws.samples, row)
            spoofed = bool(draws.spoof_uniforms[row] < plan.spoof_probability)

            def decide(kind, stage, probability, row=row):
                column = columns[f"stage:{stage.value}" if kind == "stage" else kind]
                return bool(draws.decisions[row, column] < probability)

            walk = plan.walk(
                receiver,
                decide=decide,
                noise=float(draws.noise[row]),
                spoofed=spoofed,
            )
            batch_walk = walk_from_row(outcomes, row)
            assert walk.outcome is batch_walk.outcome
            assert walk.protected == batch_walk.protected
            assert walk.failed_stage is batch_walk.failed_stage
            assert walk.intention_failed == batch_walk.intention_failed
            assert walk.capability_failed == batch_walk.capability_failed
            assert walk.note == batch_walk.note
            assert walk.trace.evaluated_stages == batch_walk.trace.evaluated_stages
            assert walk.trace.skipped == batch_walk.trace.skipped
            for mine, theirs in zip(walk.trace.outcomes, batch_walk.trace.outcomes):
                assert mine.succeeded == theirs.succeeded
                assert mine.probability == theirs.probability

    def test_lazy_callback_not_consulted_past_failure(self, warning_task):
        # The scalar walk must keep its lazy draw contract: no decisions
        # are requested for checkpoints the receiver never reaches.
        plan = build_pipeline(warning_task)
        receiver = general_web_population().sample(SimulationRng(0))
        calls = []

        def decide(kind, stage, probability):
            calls.append((kind, stage))
            return False  # fail the first checkpoint immediately

        walk = plan.walk(receiver, decide=decide)
        # Attention switch fails safely under a blocking warning without an
        # override draw; nothing else may have been consulted.
        assert walk.failed_stage is Stage.ATTENTION_SWITCH
        assert calls == [("stage", Stage.ATTENTION_SWITCH)]

    def test_spoofed_walk_consults_nothing(self, warning_task):
        plan = build_pipeline(warning_task)
        receiver = general_web_population().sample(SimulationRng(0))
        calls = []
        walk = plan.walk(
            receiver,
            decide=lambda kind, stage, p: calls.append(kind) or True,
            spoofed=True,
        )
        assert walk.spoofed and not walk.protected
        assert calls == []


class TestFunnelTally:
    def test_funnel_streams_across_chunks(self, warning_task):
        # Folding chunk by chunk must account for every encounter exactly
        # once, and stay consistent with the streaming tally it rides
        # alongside (chunking changes the draw stream, not the accounting).
        population = general_web_population()
        result = _simulator(batch_size=64).simulate_task(warning_task, population)
        funnel = result.funnel
        assert funnel.n == result.tally.n == N
        assert funnel.spoofed == result.tally.spoofed
        assert funnel.entered[0] == N - funnel.spoofed

    def test_funnel_matches_tally_counters(self, warning_task):
        result = _simulator().simulate_task(warning_task, general_web_population())
        funnel = result.funnel
        tally = result.tally
        attention = Stage.ATTENTION_SWITCH.value
        assert funnel.entered[funnel._column(attention)] == tally.attention_evaluated
        assert funnel.passed[funnel._column(attention)] == tally.attention_succeeded
        intention = funnel._column("intention")
        assert (
            funnel.entered[intention] - funnel.passed[intention]
            == tally.intention_failures
        )
        capability = funnel._column("capability")
        assert (
            funnel.entered[capability] - funnel.passed[capability]
            == tally.capability_failures
        )
        behavior = funnel._column("behavior")
        assert funnel.passed[behavior] == tally.outcome_counts_by_code[0]  # SUCCESS
        assert funnel.spoofed == tally.spoofed
        assert funnel.n == tally.n

    def test_batch_and_reference_funnels_agree_per_round(self, warning_task):
        population = general_web_population()
        common = dict(rounds=3, recovery_rate=0.2)
        batch = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="batch", **common
        )
        reference = _simulator(batch_size=150).simulate_task(
            warning_task, population, mode="reference", **common
        )
        assert batch.funnel.entered == reference.funnel.entered
        assert batch.funnel.passed == reference.funnel.passed
        assert len(batch.round_funnels) == len(reference.round_funnels) == 3
        for batch_round, reference_round in zip(batch.round_funnels, reference.round_funnels):
            assert batch_round.entered == reference_round.entered
            assert batch_round.passed == reference_round.passed
            assert batch_round.spoofed == reference_round.spoofed

    def test_trace_off_keeps_rates_and_drops_funnel(self, warning_task):
        population = general_web_population()
        on = _simulator().simulate_task(warning_task, population)
        off = _simulator(trace=False).simulate_task(warning_task, population)
        assert off.funnel is None
        assert off.round_funnels == []
        assert off.funnel_survival() == []
        assert off.outcome_counts() == on.outcome_counts()
        with pytest.raises(SimulationError):
            off.conditional_failure_rate("intention")

    def test_conditional_failure_and_survival_rates(self, warning_task):
        result = _simulator().simulate_task(warning_task, general_web_population())
        funnel = result.funnel
        for row in funnel.survival():
            label = row["checkpoint"]
            assert 0.0 <= row["conditional_failure_rate"] <= 1.0
            assert row["survival_rate"] <= row["entry_rate"] <= 1.0
            assert funnel.survival_rate(label) == row["survival_rate"]
        # survival through the last checkpoint is the heed rate.
        assert funnel.survival_rate("behavior") == pytest.approx(result.heed_rate())

    def test_merge_and_mismatch(self):
        a = FunnelTally(labels=("x", "y"), entered=[4, 2], passed=[2, 1], n=5, spoofed=1)
        b = FunnelTally(labels=("x", "y"), entered=[1, 1], passed=[1, 0], n=2, spoofed=0)
        a.merge(b)
        assert a.entered == [5, 3] and a.passed == [3, 1] and a.n == 7
        with pytest.raises(SimulationError):
            a.merge(FunnelTally(labels=("z",), entered=[1], passed=[0], n=1))
        with pytest.raises(SimulationError):
            a.entry_rate("nope")

    def test_round_funnel_metric_series(self):
        scenario = get_scenario("antiphishing")
        result = scenario.simulate(
            1_000, seed=SEED, task="heed-ie_passive-warning", rounds=6, recovery_rate=0.0
        )
        survival = result.round_funnel_metric(Stage.ATTENTION_SWITCH.value)
        assert len(survival) == 6
        # Habituation: attention-switch survival erodes over rounds.
        assert survival[-1] < survival[0]
        with pytest.raises(SimulationError):
            result.round_funnel_metric("behavior", rate="nope")
