"""Tests for population specifications and receiver sampling."""

import pytest

from repro.core.exceptions import SimulationError
from repro.simulation.population import (
    PopulationSpec,
    TraitDistribution,
    expert_population,
    general_web_population,
    organization_population,
)
from repro.simulation.rng import SimulationRng


class TestTraitDistribution:
    def test_sampling_stays_in_bounds(self):
        distribution = TraitDistribution(mean=0.5, std=0.5)
        rng = SimulationRng(1)
        samples = [distribution.sample(rng) for _ in range(200)]
        assert all(0.0 <= sample <= 1.0 for sample in samples)

    def test_mean_must_lie_in_bounds(self):
        with pytest.raises(SimulationError):
            TraitDistribution(mean=1.5)

    def test_negative_std_rejected(self):
        with pytest.raises(SimulationError):
            TraitDistribution(mean=0.5, std=-0.1)


class TestPopulationSpec:
    def test_unknown_trait_rejected(self):
        with pytest.raises(SimulationError):
            PopulationSpec(name="p", traits={"charisma": TraitDistribution(0.5)})

    def test_with_trait_returns_modified_copy(self):
        spec = general_web_population()
        modified = spec.with_trait("memory_capacity", TraitDistribution(0.9, 0.01))
        assert modified.distribution("memory_capacity").mean == 0.9
        assert spec.distribution("memory_capacity").mean != 0.9

    def test_with_unknown_trait_rejected(self):
        with pytest.raises(SimulationError):
            general_web_population().with_trait("charisma", TraitDistribution(0.5))

    def test_sample_produces_valid_receiver(self):
        receiver = general_web_population().sample(SimulationRng(0))
        assert 0.0 <= receiver.expertise <= 1.0
        assert 0.0 <= receiver.intention_score <= 1.0
        assert 0.0 <= receiver.capability_score <= 1.0
        assert 18 <= receiver.personal_variables.demographics.age <= 90

    def test_sample_many_count_and_names(self):
        receivers = organization_population().sample_many(5, SimulationRng(3))
        assert len(receivers) == 5
        assert len({receiver.name for receiver in receivers}) == 5

    def test_sample_many_deterministic(self):
        first = general_web_population().sample_many(3, SimulationRng(9))
        second = general_web_population().sample_many(3, SimulationRng(9))
        assert [r.expertise for r in first] == [r.expertise for r in second]

    def test_sample_many_negative_rejected(self):
        with pytest.raises(SimulationError):
            general_web_population().sample_many(-1, SimulationRng(0))

    def test_training_fraction_validated(self):
        with pytest.raises(SimulationError):
            PopulationSpec(name="p", training_fraction=1.5)


class TestPresetPopulations:
    def test_expert_population_more_knowledgeable_on_average(self):
        rng_a = SimulationRng(42)
        rng_b = SimulationRng(42)
        experts = expert_population().sample_many(200, rng_a)
        general = general_web_population().sample_many(200, rng_b)
        expert_mean = sum(receiver.expertise for receiver in experts) / len(experts)
        general_mean = sum(receiver.expertise for receiver in general) / len(general)
        assert expert_mean > general_mean + 0.2

    def test_organization_population_has_higher_prior_exposure(self):
        org = organization_population()
        web = general_web_population()
        assert org.distribution("prior_exposure").mean > web.distribution("prior_exposure").mean

    def test_population_names_distinct(self):
        names = {
            general_web_population().name,
            organization_population().name,
            expert_population().name,
        }
        assert len(names) == 3
