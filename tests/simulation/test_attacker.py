"""Tests for attacker models."""

import pytest

from repro.core.exceptions import SimulationError
from repro.core.impediments import Environment, InterferenceSource
from repro.simulation.attacker import AttackerModel, AttackVector, no_attacker, spoofing_attacker


class TestAttackerModel:
    def test_no_attacker_is_inactive(self):
        assert not no_attacker().is_active

    def test_spoofing_attacker_is_active(self):
        attacker = spoofing_attacker(0.4)
        assert attacker.is_active
        assert attacker.spoof_capability == 0.4

    def test_interference_channel_reflects_capabilities(self):
        attacker = AttackerModel(
            name="full", suppress_capability=0.2, obscure_capability=0.3, spoof_capability=0.4
        )
        channel = attacker.interference()
        assert channel.source is InterferenceSource.MALICIOUS_ATTACKER
        assert channel.block_probability == 0.2
        assert channel.degrade_probability == 0.3
        assert channel.spoof_probability == 0.4

    def test_apply_to_does_not_mutate_original(self):
        attacker = spoofing_attacker(0.5)
        original = Environment()
        modified = attacker.apply_to(original)
        assert original.spoof_probability == 0.0
        assert modified.spoof_probability == pytest.approx(0.5)
        assert modified is not original

    def test_inactive_attacker_adds_nothing(self):
        environment = Environment()
        modified = no_attacker().apply_to(environment)
        assert not modified.interference

    def test_capability_validation(self):
        with pytest.raises(SimulationError):
            AttackerModel(spoof_capability=1.5)

    def test_attack_vectors_described(self):
        for vector in AttackVector:
            assert len(vector.description) > 10
