"""Tests for simulation result metrics and comparison tables."""

import pytest

from repro.core.behavior import BehaviorOutcome
from repro.core.exceptions import SimulationError
from repro.core.stages import Stage, StageOutcome, StageTrace
from repro.simulation.metrics import (
    ReceiverRecord,
    SimulationResult,
    comparison_table,
    render_comparison_markdown,
)


def _record(index: int, outcome: BehaviorOutcome, protected: bool,
            failed_stage=None, noticed=True, intention_failed=False,
            capability_failed=False) -> ReceiverRecord:
    trace = StageTrace()
    trace.record(StageOutcome(Stage.ATTENTION_SWITCH, noticed, 0.5))
    return ReceiverRecord(
        index=index,
        receiver_name=f"user-{index}",
        trace=trace,
        outcome=outcome,
        protected=protected,
        failed_stage=failed_stage,
        intention_failed=intention_failed,
        capability_failed=capability_failed,
    )


def _result() -> SimulationResult:
    result = SimulationResult(task_name="task", population_name="pop")
    result.records = [
        _record(0, BehaviorOutcome.SUCCESS, True),
        _record(1, BehaviorOutcome.FAILED_SAFE, True, failed_stage=Stage.COMPREHENSION),
        _record(2, BehaviorOutcome.FAILURE, False, intention_failed=True),
        _record(3, BehaviorOutcome.NO_ACTION, False, failed_stage=Stage.ATTENTION_SWITCH,
                noticed=False),
    ]
    return result


class TestSimulationResult:
    def test_rates(self):
        result = _result()
        assert result.n_receivers == 4
        assert result.protection_rate() == pytest.approx(0.5)
        assert result.heed_rate() == pytest.approx(0.25)
        assert result.failure_rate() == pytest.approx(0.5)
        assert result.notice_rate() == pytest.approx(0.75)
        assert result.intention_failure_rate() == pytest.approx(0.25)
        assert result.capability_failure_rate() == 0.0

    def test_outcome_counts_cover_all_records(self):
        counts = _result().outcome_counts()
        assert sum(counts.values()) == 4
        assert counts[BehaviorOutcome.SUCCESS] == 1

    def test_stage_failure_breakdown(self):
        result = _result()
        counts = result.stage_failure_counts()
        assert counts[Stage.COMPREHENSION] == 1
        assert counts[Stage.ATTENTION_SWITCH] == 1
        fractions = result.stage_failure_fractions()
        assert fractions[Stage.COMPREHENSION] == pytest.approx(0.25)

    def test_dominant_failure_stage(self):
        result = _result()
        result.records.append(
            _record(4, BehaviorOutcome.FAILURE, False, failed_stage=Stage.ATTENTION_SWITCH,
                    noticed=False)
        )
        assert result.dominant_failure_stage() is Stage.ATTENTION_SWITCH

    def test_dominant_failure_stage_none_when_no_failures(self):
        result = SimulationResult(task_name="t", population_name="p")
        result.records = [_record(0, BehaviorOutcome.SUCCESS, True)]
        assert result.dominant_failure_stage() is None

    def test_empty_result_rates_are_zero(self):
        result = SimulationResult(task_name="t", population_name="p")
        assert result.protection_rate() == 0.0
        assert result.notice_rate() == 0.0

    def test_summary_keys(self):
        summary = _result().summary()
        assert set(summary) == {
            "n_receivers",
            "protection_rate",
            "heed_rate",
            "notice_rate",
            "intention_failure_rate",
            "capability_failure_rate",
        }

    def test_task_name_required(self):
        with pytest.raises(SimulationError):
            SimulationResult(task_name="", population_name="p")


class TestComparison:
    def test_comparison_table_rows(self):
        rows = comparison_table({"a": _result(), "b": _result()})
        assert len(rows) == 2
        assert rows[0]["scenario"] == "a"
        assert "protection_rate" in rows[0]

    def test_markdown_rendering(self):
        markdown = render_comparison_markdown({"scenario-x": _result()})
        assert "scenario-x" in markdown
        assert markdown.startswith("| Scenario |")
