"""Tests for simulation result metrics and comparison tables."""

import pytest

from repro.core.behavior import BehaviorOutcome
from repro.core.exceptions import SimulationError
from repro.core.stages import Stage, StageOutcome, StageTrace
from repro.simulation.metrics import (
    ReceiverRecord,
    SimulationResult,
    comparison_table,
    render_comparison_markdown,
)


def _record(index: int, outcome: BehaviorOutcome, protected: bool,
            failed_stage=None, noticed=True, intention_failed=False,
            capability_failed=False) -> ReceiverRecord:
    trace = StageTrace()
    trace.record(StageOutcome(Stage.ATTENTION_SWITCH, noticed, 0.5))
    return ReceiverRecord(
        index=index,
        receiver_name=f"user-{index}",
        trace=trace,
        outcome=outcome,
        protected=protected,
        failed_stage=failed_stage,
        intention_failed=intention_failed,
        capability_failed=capability_failed,
    )


def _result() -> SimulationResult:
    result = SimulationResult(task_name="task", population_name="pop")
    result.records = [
        _record(0, BehaviorOutcome.SUCCESS, True),
        _record(1, BehaviorOutcome.FAILED_SAFE, True, failed_stage=Stage.COMPREHENSION),
        _record(2, BehaviorOutcome.FAILURE, False, intention_failed=True),
        _record(3, BehaviorOutcome.NO_ACTION, False, failed_stage=Stage.ATTENTION_SWITCH,
                noticed=False),
    ]
    return result


class TestSimulationResult:
    def test_rates(self):
        result = _result()
        assert result.n_receivers == 4
        assert result.protection_rate() == pytest.approx(0.5)
        assert result.heed_rate() == pytest.approx(0.25)
        assert result.failure_rate() == pytest.approx(0.5)
        assert result.notice_rate() == pytest.approx(0.75)
        assert result.intention_failure_rate() == pytest.approx(0.25)
        assert result.capability_failure_rate() == 0.0

    def test_outcome_counts_cover_all_records(self):
        counts = _result().outcome_counts()
        assert sum(counts.values()) == 4
        assert counts[BehaviorOutcome.SUCCESS] == 1

    def test_stage_failure_breakdown(self):
        result = _result()
        counts = result.stage_failure_counts()
        assert counts[Stage.COMPREHENSION] == 1
        assert counts[Stage.ATTENTION_SWITCH] == 1
        fractions = result.stage_failure_fractions()
        assert fractions[Stage.COMPREHENSION] == pytest.approx(0.25)

    def test_dominant_failure_stage(self):
        result = _result()
        result.records.append(
            _record(4, BehaviorOutcome.FAILURE, False, failed_stage=Stage.ATTENTION_SWITCH,
                    noticed=False)
        )
        assert result.dominant_failure_stage() is Stage.ATTENTION_SWITCH

    def test_dominant_failure_stage_none_when_no_failures(self):
        result = SimulationResult(task_name="t", population_name="p")
        result.records = [_record(0, BehaviorOutcome.SUCCESS, True)]
        assert result.dominant_failure_stage() is None

    def test_empty_result_rates_are_zero(self):
        result = SimulationResult(task_name="t", population_name="p")
        assert result.protection_rate() == 0.0
        assert result.notice_rate() == 0.0

    def test_summary_keys(self):
        summary = _result().summary()
        assert set(summary) == {
            "n_receivers",
            "receiver_rounds",
            "protection_rate",
            "heed_rate",
            "notice_rate",
            "intention_failure_rate",
            "capability_failure_rate",
        }

    def test_task_name_required(self):
        with pytest.raises(SimulationError):
            SimulationResult(task_name="", population_name="p")

    def test_habituation_weights_validated(self):
        with pytest.raises(SimulationError):
            SimulationResult(task_name="t", population_name="p", dismiss_weight=-1.0)
        with pytest.raises(SimulationError):
            SimulationResult(task_name="t", population_name="p", heed_weight=-0.5)


class TestDenominatorSemantics:
    """Pins the intended denominators for multi-round results (ISSUE 4).

    Every ``*_rate`` accessor and ``stage_failure_fractions`` divides by
    the *encounter* count (``receiver_rounds``); ``n_receivers`` always
    reports unique receivers.  A receiver who fails at the same stage in
    several rounds contributes one encounter per round.
    """

    def _multi_round_result(self) -> SimulationResult:
        # 2 unique receivers x 3 rounds = 6 encounters, hand-built so every
        # expected fraction is a round number.
        result = SimulationResult(task_name="task", population_name="pop", rounds=3)
        outcomes = [
            (BehaviorOutcome.SUCCESS, True, None),
            (BehaviorOutcome.FAILURE, False, Stage.ATTENTION_SWITCH),
            (BehaviorOutcome.SUCCESS, True, None),
            (BehaviorOutcome.FAILURE, False, Stage.ATTENTION_SWITCH),
            (BehaviorOutcome.FAILURE, False, Stage.ATTENTION_SWITCH),
            (BehaviorOutcome.FAILED_SAFE, True, Stage.COMPREHENSION),
        ]
        result.records = [
            ReceiverRecord(
                index=i % 2,
                receiver_name=f"user-{i % 2}",
                trace=StageTrace(),
                outcome=outcome,
                protected=protected,
                failed_stage=failed_stage,
                round_index=i // 2,
            )
            for i, (outcome, protected, failed_stage) in enumerate(outcomes)
        ]
        return result

    def test_unique_receivers_vs_encounters(self):
        result = self._multi_round_result()
        assert result.n_receivers == 2
        assert result.receiver_rounds == 6

    def test_rates_divide_by_encounters(self):
        result = self._multi_round_result()
        # 3 protected encounters of 6 — not 1.5 of 2 receivers.
        assert result.protection_rate() == pytest.approx(3 / 6)
        assert result.heed_rate() == pytest.approx(2 / 6)
        assert result.failure_rate() == pytest.approx(3 / 6)

    def test_stage_failure_fractions_divide_by_encounters(self):
        result = self._multi_round_result()
        fractions = result.stage_failure_fractions()
        # The same receiver failing at attention in three rounds counts
        # three encounters toward that stage's fraction.
        assert fractions[Stage.ATTENTION_SWITCH] == pytest.approx(3 / 6)
        assert fractions[Stage.COMPREHENSION] == pytest.approx(1 / 6)
        counts = result.stage_failure_counts()
        for stage, fraction in fractions.items():
            assert fraction == pytest.approx(counts[stage] / result.receiver_rounds)

    def test_summary_carries_both_denominators(self):
        summary = self._multi_round_result().summary()
        assert summary["n_receivers"] == 2.0
        assert summary["receiver_rounds"] == 6.0

    def test_single_shot_denominators_coincide(self):
        result = _result()
        assert result.n_receivers == result.receiver_rounds == 4
        assert result.summary()["n_receivers"] == result.summary()["receiver_rounds"]

    def test_engine_multi_round_denominators(self):
        # The engine's tallies must obey the same accounting end to end.
        from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
        from repro.simulation.population import general_web_population
        from repro.systems.antiphishing import WarningVariant, task_for

        result = HumanLoopSimulator(
            SimulationConfig(n_receivers=150, seed=11)
        ).simulate_task(
            task_for(WarningVariant.IE_PASSIVE), general_web_population(),
            rounds=4, recovery_rate=0.1,
        )
        assert result.n_receivers == 150
        assert result.receiver_rounds == 600
        assert sum(result.outcome_counts().values()) == 600
        total_stage_failures = sum(result.stage_failure_counts().values())
        assert sum(result.stage_failure_fractions().values()) == pytest.approx(
            total_stage_failures / 600
        )
        assert result.funnel.n == 600


class TestComparison:
    def test_comparison_table_rows(self):
        rows = comparison_table({"a": _result(), "b": _result()})
        assert len(rows) == 2
        assert rows[0]["scenario"] == "a"
        assert "protection_rate" in rows[0]

    def test_markdown_rendering(self):
        markdown = render_comparison_markdown({"scenario-x": _result()})
        assert "scenario-x" in markdown
        assert markdown.startswith("| Scenario |")
