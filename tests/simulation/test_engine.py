"""Tests for the human-receiver simulation engine."""

import pytest

from repro.core.behavior import BehaviorOutcome
from repro.core.communication import Communication, CommunicationType
from repro.core.exceptions import SimulationError
from repro.core.stages import Stage
from repro.core.task import HumanSecurityTask
from repro.simulation.attacker import spoofing_attacker
from repro.simulation.calibration import StageCalibration
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.population import general_web_population
from repro.simulation.rng import SimulationRng


@pytest.fixture
def simulator() -> HumanLoopSimulator:
    return HumanLoopSimulator(SimulationConfig(n_receivers=200, seed=11))


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.n_receivers == 500
        assert config.attacker is None

    def test_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(n_receivers=-1)
        with pytest.raises(SimulationError):
            SimulationConfig(seed=-2)


class TestSimulateTask:
    def test_result_size_and_determinism(self, simulator, warning_task):
        population = general_web_population()
        first = simulator.simulate_task(warning_task, population)
        second = simulator.simulate_task(warning_task, population)
        assert first.n_receivers == 200
        assert first.protection_rate() == second.protection_rate()
        assert [record.outcome for record in first.records] == [
            record.outcome for record in second.records
        ]

    def test_different_seeds_differ(self, warning_task):
        population = general_web_population()
        a = HumanLoopSimulator(SimulationConfig(n_receivers=200, seed=1)).simulate_task(
            warning_task, population
        )
        b = HumanLoopSimulator(SimulationConfig(n_receivers=200, seed=2)).simulate_task(
            warning_task, population
        )
        assert [r.outcome for r in a.records] != [r.outcome for r in b.records]

    def test_blocking_warning_mostly_protects(self, simulator, warning_task):
        # A statistical property, not a pinned stream: the true rate is
        # ~0.53, so use enough receivers to stay clear of sampling noise.
        result = simulator.simulate_task(
            warning_task, general_web_population(), n_receivers=1_000
        )
        assert result.protection_rate() > 0.5

    def test_passive_indicator_rarely_protects(self, simulator, passive_indicator,
                                               busy_environment):
        task = HumanSecurityTask(
            name="notice-passive",
            communication=passive_indicator,
            environment=busy_environment,
            desired_action="react",
        )
        result = simulator.simulate_task(task, general_web_population())
        assert result.protection_rate() < 0.4
        assert result.notice_rate() < 0.6

    def test_no_communication_mostly_unprotected(self, simulator):
        task = HumanSecurityTask(name="silent", desired_action="act")
        result = simulator.simulate_task(task, general_web_population())
        assert result.protection_rate() < 0.15
        outcomes = result.outcome_counts()
        assert outcomes[BehaviorOutcome.NO_ACTION] > 0

    def test_capability_gap_shows_up_as_capability_failures(self, simulator, blocking_warning):
        from repro.core.receiver import Capabilities

        demanding_task = HumanSecurityTask(
            name="remember-everything",
            communication=blocking_warning,
            capability_requirements=Capabilities(
                knowledge_to_act=0.2,
                cognitive_skill=0.2,
                physical_skill=0.1,
                memory_capacity=0.9,
                has_required_software=False,
                has_required_device=False,
            ),
            desired_action="recall all secrets",
        )
        easy_task = HumanSecurityTask(
            name="remember-nothing",
            communication=blocking_warning,
            desired_action="just click",
        )
        population = general_web_population()
        demanding = simulator.simulate_task(demanding_task, population)
        easy = simulator.simulate_task(easy_task, population)
        assert demanding.capability_failure_rate() > 0.05
        assert demanding.capability_failure_rate() > easy.capability_failure_rate() + 0.03
        # With a blocking communication, capability failures fail safe, so
        # the correct-completion (heed) rate is what suffers.
        assert demanding.heed_rate() < easy.heed_rate()

    def test_n_receivers_override(self, simulator, warning_task):
        result = simulator.simulate_task(warning_task, general_web_population(), n_receivers=10)
        assert result.n_receivers == 10

    def test_negative_override_rejected(self, simulator, warning_task):
        with pytest.raises(SimulationError):
            simulator.simulate_task(warning_task, general_web_population(), n_receivers=-5)

    def test_spoofing_attacker_reduces_protection(self, warning_task):
        population = general_web_population()
        clean = HumanLoopSimulator(SimulationConfig(n_receivers=300, seed=3)).simulate_task(
            warning_task, population
        )
        attacked = HumanLoopSimulator(
            SimulationConfig(n_receivers=300, seed=3, attacker=spoofing_attacker(0.6))
        ).simulate_task(warning_task, population)
        assert attacked.protection_rate() < clean.protection_rate() - 0.2
        assert attacked.spoofed_rate() > 0.4

    def test_calibration_changes_results(self, warning_task):
        population = general_web_population()
        neutral = HumanLoopSimulator(SimulationConfig(n_receivers=300, seed=5)).simulate_task(
            warning_task, population
        )
        boosted = HumanLoopSimulator(
            SimulationConfig(
                n_receivers=300,
                seed=5,
                calibration=StageCalibration(intention_multiplier=2.5, label="boosted"),
            )
        ).simulate_task(warning_task, population)
        assert boosted.heed_rate() > neutral.heed_rate()
        assert boosted.calibration_label == "boosted"

    def test_retention_stages_skipped_for_warnings(self, simulator, warning_task):
        result = simulator.simulate_task(warning_task, general_web_population(), n_receivers=50)
        for record in result.records:
            assert Stage.KNOWLEDGE_RETENTION in record.trace.skipped
            assert record.trace.outcome_for(Stage.KNOWLEDGE_RETENTION) is None

    def test_policy_communication_exercises_retention(self, simulator):
        policy_task = HumanSecurityTask(
            name="follow-policy",
            communication=Communication(
                name="policy", comm_type=CommunicationType.POLICY, activeness=0.5, clarity=0.8,
                includes_instructions=True,
            ),
            desired_action="comply",
        )
        result = simulator.simulate_task(policy_task, general_web_population(), n_receivers=200)
        evaluated_retention = any(
            record.trace.outcome_for(Stage.KNOWLEDGE_RETENTION) is not None
            for record in result.records
        )
        assert evaluated_retention


class TestSimulateReceiver:
    def test_single_receiver_record_fields(self, simulator, warning_task):
        receiver = general_web_population().sample(SimulationRng(0))
        record = simulator.simulate_receiver(warning_task, receiver, SimulationRng(1), index=7)
        assert record.index == 7
        assert record.receiver_name == receiver.name
        assert isinstance(record.protected, bool)
        assert record.outcome in BehaviorOutcome

    def test_protected_consistent_with_outcome(self, simulator, warning_task):
        receiver = general_web_population().sample(SimulationRng(2))
        for index in range(50):
            record = simulator.simulate_receiver(
                warning_task, receiver, SimulationRng(index), index=index
            )
            assert record.protected == record.outcome.hazard_avoided
