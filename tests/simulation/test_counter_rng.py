"""Counter-based decision streams and in-call chunk parallelism (PR 6).

The ``PhiloxDraws`` source must make every draw O(1)-addressable: any
single receiver×round decision recomputed from its ``(seed, chunk,
round, stream, receiver)`` coordinates alone must equal the value the
bulk batch draw produced, bit for bit.  On top of that sit the engine
contracts: counter-mode batch == counter-mode reference per round, and
``chunk_workers=N`` bit-identical to the serial fold for any N.
"""

import pickle

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.simulation import batch as batch_module
from repro.simulation import engine as engine_module
from repro.simulation.engine import (
    RNG_MODES,
    HumanLoopSimulator,
    SimulationConfig,
)
from repro.simulation.population import general_web_population
from repro.simulation.rng import (
    AGE_STREAMS,
    DECISION_STREAM_BASE,
    NOISE_STREAMS,
    SPOOF_STREAM,
    TRAINED_STREAM,
    PhiloxDraws,
    trait_streams,
)

SEED = 20080124
N = 1_200


@pytest.fixture
def population():
    return general_web_population()


@pytest.fixture
def plan(warning_task):
    return HumanLoopSimulator(SimulationConfig())._plan_for(warning_task)


def _simulator(**overrides) -> HumanLoopSimulator:
    overrides.setdefault("seed", SEED)
    overrides.setdefault("batch_size", 400)
    return HumanLoopSimulator(SimulationConfig(**overrides))


class TestPointAddressing:
    """Bulk draws vs O(1) single-element recomputation."""

    def test_uniform_at_matches_bulk(self):
        draws = PhiloxDraws(SEED, chunk=3, round_index=2)
        for stream in (0, SPOOF_STREAM, DECISION_STREAM_BASE + 5):
            bulk = draws.uniforms(stream, 1_000)
            for index in (0, 1, 2, 3, 4, 5, 57, 511, 999):
                assert draws.uniform_at(stream, index) == bulk[index]

    def test_clipped_normal_at_matches_bulk(self):
        draws = PhiloxDraws(SEED, chunk=1)
        bulk = draws.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 1_000)
        # Indices straddle the dual-output layout boundary (cos block
        # [0, 500), sin block [500, 1000)).
        for index in (0, 3, 4, 250, 499, 500, 501, 999):
            assert (
                draws.clipped_normal_at(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, index, 1_000)
                == bulk[index]
            )

    def test_zero_std_normals_are_constant(self):
        draws = PhiloxDraws(SEED)
        values = draws.clipped_normals(NOISE_STREAMS, 0.4, 0.0, 0.0, 1.0, 10)
        assert np.all(values == 0.4)
        assert draws.clipped_normal_at(NOISE_STREAMS, 0.4, 0.0, 0.0, 1.0, 7, 10) == 0.4

    def test_streams_are_distinct(self):
        draws = PhiloxDraws(SEED)
        streams = [trait_streams(0)[0], AGE_STREAMS[0], TRAINED_STREAM,
                   SPOOF_STREAM, DECISION_STREAM_BASE]
        values = [draws.uniforms(stream, 4).tolist() for stream in streams]
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                assert values[i] != values[j]

    def test_chunk_and_round_rekey_the_streams(self):
        base = PhiloxDraws(SEED).uniforms(DECISION_STREAM_BASE, 4).tolist()
        other_chunk = PhiloxDraws(SEED, chunk=1).uniforms(DECISION_STREAM_BASE, 4)
        other_round = PhiloxDraws(SEED).for_round(1).uniforms(DECISION_STREAM_BASE, 4)
        assert other_chunk.tolist() != base
        assert other_round.tolist() != base
        # for_round preserves seed/chunk identity.
        again = PhiloxDraws(SEED, round_index=1).uniforms(DECISION_STREAM_BASE, 4)
        assert other_round.tolist() == again.tolist()

    def test_coordinate_validation(self):
        with pytest.raises(SimulationError):
            PhiloxDraws(-1)
        with pytest.raises(SimulationError):
            PhiloxDraws(SEED, chunk=2**24)
        with pytest.raises(SimulationError):
            PhiloxDraws(SEED, round_index=2**20)
        with pytest.raises(SimulationError):
            PhiloxDraws(SEED).uniforms(2**20, 4)


class TestSingleDecisionRecompute:
    """Any receiver×round decision reproduced from coordinates alone."""

    def test_decision_matrix_cells_recompute(self, plan, population):
        cell = PhiloxDraws(SEED, chunk=2)
        draws = batch_module.draw_batch_counter(plan, population, 300, cell)
        columns = draws.decisions.shape[1]
        for row in (0, 1, 7, 113, 299):
            for column in range(columns):
                assert (
                    cell.uniform_at(DECISION_STREAM_BASE + column, row)
                    == draws.decisions[row, column]
                )

    def test_spoof_and_noise_recompute(self, plan, population):
        cell = PhiloxDraws(SEED, chunk=0)
        draws = batch_module.draw_batch_counter(plan, population, 200, cell)
        for row in (0, 5, 42, 199):
            assert cell.uniform_at(SPOOF_STREAM, row) == draws.spoof_uniforms[row]
            assert (
                cell.clipped_normal_at(
                    NOISE_STREAMS, 0.0, plan.user_noise_std, -0.2, 0.2, row, 200
                )
                == draws.noise[row]
            )

    def test_later_round_decisions_recompute(self, plan, population):
        cell = PhiloxDraws(SEED, chunk=1)
        draws = batch_module.draw_batch_counter(plan, population, 150, cell)
        round_cell = cell.for_round(3)
        redrawn = batch_module.redraw_decisions_counter(plan, draws.samples, round_cell)
        # Traits persist across rounds; encounter randomness is re-keyed.
        assert redrawn.samples is draws.samples
        for row in (0, 9, 149):
            assert (
                round_cell.uniform_at(DECISION_STREAM_BASE, row)
                == redrawn.decisions[row, 0]
            )
        assert redrawn.decisions[0, 0] != draws.decisions[0, 0]

    def test_trait_draws_recompute(self, population):
        cell = PhiloxDraws(SEED, chunk=4)
        samples = population.sample_traits_counter(100, cell)
        trained = cell.uniforms(TRAINED_STREAM, 100) < population.training_fraction
        assert np.array_equal(samples.trained, trained)
        # Chunk identity alone determines the traits.
        again = population.sample_traits_counter(100, PhiloxDraws(SEED, chunk=4))
        for name, values in samples.traits.items():
            assert np.array_equal(values, again.traits[name])
        assert np.array_equal(samples.ages, again.ages)


class TestCounterModeEngine:
    """Engine-level equivalence contracts in counter mode."""

    def test_batch_matches_reference_per_round(self, warning_task, population):
        simulator = _simulator(rng_mode="counter")
        batch = simulator.simulate_task(
            warning_task, population, n_receivers=N, rounds=3, recovery_rate=0.4
        )
        reference = simulator.simulate_task(
            warning_task, population, n_receivers=N, rounds=3, recovery_rate=0.4,
            mode="reference",
        )
        assert batch.tally.summary() == reference.tally.summary()
        for batch_round, reference_round in zip(
            batch.round_tallies, reference.round_tallies
        ):
            assert batch_round.summary() == reference_round.summary()
        assert batch.funnel.entered == reference.funnel.entered
        assert batch.funnel.passed == reference.funnel.passed
        assert list(batch.records) == list(reference.records)

    def test_counter_and_matrix_modes_draw_different_streams(
        self, warning_task, population
    ):
        matrix = _simulator(rng_mode="matrix").simulate_task(
            warning_task, population, n_receivers=N
        )
        counter = _simulator(rng_mode="counter").simulate_task(
            warning_task, population, n_receivers=N
        )
        assert matrix.rng_mode == "matrix"
        assert counter.rng_mode == "counter"
        # Same seed, different sources: outcomes must not be identical.
        assert matrix.tally.summary() != counter.tally.summary()

    def test_rng_mode_validated(self, warning_task, population):
        assert RNG_MODES == ("matrix", "counter")
        with pytest.raises(SimulationError):
            SimulationConfig(rng_mode="quantum")
        with pytest.raises(SimulationError):
            _simulator().simulate_task(
                warning_task, population, n_receivers=10, rng_mode="quantum"
            )

    def test_counter_mode_independent_of_batch_size_chunking(self, warning_task, population):
        # Matrix mode ties draws to chunk geometry; counter mode does too
        # (chunk is a stream coordinate) — pin that contract explicitly.
        small = _simulator(rng_mode="counter", batch_size=200).simulate_task(
            warning_task, population, n_receivers=600
        )
        whole = _simulator(rng_mode="counter", batch_size=600).simulate_task(
            warning_task, population, n_receivers=600
        )
        assert small.chunks == 3
        assert whole.chunks == 1
        assert small.tally.summary() != whole.tally.summary()


class TestChunkWorkerDeterminism:
    """In-call multicore: partial merges bit-identical to the serial fold."""

    @pytest.mark.parametrize("rng_mode", RNG_MODES)
    def test_worker_counts_are_bit_identical(self, warning_task, population, rng_mode):
        simulator = _simulator(rng_mode=rng_mode)
        serial = simulator.simulate_task(
            warning_task, population, n_receivers=2_000, rounds=2, recovery_rate=0.3
        )
        for workers in (1, 2, 4):
            parallel = simulator.simulate_task(
                warning_task, population, n_receivers=2_000, rounds=2,
                recovery_rate=0.3, chunk_workers=workers,
            )
            assert parallel.tally.summary() == serial.tally.summary()
            assert [tally.summary() for tally in parallel.round_tallies] == [
                tally.summary() for tally in serial.round_tallies
            ]
            assert parallel.funnel.entered == serial.funnel.entered
            assert parallel.funnel.passed == serial.funnel.passed
            assert list(parallel.records) == list(serial.records)
            assert parallel.chunk_workers == workers
            assert parallel.chunks == serial.chunks == 5

    def test_chunk_workers_validated(self):
        with pytest.raises(SimulationError):
            SimulationConfig(chunk_workers=0)

    def test_perf_provenance_recorded(self, warning_task, population):
        result = _simulator().simulate_task(warning_task, population, n_receivers=900)
        assert result.chunks == 3
        assert result.elapsed_seconds > 0.0
        assert result.throughput() == result.receiver_rounds / result.elapsed_seconds


class TestLazyRecords:
    """Deferred record materialization must be observationally a list."""

    def _result(self, warning_task, population, **kwargs):
        return _simulator().simulate_task(
            warning_task, population, n_receivers=300, **kwargs
        )

    def test_engine_returns_lazy_records_for_batch_mode(
        self, warning_task, population
    ):
        result = self._result(warning_task, population)
        assert isinstance(result.records, batch_module.LazyRecords)
        assert len(result.records) == 300

    def test_lazy_equals_eager(self, warning_task, population):
        lazy = self._result(warning_task, population).records
        eager = list(self._result(warning_task, population).records)
        assert lazy == eager
        assert eager == list(lazy)

    def test_pickle_produces_plain_list(self, warning_task, population):
        records = self._result(warning_task, population).records
        revived = pickle.loads(pickle.dumps(records))
        assert type(revived) is list
        assert revived == list(records)

    def test_absorb_chains_unmaterialized_lists(self, warning_task, population):
        first = self._result(warning_task, population).records
        second = self._result(warning_task, population, seed=SEED + 1).records
        merged = batch_module.LazyRecords()
        merged.absorb(first)
        merged.absorb(second)
        assert len(merged) == 600

    def test_absorb_rejects_materialized_lists(self, warning_task, population):
        first = self._result(warning_task, population).records
        len(first)  # forces materialization
        merged = batch_module.LazyRecords()
        with pytest.raises(SimulationError):
            merged.absorb(first)


class TestGeneratorCaching:
    """One bit generator per cell; the state-template cache is bit-exact."""

    def test_bit_generator_constructed_once_per_cell(self):
        draws = PhiloxDraws(SEED, chunk=1, round_index=0)
        assert draws.bit_generator_constructions == 0
        draws.uniforms(0, 500)
        out = np.empty(300)
        draws.fill_uniforms(SPOOF_STREAM, out)
        for index in (0, 7, 299):
            draws.uniform_at(DECISION_STREAM_BASE, index)
        draws.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 250)
        draws.clipped_normal_at(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 13, 250)
        # Every stream, fill, and point query above shared ONE generator.
        assert draws.bit_generator_constructions == 1

    def test_sibling_cells_do_not_share_constructions(self):
        base = PhiloxDraws(SEED, chunk=0, round_index=0)
        base.uniforms(0, 10)
        successor = base.for_round(1)
        successor.uniforms(0, 10)
        assert base.bit_generator_constructions == 1
        assert successor.bit_generator_constructions == 1

    def test_cached_cell_equals_fresh_cell(self):
        """State-template reuse must be invisible: a long-lived cell that
        has served many interleaved queries answers every query exactly
        like a brand-new cell constructed for that one query."""
        warm = PhiloxDraws(SEED, chunk=2, round_index=1)
        streams = (0, SPOOF_STREAM, TRAINED_STREAM, DECISION_STREAM_BASE + 3)
        # Warm the cache with interleaved bulk and point traffic.
        for stream in streams:
            warm.uniforms(stream, 400)
            warm.uniform_at(stream, 57)
        warm.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 200)
        for stream in streams:
            fresh_bulk = PhiloxDraws(SEED, chunk=2, round_index=1)
            np.testing.assert_array_equal(
                warm.uniforms(stream, 400), fresh_bulk.uniforms(stream, 400)
            )
            for index in (0, 1, 123, 399):
                fresh_point = PhiloxDraws(SEED, chunk=2, round_index=1)
                assert warm.uniform_at(stream, index) == fresh_point.uniform_at(
                    stream, index
                )
        fresh_normals = PhiloxDraws(SEED, chunk=2, round_index=1)
        np.testing.assert_array_equal(
            warm.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 200),
            fresh_normals.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 200),
        )


class TestDefaultRngMode:
    """PR 9 flips the engine default to the counter source."""

    def test_config_defaults_to_counter(self):
        assert SimulationConfig().rng_mode == "counter"

    def test_matrix_mode_still_selectable(self, warning_task, population):
        result = _simulator(rng_mode="matrix").simulate_task(
            warning_task, population, n_receivers=200
        )
        assert result.rng_mode == "matrix"


class TestZeroCopyDispatch:
    """Counter-mode parallel workers must not ship record payloads."""

    def test_workers_receive_no_record_buffers(
        self, warning_task, population, monkeypatch
    ):
        captured = {}
        real = engine_module._run_chunks_parallel

        def spy(specs, workers):
            captured["keep_records"] = [spec.keep_records for spec in specs]
            return real(specs, workers)

        monkeypatch.setattr(engine_module, "_run_chunks_parallel", spy)
        result = _simulator(rng_mode="counter").simulate_task(
            warning_task, population, n_receivers=1_200, chunk_workers=2
        )
        # Workers got coordinates only; records regenerate lazily at home.
        assert captured["keep_records"] == [False, False, False]
        assert isinstance(result.records, batch_module.LazyRecords)
        serial = _simulator(rng_mode="counter").simulate_task(
            warning_task, population, n_receivers=1_200
        )
        assert list(result.records) == list(serial.records)

    def test_matrix_mode_parallel_keeps_worker_records(
        self, warning_task, population, monkeypatch
    ):
        captured = {}
        real = engine_module._run_chunks_parallel

        def spy(specs, workers):
            captured["keep_records"] = [spec.keep_records for spec in specs]
            return real(specs, workers)

        monkeypatch.setattr(engine_module, "_run_chunks_parallel", spy)
        _simulator(rng_mode="matrix").simulate_task(
            warning_task, population, n_receivers=1_200, chunk_workers=2
        )
        # Matrix draws are sequential per chunk; records cannot be
        # regenerated from coordinates without redoing the whole chunk
        # draw, so they still ride back from the workers.
        assert captured["keep_records"] == [True, True, True]


class TestBufferReuse:
    """Opt-in draw-buffer recycling: same values, shared backing memory."""

    def test_reused_block_shares_memory_and_values(self):
        fresh = PhiloxDraws(SEED, chunk=1).clipped_normal_block(
            [trait_streams(0), trait_streams(1)],
            [0.4, 0.6], [0.1, 0.2], [0.0, 0.0], [1.0, 1.0], 501,
        )
        first = PhiloxDraws(SEED, chunk=1).clipped_normal_block(
            [trait_streams(0), trait_streams(1)],
            [0.4, 0.6], [0.1, 0.2], [0.0, 0.0], [1.0, 1.0], 501,
            reuse_block=True,
        )
        np.testing.assert_array_equal(first, fresh)
        first_base = first.base
        second = PhiloxDraws(SEED, chunk=1).clipped_normal_block(
            [trait_streams(0), trait_streams(1)],
            [0.4, 0.6], [0.1, 0.2], [0.0, 0.0], [1.0, 1.0], 501,
            reuse_block=True,
        )
        assert second.base is first_base
        np.testing.assert_array_equal(second, fresh)

    def test_fresh_blocks_stay_distinct_by_default(self):
        cell = PhiloxDraws(SEED, chunk=1)
        first = cell.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 400)
        second = cell.clipped_normals(NOISE_STREAMS, 0.0, 0.1, -0.2, 0.2, 400)
        assert first.base is not second.base

    def test_record_dropping_runs_stay_deterministic(self, warning_task, population):
        # Above the record limit the engine recycles draw buffers chunk
        # to chunk; two full runs must still agree to the last bit.
        simulator = _simulator(rng_mode="counter", record_limit=100)
        first = simulator.simulate_task(warning_task, population, n_receivers=N)
        second = simulator.simulate_task(warning_task, population, n_receivers=N)
        assert not list(first.records)
        assert first.tally == second.tally
        assert first.protection_rate() == second.protection_rate()

    def test_kept_records_never_share_reused_buffers(self, warning_task, population):
        # Below the record limit reuse must stay off: each chunk's
        # records own their values even after later chunks draw.
        simulator = _simulator(rng_mode="counter")
        result = simulator.simulate_task(warning_task, population, n_receivers=N)
        records = list(result.records)
        assert len(records) == N
        again = list(
            _simulator(rng_mode="counter")
            .simulate_task(warning_task, population, n_receivers=N)
            .records
        )
        assert records == again
