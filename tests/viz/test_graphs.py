"""Tests for graph construction and export."""

import networkx as nx
import pytest

from repro.viz.graphs import assign_layers, chip_graph, framework_graph, graph_statistics, to_dot


class TestGraphConstruction:
    def test_framework_graph_matches_component_groups(self):
        graph = framework_graph()
        assert graph.number_of_nodes() == 11
        assert graph.number_of_edges() >= 14

    def test_chip_graph_has_ten_nodes(self):
        assert chip_graph().number_of_nodes() == 10

    def test_statistics_keys(self):
        stats = graph_statistics(framework_graph())
        assert set(stats) == {"nodes", "edges", "receiver_nodes", "is_dag_without_feedback"}
        assert stats["is_dag_without_feedback"] == 1.0

    def test_chip_statistics_acyclic_without_feedback(self):
        stats = graph_statistics(chip_graph())
        assert stats["is_dag_without_feedback"] == 1.0
        assert stats["receiver_nodes"] == 5.0


class TestLayersAndDot:
    def test_layers_put_communication_before_behavior(self):
        layers = assign_layers(framework_graph())
        assert layers["communication"] < layers["behavior"]

    def test_layers_ignore_feedback_edges(self):
        layers = assign_layers(chip_graph())
        assert layers["source"] == 0
        assert layers["behavior"] > layers["attention_switch"]

    def test_every_node_gets_a_layer(self):
        graph = framework_graph()
        layers = assign_layers(graph)
        assert set(layers) == set(graph.nodes)

    def test_dot_export_contains_nodes_and_edges(self):
        dot = to_dot(framework_graph())
        assert dot.startswith("digraph")
        assert '"communication" -> "communication_delivery"' in dot
        assert "rankdir=LR" in dot

    def test_dot_feedback_edges_dashed(self):
        dot = to_dot(chip_graph())
        assert "style=dashed" in dot
