"""Tests for the ASCII figure renderings."""

import pytest

from repro.viz.diagrams import render_figure_1, render_figure_2, render_figure_3


class TestFigure1:
    def test_contains_major_blocks(self):
        figure = render_figure_1()
        for block in ("COMMUNICATION", "HUMAN RECEIVER", "BEHAVIOR", "COMMUNICATION IMPEDIMENTS"):
            assert block in figure

    def test_lists_all_receiver_components(self):
        figure = render_figure_1()
        for component in (
            "Attention switch",
            "Comprehension",
            "Knowledge transfer",
            "Capabilities",
            "Motivation",
        ):
            assert component in figure


class TestFigure2:
    def test_lists_four_steps_in_order(self):
        figure = render_figure_2()
        positions = [figure.index(step) for step in (
            "1. Task identification",
            "2. Task automation",
            "3. Failure identification",
            "4. Failure mitigation",
        )]
        assert positions == sorted(positions)

    def test_mentions_iteration(self):
        assert "iterate" in render_figure_2()


class TestFigure3:
    def test_contains_chip_elements(self):
        figure = render_figure_3()
        for element in ("SOURCE", "CHANNEL", "RECEIVER", "BEHAVIOR"):
            assert element in figure
        assert "attention switch" in figure
        assert "motivation" in figure

    def test_figures_are_multiline(self):
        for figure in (render_figure_1(), render_figure_2(), render_figure_3()):
            assert len(figure.splitlines()) > 10
