"""Tests for the GEMS error taxonomy and classifier."""

import pytest

from repro.core.exceptions import ModelError
from repro.gems.errors import (
    ErrorObservation,
    ErrorType,
    GEMSError,
    PerformanceLevel,
    classify_error,
    design_countermeasures,
)


class TestTaxonomy:
    def test_three_error_types(self):
        assert len(list(ErrorType)) == 3

    def test_mistake_is_planning_error(self):
        assert ErrorType.MISTAKE.is_planning_error
        assert not ErrorType.LAPSE.is_planning_error
        assert not ErrorType.SLIP.is_planning_error

    def test_performance_levels_for_error_types(self):
        assert PerformanceLevel.SKILL_BASED in PerformanceLevel.typical_for(ErrorType.SLIP)
        assert PerformanceLevel.KNOWLEDGE_BASED in PerformanceLevel.typical_for(ErrorType.MISTAKE)
        assert PerformanceLevel.SKILL_BASED not in PerformanceLevel.typical_for(ErrorType.MISTAKE)

    def test_gems_error_rejects_inconsistent_level(self):
        with pytest.raises(ModelError):
            GEMSError(ErrorType.SLIP, PerformanceLevel.KNOWLEDGE_BASED)
        GEMSError(ErrorType.SLIP, PerformanceLevel.SKILL_BASED)


class TestClassifier:
    def test_bad_plan_is_mistake(self):
        observation = ErrorObservation(
            plan_would_achieve_goal=False,
            narrative="opened attachment because it came from a friend",
        )
        error = classify_error(observation)
        assert error.error_type is ErrorType.MISTAKE
        assert error.performance_level is PerformanceLevel.RULE_BASED

    def test_knowledge_gap_makes_knowledge_based_mistake(self):
        observation = ErrorObservation(plan_would_achieve_goal=False, knowledge_gap=True)
        assert classify_error(observation).performance_level is PerformanceLevel.KNOWLEDGE_BASED

    def test_omitted_step_is_lapse(self):
        observation = ErrorObservation(plan_would_achieve_goal=True, action_omitted=True)
        assert classify_error(observation).error_type is ErrorType.LAPSE

    def test_wrong_button_is_slip(self):
        observation = ErrorObservation(
            plan_would_achieve_goal=True, action_performed_incorrectly=True
        )
        assert classify_error(observation).error_type is ErrorType.SLIP

    def test_bad_plan_dominates_execution_problems(self):
        observation = ErrorObservation(
            plan_would_achieve_goal=False,
            action_omitted=True,
            action_performed_incorrectly=True,
        )
        assert classify_error(observation).error_type is ErrorType.MISTAKE

    def test_no_error_raises(self):
        with pytest.raises(ModelError):
            classify_error(ErrorObservation(plan_would_achieve_goal=True))

    def test_narrative_preserved(self):
        observation = ErrorObservation(
            plan_would_achieve_goal=True, action_omitted=True, narrative="forgot to remove card"
        )
        assert classify_error(observation).narrative == "forgot to remove card"


class TestCountermeasures:
    def test_mistake_countermeasures_mention_instructions(self):
        guidance = " ".join(design_countermeasures(ErrorType.MISTAKE)).lower()
        assert "instruction" in guidance or "mental model" in guidance

    def test_lapse_countermeasures_mention_steps(self):
        guidance = " ".join(design_countermeasures(ErrorType.LAPSE)).lower()
        assert "steps" in guidance

    def test_slip_countermeasures_mention_controls(self):
        guidance = " ".join(design_countermeasures(ErrorType.SLIP)).lower()
        assert "controls" in guidance

    def test_each_type_has_at_least_two_countermeasures(self):
        for error_type in ErrorType:
            assert len(design_countermeasures(error_type)) >= 2
