"""Tests for the gulf-of-execution / gulf-of-evaluation assessment."""

import pytest

from repro.core.behavior import TaskDesign
from repro.core.exceptions import ModelError
from repro.norman.gulfs import Gulf, assess_gulfs


class TestGulfAssessment:
    def test_smartcard_stock_design_has_wide_gulfs(self):
        stock = TaskDesign(controls_discoverable=0.4, feedback_quality=0.3)
        assessment = assess_gulfs(stock)
        assert assessment.execution_width > 0.4
        assert assessment.evaluation_width > 0.5
        assert not assessment.acceptable()
        assert assessment.recommendations

    def test_improved_design_narrows_gulfs(self):
        improved = TaskDesign(controls_discoverable=0.9, feedback_quality=0.9)
        assessment = assess_gulfs(improved)
        assert assessment.acceptable()
        assert not assessment.recommendations

    def test_instructions_narrow_execution_gulf_only(self):
        design = TaskDesign(controls_discoverable=0.4, feedback_quality=0.4)
        without = assess_gulfs(design, instructions_included=False)
        with_instructions = assess_gulfs(design, instructions_included=True)
        assert with_instructions.execution_width < without.execution_width
        assert with_instructions.evaluation_width == pytest.approx(without.evaluation_width)

    def test_wider_gulf_identification(self):
        execution_heavy = assess_gulfs(TaskDesign(controls_discoverable=0.1, feedback_quality=0.9))
        evaluation_heavy = assess_gulfs(TaskDesign(controls_discoverable=0.9, feedback_quality=0.1))
        assert execution_heavy.wider_gulf is Gulf.EXECUTION
        assert evaluation_heavy.wider_gulf is Gulf.EVALUATION

    def test_width_lookup_by_gulf(self):
        assessment = assess_gulfs(TaskDesign(controls_discoverable=0.7, feedback_quality=0.5))
        assert assessment.width(Gulf.EXECUTION) == pytest.approx(0.3)
        assert assessment.width(Gulf.EVALUATION) == pytest.approx(0.5)

    def test_multi_step_without_guidance_adds_recommendation(self):
        design = TaskDesign(steps=6, controls_discoverable=0.9, feedback_quality=0.9)
        assessment = assess_gulfs(design)
        assert any("multi-step" in rec.lower() or "sequence" in rec.lower()
                   for rec in assessment.recommendations)

    def test_acceptable_threshold_validated(self):
        assessment = assess_gulfs(TaskDesign())
        with pytest.raises(ModelError):
            assessment.acceptable(threshold=1.2)

    def test_gulf_descriptions(self):
        assert "intention" in Gulf.EXECUTION.description.lower()
        assert "state" in Gulf.EVALUATION.description.lower()
