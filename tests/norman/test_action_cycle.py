"""Tests for Norman's action cycle encoding."""

import pytest

from repro.core.exceptions import ModelError
from repro.norman.action_cycle import ActionCycle, ActionStage, locate_breakdown


class TestActionCycle:
    def test_seven_stages(self):
        assert len(ActionCycle.stages()) == 7

    def test_execution_and_evaluation_sides(self):
        assert ActionStage.SPECIFY_ACTION.side == "execution"
        assert ActionStage.EXECUTE_ACTION.side == "execution"
        assert ActionStage.INTERPRET_STATE.side == "evaluation"
        assert ActionStage.FORM_GOAL.side == "goal"

    def test_execution_stages_subset(self):
        execution = ActionCycle.execution_stages()
        assert ActionStage.FORM_INTENTION in execution
        assert ActionStage.PERCEIVE_STATE not in execution

    def test_checklist_has_one_question_per_stage(self):
        assert len(ActionCycle.checklist()) == 7
        assert all(question.endswith("?") for question in ActionCycle.checklist())

    def test_stage_indices_follow_order(self):
        indices = [stage.index for stage in ActionCycle.stages()]
        assert indices == list(range(7))

    def test_descriptions_exist(self):
        for stage in ActionStage:
            assert stage.description


class TestBreakdownLocation:
    def test_antivirus_menu_example_is_execution_gulf(self):
        breakdown = locate_breakdown(
            knew_goal=True,
            knew_which_action=False,
            could_perform_action=True,
            could_perceive_result=True,
            could_interpret_result=True,
            narrative="could not find the update menu item",
        )
        assert breakdown.stage is ActionStage.SPECIFY_ACTION
        assert breakdown.gulf == "execution"

    def test_file_permissions_example_is_evaluation_gulf(self):
        breakdown = locate_breakdown(
            knew_goal=True,
            knew_which_action=True,
            could_perform_action=True,
            could_perceive_result=True,
            could_interpret_result=False,
            narrative="could not tell the effective permissions",
        )
        assert breakdown.gulf == "evaluation"
        assert breakdown.stage is ActionStage.INTERPRET_STATE

    def test_missing_goal_is_not_a_gulf(self):
        breakdown = locate_breakdown(
            knew_goal=False,
            knew_which_action=True,
            could_perform_action=True,
            could_perceive_result=True,
            could_interpret_result=True,
        )
        assert breakdown.stage is ActionStage.FORM_GOAL
        assert breakdown.gulf is None

    def test_first_failure_wins(self):
        breakdown = locate_breakdown(
            knew_goal=True,
            knew_which_action=False,
            could_perform_action=False,
            could_perceive_result=False,
            could_interpret_result=False,
        )
        assert breakdown.stage is ActionStage.SPECIFY_ACTION

    def test_no_breakdown_raises(self):
        with pytest.raises(ModelError):
            locate_breakdown(True, True, True, True, True)
