"""Integration tests: the two case studies end to end.

These tests exercise the full stack — system model → framework analysis →
human threat identification and mitigation process → simulation — and check
the qualitative conclusions the paper draws in Section 3.
"""

import pytest

from repro.core import HumanInTheLoopFramework
from repro.core.components import Component
from repro.core.process import AutomationDecision, HumanThreatProcess
from repro.mitigations import catalog_for, recommend_for_system
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.systems import antiphishing, passwords


class TestAntiphishingCaseStudy:
    @pytest.fixture(scope="class")
    def framework(self):
        return HumanInTheLoopFramework(mitigation_catalog=catalog_for("antiphishing"))

    def test_process_identifies_all_three_warning_tasks(self, framework):
        result = framework.run_process(antiphishing.build_system(), max_passes=1)
        assert len(result.final_pass.identified_tasks) == 3

    def test_automation_step_keeps_human_with_override(self):
        process = HumanThreatProcess(antiphishing.build_system())
        process_pass = process.run_pass()
        # Browser vendors insist on the override, so automation is partial.
        decisions = {
            outcome.decision for outcome in process_pass.automation_outcomes.values()
        }
        assert AutomationDecision.PARTIALLY_AUTOMATE in decisions or (
            AutomationDecision.AUTOMATE in decisions
        )

    def test_passive_warning_is_the_weakest_task(self, framework):
        analysis = framework.analyze_system(antiphishing.build_system())
        weakest = analysis.weakest_task()
        assert "ie_passive" in weakest

    def test_mitigation_for_passive_task_includes_activation_or_blocking(self):
        recommendations = recommend_for_system(
            antiphishing.build_system(), domain="antiphishing"
        )
        passive_task = antiphishing.task_for(antiphishing.WarningVariant.IE_PASSIVE).name
        top = [m.name for m in recommendations.tasks[passive_task].mitigation_plan.top(5)]
        assert any(
            name in top
            for name in (
                "replace-passive-with-active-warning",
                "make-communication-active",
                "block-without-override",
            )
        )

    def test_simulation_reproduces_active_vs_passive_gap(self):
        simulator = HumanLoopSimulator(
            SimulationConfig(n_receivers=500, seed=1, calibration=antiphishing.calibration())
        )
        population = antiphishing.population()
        firefox = simulator.simulate_task(
            antiphishing.task_for(antiphishing.WarningVariant.FIREFOX), population
        )
        passive = simulator.simulate_task(
            antiphishing.task_for(antiphishing.WarningVariant.IE_PASSIVE), population
        )
        assert firefox.protection_rate() > 2 * passive.protection_rate()


class TestPasswordCaseStudy:
    @pytest.fixture(scope="class")
    def framework(self):
        return HumanInTheLoopFramework(mitigation_catalog=catalog_for("passwords"))

    def test_process_identifies_three_tasks(self, framework):
        result = framework.run_process(passwords.build_system(), max_passes=1)
        assert len(result.final_pass.identified_tasks) == 3

    def test_recall_task_is_the_weakest(self, framework):
        analysis = framework.analyze_system(passwords.build_system())
        assert "recall-passwords" in analysis.weakest_task()

    def test_capability_failure_identified_for_recall(self, framework):
        analysis = framework.analyze_system(passwords.build_system())
        recall_name = passwords.recall_task(passwords.baseline_policy()).name
        recall_analysis = analysis.analysis_for(recall_name)
        assert recall_analysis.failures.by_component(Component.CAPABILITIES)

    def test_mitigation_ranking_prefers_memory_offloading_over_training(self, framework):
        recommendations = recommend_for_system(passwords.build_system(), domain="passwords")
        recall_name = passwords.recall_task(passwords.baseline_policy()).name
        plan = recommendations.tasks[recall_name].mitigation_plan
        names = [m.name for m in plan.ranked_mitigations()]
        memory_offloading_rank = min(
            names.index(name)
            for name in ("single-sign-on", "password-vault", "automate-or-default")
            if name in names
        )
        training_rank = names.index("explain-password-policy-rationale") if (
            "explain-password-policy-rationale" in names
        ) else len(names)
        assert memory_offloading_rank < training_rank

    def test_simulated_policy_sweep_orders_variants(self):
        rates = {}
        for name, policy in passwords.policy_variants().items():
            simulator = HumanLoopSimulator(
                SimulationConfig(n_receivers=300, seed=9, calibration=passwords.calibration(policy))
            )
            result = simulator.simulate_task(
                passwords.recall_task(policy), passwords.population(policy)
            )
            rates[name] = result.protection_rate()
        assert rates["single-sign-on"] > rates["baseline"]
        assert rates["password-vault"] > rates["baseline"]
        assert rates["no-expiry"] >= rates["baseline"] - 0.02

    def test_process_iteration_reduces_residual_risk(self):
        process = HumanThreatProcess(
            passwords.build_system(),
            mitigation_catalog=catalog_for("passwords"),
            acceptable_risk=0.0,
        )
        result = process.run(max_passes=3)
        trajectory = result.risk_trajectory()
        assert trajectory[-1] <= trajectory[0]
