"""Integration smoke tests: every example script exposes a runnable main().

Each example is imported as a module (not executed as a script), so the
suite checks both halves of the contract: the file imports cleanly with
no side effects, and its ``main()`` runs the full example in-process.
This keeps the examples from silently rotting as the API evolves, without
the overhead of one subprocess per script.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _import_example(script: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert "sweep_quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 4


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_imports_without_side_effects(script, capsys):
    _import_example(script)
    assert capsys.readouterr().out == "", "importing an example must not print"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_main_runs(script, capsys):
    module = _import_example(script)
    assert hasattr(module, "main"), f"{script.name} must expose main()"
    module.main()
    assert capsys.readouterr().out.strip(), "example produced no output"
