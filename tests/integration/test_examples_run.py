"""Integration tests: every example script runs cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"
