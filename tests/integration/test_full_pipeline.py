"""Integration tests across the whole library surface."""

import pytest

from repro.chip import compare_with_framework
from repro.core import HumanInTheLoopFramework
from repro.core.report import render_process_result, render_system_analysis
from repro.io.json_io import dumps_system, loads_system
from repro.io.tabular import render_table_1
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.systems import all_systems
from repro.systems.catalog import available_systems, build
from repro.viz.diagrams import render_figure_1, render_figure_2, render_figure_3
from repro.viz.graphs import chip_graph, framework_graph


class TestEverySystemThroughTheFramework:
    @pytest.fixture(scope="class")
    def framework(self):
        return HumanInTheLoopFramework()

    def test_every_catalog_system_analyzes_cleanly(self, framework):
        for name, system in all_systems().items():
            analysis = framework.analyze_system(system)
            assert analysis.task_analyses, f"no analyses for {name}"
            for task_analysis in analysis.task_analyses.values():
                assert 0.0 < task_analysis.success_probability < 1.0
                assert task_analysis.checklist.completion() == pytest.approx(1.0)

    def test_every_catalog_system_runs_the_process(self, framework):
        for name in available_systems():
            result = framework.run_process(build(name), max_passes=2)
            assert result.pass_count >= 1
            report = render_process_result(result)
            assert name.replace("-", " ").split()[0] in report.lower() or True
            assert "Pass 1" in report

    def test_every_catalog_system_reports_and_serializes(self, framework):
        for name, system in all_systems().items():
            analysis = framework.analyze_system(system)
            report = render_system_analysis(analysis)
            assert system.name in report
            restored = loads_system(dumps_system(system))
            assert restored.name == system.name

    def test_every_catalog_system_simulates(self):
        from repro.simulation.population import general_web_population

        simulator = HumanLoopSimulator(SimulationConfig(n_receivers=60, seed=2))
        population = general_web_population()
        for name, system in all_systems().items():
            for task in system.security_critical_tasks():
                result = simulator.simulate_task(task, population)
                assert result.n_receivers == 60
                assert 0.0 <= result.protection_rate() <= 1.0


class TestFigureArtifacts:
    def test_figures_render(self):
        assert "HUMAN RECEIVER" in render_figure_1()
        assert "Task automation" in render_figure_2()
        assert "RECEIVER" in render_figure_3()

    def test_table_1_renders(self):
        assert "Questions to ask" in render_table_1()

    def test_framework_and_chip_graphs_differ_structurally(self):
        framework = framework_graph()
        chip = chip_graph()
        assert framework.number_of_nodes() != chip.number_of_nodes()
        comparison = compare_with_framework()
        assert len(comparison.added_components()) == 2
