"""Tests for the automation evaluation (Edwards-style guidelines)."""

import pytest

from repro.core.exceptions import AnalysisError
from repro.core.task import AutomationProfile, HumanSecurityTask
from repro.mitigations.automation import (
    AutomationGuideline,
    AutomationRecommendation,
    evaluate_automation,
)


def _task(profile: AutomationProfile) -> HumanSecurityTask:
    return HumanSecurityTask(name="task", desired_action="act", automation=profile)


class TestEvaluation:
    def test_infeasible_automation_keeps_human(self):
        evaluation = evaluate_automation(
            _task(AutomationProfile(can_fully_automate=False)), human_reliability=0.2
        )
        assert evaluation.recommendation is AutomationRecommendation.KEEP_HUMAN_WITH_SUPPORT

    def test_accurate_cheap_automation_recommended(self):
        profile = AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.95,
            automation_false_positive_rate=0.01,
            human_information_advantage=0.1,
            automation_cost=0.2,
        )
        evaluation = evaluate_automation(_task(profile), human_reliability=0.4)
        assert evaluation.recommendation is AutomationRecommendation.AUTOMATE_FULLY
        assert evaluation.favorable_count() >= 4

    def test_vendor_constraint_downgrades_to_override(self):
        profile = AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.95,
            automation_false_positive_rate=0.01,
            human_information_advantage=0.1,
            automation_cost=0.2,
            vendor_constraints="must offer an override",
        )
        evaluation = evaluate_automation(_task(profile), human_reliability=0.4)
        assert evaluation.recommendation is AutomationRecommendation.AUTOMATE_WITH_OVERRIDE

    def test_human_context_keeps_human(self):
        profile = AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.6,
            human_information_advantage=0.9,
            automation_false_positive_rate=0.3,
            automation_cost=0.8,
        )
        evaluation = evaluate_automation(_task(profile), human_reliability=0.7)
        assert evaluation.recommendation is AutomationRecommendation.KEEP_HUMAN_WITH_SUPPORT

    def test_every_guideline_assessed(self):
        evaluation = evaluate_automation(_task(AutomationProfile()), human_reliability=0.5)
        assessed = {assessment.guideline for assessment in evaluation.assessments}
        assert assessed == set(AutomationGuideline)
        assert all(assessment.note for assessment in evaluation.assessments)

    def test_reliability_validated(self):
        with pytest.raises(AnalysisError):
            evaluate_automation(_task(AutomationProfile()), human_reliability=1.5)

    def test_guideline_questions_exist(self):
        for guideline in AutomationGuideline:
            assert guideline.question.endswith("?")
