"""Tests for the domain mitigation catalogs."""

import pytest

from repro.core.components import Component
from repro.core.mitigation import GENERIC_MITIGATIONS, MitigationStrategy
from repro.mitigations.catalog import (
    ANTIPHISHING_MITIGATIONS,
    DOMAIN_MITIGATIONS,
    INDICATOR_MITIGATIONS,
    PASSWORD_MITIGATIONS,
    catalog_for,
    full_catalog,
)


class TestDomainCatalogs:
    def test_password_catalog_includes_sso_and_vault(self):
        names = {mitigation.name for mitigation in PASSWORD_MITIGATIONS}
        assert "single-sign-on" in names
        assert "password-vault" in names

    def test_sso_addresses_capabilities(self):
        sso = next(m for m in PASSWORD_MITIGATIONS if m.name == "single-sign-on")
        assert Component.CAPABILITIES in sso.addresses_components
        assert sso.strategy is MitigationStrategy.AUTOMATE

    def test_antiphishing_catalog_includes_active_warning_replacement(self):
        names = {mitigation.name for mitigation in ANTIPHISHING_MITIGATIONS}
        assert "replace-passive-with-active-warning" in names
        assert "embedded-antiphishing-training" in names

    def test_indicator_catalog_addresses_interference(self):
        assert any(
            Component.INTERFERENCE in mitigation.addresses_components
            for mitigation in INDICATOR_MITIGATIONS
        )

    def test_catalog_for_known_domain_extends_generic(self):
        catalog = catalog_for("passwords")
        assert len(catalog) == len(GENERIC_MITIGATIONS) + len(PASSWORD_MITIGATIONS)

    def test_catalog_for_unknown_domain_is_generic_only(self):
        assert len(catalog_for("unknown")) == len(GENERIC_MITIGATIONS)

    def test_full_catalog_has_unique_names(self):
        names = [mitigation.name for mitigation in full_catalog()]
        assert len(names) == len(set(names))

    def test_domain_mapping_keys(self):
        assert set(DOMAIN_MITIGATIONS) == {"passwords", "antiphishing", "indicators"}

    def test_every_mitigation_documented(self):
        for mitigation in full_catalog():
            assert len(mitigation.description) > 20
            assert 0.0 <= mitigation.effectiveness <= 1.0
            assert 0.0 <= mitigation.cost <= 1.0
