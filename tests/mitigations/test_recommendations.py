"""Tests for end-to-end system recommendations."""

import pytest

from repro.mitigations.recommendations import recommend_for_system
from repro.systems import antiphishing, passwords


class TestRecommendForSystem:
    def test_password_system_recommends_sso_or_vault_for_recall(self):
        system = passwords.build_system()
        recommendations = recommend_for_system(system, domain="passwords")
        recall_name = passwords.recall_task(passwords.baseline_policy()).name
        recall = recommendations.recommendation_for(recall_name)
        top_names = [m.name for m in recall.mitigation_plan.top(3)]
        assert any(name in top_names for name in ("single-sign-on", "password-vault",
                                                  "automate-or-default"))

    def test_antiphishing_passive_task_recommends_active_warning(self):
        system = antiphishing.build_system()
        recommendations = recommend_for_system(system, domain="antiphishing")
        passive_name = antiphishing.task_for(antiphishing.WarningVariant.IE_PASSIVE).name
        passive = recommendations.recommendation_for(passive_name)
        top_names = [m.name for m in passive.mitigation_plan.top(4)]
        assert any(
            "active" in name or name == "block-without-override" for name in top_names
        )

    def test_every_critical_task_gets_a_recommendation(self):
        system = antiphishing.build_system()
        recommendations = recommend_for_system(system)
        assert set(recommendations.tasks) == {
            task.name for task in system.security_critical_tasks()
        }

    def test_ranked_tasks_by_risk_descending(self):
        system = passwords.build_system()
        recommendations = recommend_for_system(system, domain="passwords")
        ranked = recommendations.ranked_tasks_by_risk()
        risks = [
            recommendations.analysis.task_analyses[name].failures.total_risk()
            for name in ranked
        ]
        assert risks == sorted(risks, reverse=True)

    def test_summary_lines_cover_every_task(self):
        system = antiphishing.build_system()
        recommendations = recommend_for_system(system)
        lines = recommendations.summary_lines()
        assert len(lines) == len(recommendations.tasks)
        assert all("reliability" in line for line in lines)

    def test_explicit_catalog_overrides_domain(self):
        from repro.core.components import Component
        from repro.core.mitigation import Mitigation, MitigationStrategy

        only = Mitigation(
            name="the-only-mitigation",
            strategy=MitigationStrategy.SUPPORT,
            description="only option",
            addresses_components=tuple(Component),
        )
        recommendations = recommend_for_system(
            antiphishing.build_system(), domain="passwords", catalog=[only]
        )
        for task_recommendation in recommendations.tasks.values():
            names = [m.name for m in task_recommendation.mitigation_plan.ranked_mitigations()]
            assert names == ["the-only-mitigation"]
