"""Tests for the declarative experiment specifications."""

import pytest

from repro.experiments import (
    EXPERIMENT_PATHS,
    Experiment,
    ExperimentError,
    SweepSpec,
    VariantSpec,
)


class TestVariantSpec:
    def test_default_label_from_params(self):
        variant = VariantSpec("passwords", {"single_sign_on": True})
        assert variant.resolved_label() == "passwords[single_sign_on=True]"

    def test_explicit_label_wins(self):
        variant = VariantSpec("passwords", {"single_sign_on": True}, label="sso")
        assert variant.resolved_label() == "sso"

    def test_no_params_label_is_scenario_name(self):
        assert VariantSpec("passwords").resolved_label() == "passwords"


class TestSweepSpec:
    def test_expand_is_cartesian_product_in_order(self):
        sweep = SweepSpec(
            scenario="passwords",
            grid={"distinct_accounts": [4, 8], "single_sign_on": [False, True]},
        )
        assert sweep.size == 4
        labels = [variant.resolved_label() for variant in sweep.expand()]
        assert labels == [
            "distinct_accounts=4,single_sign_on=False",
            "distinct_accounts=4,single_sign_on=True",
            "distinct_accounts=8,single_sign_on=False",
            "distinct_accounts=8,single_sign_on=True",
        ]

    def test_base_applied_to_every_point(self):
        sweep = SweepSpec(
            scenario="passwords",
            grid={"distinct_accounts": [4, 8]},
            base={"password_vault": True},
        )
        for variant in sweep.expand():
            assert variant.params["password_vault"] is True

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(scenario="passwords", grid={})

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(scenario="passwords", grid={"distinct_accounts": []})

    def test_grid_base_overlap_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(
                scenario="passwords",
                grid={"single_sign_on": [False, True]},
                base={"single_sign_on": True},
            )

    def test_bad_parameter_values_fail_at_construction(self):
        from repro.core.exceptions import ModelError

        with pytest.raises(ModelError):
            SweepSpec(scenario="passwords", grid={"distinct_accounts": [4, -1]})
        with pytest.raises(ModelError):
            SweepSpec(scenario="passwords", grid={"not_a_parameter": [1]})


class TestExperiment:
    def _variants(self):
        return (
            VariantSpec("passwords", {}, label="a"),
            VariantSpec("passwords", {"single_sign_on": True}, label="b"),
        )

    def test_validation(self):
        with pytest.raises(ExperimentError):
            Experiment(name="", variants=self._variants())
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=())
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=self._variants(), n_receivers=0)
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=self._variants(), seed=-5)
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=self._variants(), mode="warp")
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=self._variants(), paths=("simulate", "guess"))
        with pytest.raises(ExperimentError):
            Experiment(name="x", variants=self._variants(), seed_strategy="chaos")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment(
                name="x",
                variants=(
                    VariantSpec("passwords", {}, label="same"),
                    VariantSpec("passwords", {"single_sign_on": True}, label="same"),
                ),
            )

    def test_paths_constant(self):
        assert set(EXPERIMENT_PATHS) == {"analyze", "simulate"}

    def test_shared_seed_strategy(self):
        experiment = Experiment(
            name="x", variants=self._variants(), seed=42, seed_strategy="shared"
        )
        assert experiment.variant_seed(0) == 42
        assert experiment.variant_seed(1) == 42

    def test_per_variant_seeds_distinct_and_deterministic(self):
        experiment = Experiment(name="x", variants=self._variants(), seed=42)
        seeds = [experiment.variant_seed(index) for index in range(2)]
        assert len(set(seeds)) == 2
        again = Experiment(name="y", variants=self._variants(), seed=42)
        assert [again.variant_seed(index) for index in range(2)] == seeds
        other = Experiment(name="z", variants=self._variants(), seed=43)
        assert other.variant_seed(0) != seeds[0]
