"""Funnel metrics and habituation-weight provenance through the
experiment and IO layers (ISSUE 4).

A result row must carry the per-stage funnel as flat metrics, record the
outcome-coupled weights it ran with, survive a JSON round-trip with both
intact, and reproduce the run exactly from the loaded provenance alone.
"""

import pytest

from repro.core.stages import Stage
from repro.experiments import Experiment, SweepSpec, VariantSpec, reproduce_row
from repro.io.experiments_io import (
    load_resultset,
    loads_resultset,
    dumps_resultset,
    save_resultset,
)

SEED = 20260726


def _experiment(**settings) -> Experiment:
    settings.setdefault("n_receivers", 300)
    settings.setdefault("seed", SEED)
    return Experiment(
        name="funnel-provenance",
        variants=(VariantSpec(scenario="antiphishing", params={"variant": "ie_passive"}),),
        **settings,
    )


class TestFunnelMetricsInRows:
    def test_rows_carry_funnel_metrics(self):
        row = _experiment().run().rows[0]
        attention = Stage.ATTENTION_SWITCH.value
        assert f"funnel:{attention}:survival_rate" in row.metrics
        assert f"funnel:{attention}:conditional_failure" in row.metrics
        assert "funnel:intention:survival_rate" in row.metrics
        assert "funnel:behavior:survival_rate" in row.metrics
        # Survival through the last checkpoint is the heed rate.
        assert row.metrics["funnel:behavior:survival_rate"] == pytest.approx(
            row.metrics["heed_rate"]
        )

    def test_trace_off_rows_have_no_funnel_metrics(self):
        row = _experiment(trace=False).run().rows[0]
        assert not any(name.startswith("funnel:") for name in row.metrics)

    def test_funnel_survival_is_monotone_in_rows(self):
        row = _experiment().run().rows[0]
        survival = [
            value
            for name, value in row.metrics.items()
            if name.startswith("funnel:") and name.endswith(":survival_rate")
        ]
        assert survival == sorted(survival, reverse=True)


class TestWeightProvenance:
    def test_experiment_level_weights_recorded(self):
        results = _experiment(rounds=3, dismiss_weight=2.0, heed_weight=0.5).run()
        row = results.rows[0]
        assert row.dismiss_weight == 2.0
        assert row.heed_weight == 0.5
        assert row.rounds == 3

    def test_single_shot_rows_record_unit_weights(self):
        row = _experiment().run().rows[0]
        assert row.dismiss_weight == 1.0
        assert row.heed_weight == 1.0

    def test_experiment_weights_cannot_shadow_bound_weights(self):
        from repro.experiments.results import ExperimentError

        with pytest.raises(ExperimentError):
            Experiment(
                name="clash",
                variants=(
                    VariantSpec(scenario="antiphishing", params={"dismiss_weight": 3.0}),
                ),
                dismiss_weight=1.5,
            )
        with pytest.raises(ExperimentError):
            Experiment(name="bad", variants=(VariantSpec(scenario="antiphishing"),),
                       heed_weight=-1.0)

    def test_json_round_trip_preserves_funnel_and_weights(self, tmp_path):
        results = _experiment(rounds=2, dismiss_weight=2.0, heed_weight=0.5).run()
        path = tmp_path / "funnel.json"
        save_resultset(results, str(path))
        loaded = load_resultset(str(path))
        original = results.rows[0]
        restored = loaded.rows[0]
        assert restored.dismiss_weight == 2.0
        assert restored.heed_weight == 0.5
        assert dict(restored.metrics) == dict(original.metrics)
        funnel_keys = [k for k in restored.metrics if k.startswith("funnel:")]
        assert funnel_keys

    def test_reproduce_row_from_loaded_provenance(self):
        results = _experiment(rounds=2, dismiss_weight=2.0, heed_weight=0.5).run()
        loaded = loads_resultset(dumps_resultset(results))
        rerun = reproduce_row(loaded.rows[0])
        assert rerun.dismiss_weight == 2.0
        assert rerun.heed_weight == 0.5
        assert {
            name: rerun.summary()[name] for name in rerun.summary()
        } == {name: loaded.rows[0].metrics[name] for name in rerun.summary()}
        assert rerun.funnel.summary() == {
            name: value
            for name, value in loaded.rows[0].metrics.items()
            if name.startswith("funnel:")
        }

    def test_weights_swept_on_grid_round_trip(self, tmp_path):
        sweep = SweepSpec(
            scenario="antiphishing",
            grid={"dismiss_weight": [0.5, 2.0]},
            base={"variant": "ie_passive", "rounds": 3},
        )
        results = Experiment.from_sweep(
            "weights-grid", sweep, n_receivers=200, seed=SEED
        ).run()
        path = tmp_path / "grid.json"
        save_resultset(results, str(path))
        loaded = load_resultset(str(path))
        weights = {row.variant: row.dismiss_weight for row in loaded.rows}
        assert weights == {"dismiss_weight=0.5": 0.5, "dismiss_weight=2.0": 2.0}
        for row in loaded.rows:
            assert row.params["dismiss_weight"] == row.dismiss_weight
