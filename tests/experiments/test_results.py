"""Tests for the unified ResultSet: selection, export, recommendations."""

import json

import pytest

from repro.experiments import (
    Experiment,
    ExperimentError,
    ResultRow,
    ResultSet,
    VariantSpec,
    reproduce_row,
)
from repro.io import (
    load_resultset,
    loads_resultset,
    resultset_from_dict,
    resultset_to_dict,
    save_resultset,
)


@pytest.fixture(scope="module")
def results() -> ResultSet:
    experiment = Experiment(
        name="results-test",
        variants=(
            VariantSpec("passwords", {}, label="baseline"),
            VariantSpec("passwords", {"single_sign_on": True}, label="sso"),
        ),
        n_receivers=150,
        seed=21,
        task="recall-passwords",
        paths=("analyze", "simulate"),
    )
    return experiment.run()


class TestSelection:
    def test_labels_in_variant_order(self, results):
        assert results.labels() == ["baseline", "sso"]

    def test_simulated_and_analytic_split(self, results):
        assert len(results.simulated()) == 2
        assert len(results.analytic()) == 2
        assert all(row.mode == "analytic" for row in results.analytic())

    def test_row_requires_mode_when_ambiguous(self, results):
        with pytest.raises(ExperimentError):
            results.row("baseline")
        assert results.row("baseline", mode="batch").simulated

    def test_unknown_variant(self, results):
        with pytest.raises(ExperimentError):
            results.row("nope", mode="batch")

    def test_unknown_metric(self, results):
        with pytest.raises(ExperimentError):
            results.row("baseline", mode="batch").metric("nope")

    def test_metric_by_variant_defaults_to_simulated(self, results):
        rates = results.metric_by_variant("protection_rate")
        assert set(rates) == {"baseline", "sso"}

    def test_best(self, results):
        best = results.best("protection_rate", mode="batch")
        assert best.variant == "sso"
        worst = results.best("protection_rate", mode="batch", minimize=True)
        assert worst.variant == "baseline"


class TestRendering:
    def test_table_carries_params_and_metrics(self, results):
        table = results.simulated().table()
        assert table[1]["single_sign_on"] is True
        assert "protection_rate" in table[0]

    def test_markdown_selected_metrics(self, results):
        markdown = results.simulated().to_markdown(["protection_rate"])
        assert markdown.splitlines()[0] == "| variant | mode | protection_rate |"
        assert "sso" in markdown


class TestExport:
    def test_json_roundtrip_preserves_provenance(self, results, tmp_path):
        path = str(tmp_path / "results.json")
        save_resultset(results, path)
        reloaded = load_resultset(path)
        assert resultset_to_dict(reloaded) == resultset_to_dict(results)
        row = reloaded.row("sso", mode="batch")
        assert row.seed == results.row("sso", mode="batch").seed
        assert row.params == {"single_sign_on": True}
        assert row.batch_size is not None

    def test_save_method_matches_io_function(self, results, tmp_path):
        path = str(tmp_path / "via_method.json")
        results.save(path)
        assert resultset_to_dict(load_resultset(path)) == resultset_to_dict(results)

    def test_reloaded_row_reproduces_simulation(self, results, tmp_path):
        payload = json.dumps(resultset_to_dict(results))
        reloaded = loads_resultset(payload)
        row = reloaded.row("baseline", mode="batch")
        rerun = reproduce_row(row)
        assert rerun.protection_rate() == row.metric("protection_rate")

    def test_reproduce_rejects_analytic_rows(self, results):
        with pytest.raises(ExperimentError):
            reproduce_row(results.row("baseline", mode="analytic"))

    def test_from_dict_rejects_garbage(self):
        from repro.core.exceptions import SerializationError

        with pytest.raises(SerializationError):
            resultset_from_dict({"rows": []})
        with pytest.raises(SerializationError):
            loads_resultset("{not json")


class TestRecommendations:
    def test_per_variant_mitigation_ranking(self, results):
        recommendations = results.recommendations(domain="passwords")
        assert set(recommendations) == {"baseline", "sso"}
        for label, recs in recommendations.items():
            assert recs.tasks, label
            assert recs.summary_lines()

    def test_labels_filter_restricts_ranking(self, results):
        recommendations = results.recommendations(domain="passwords", labels=["sso"])
        assert set(recommendations) == {"sso"}
        with pytest.raises(ExperimentError):
            results.recommendations(labels=["nope"])

    def test_ranking_reflects_variant(self, results):
        """The baseline's recall task should be riskier than the SSO one."""
        from repro.systems import get_scenario

        recommendations = results.recommendations(domain="passwords")
        success = {}
        for label in ("baseline", "sso"):
            params = dict(results.row(label, mode="batch").params)
            recall = get_scenario("passwords").bind(**params).task("recall-passwords").name
            success[label] = recommendations[label].tasks[recall].success_probability
        assert success["sso"] > success["baseline"]


class TestCanonicalDict:
    def test_wall_clock_metrics_are_pinned(self):
        # The cluster scheduler, the benchmarks, and every bit-identity
        # test compare result sets modulo exactly these two keys; adding
        # or renaming one silently weakens all of those comparisons, so
        # the tuple is pinned here.
        from repro.experiments import WALL_CLOCK_METRICS
        from repro.experiments import results as results_module
        from repro.experiments import runner as runner_module

        assert WALL_CLOCK_METRICS == (
            "perf:elapsed_seconds",
            "perf:receiver_rounds_per_second",
        )
        # One canonical object, re-exported everywhere it is consumed.
        assert results_module.WALL_CLOCK_METRICS is WALL_CLOCK_METRICS
        assert runner_module.WALL_CLOCK_METRICS is WALL_CLOCK_METRICS

    def test_canonical_dict_strips_exactly_the_wall_clock_metrics(self, results):
        from repro.experiments import WALL_CLOCK_METRICS

        full = resultset_to_dict(results)
        canonical = results.canonical_dict()
        for full_row, canonical_row in zip(full["rows"], canonical["rows"]):
            removed = set(full_row["metrics"]) - set(canonical_row["metrics"])
            assert removed == set(WALL_CLOCK_METRICS) & set(full_row["metrics"])
            kept = {
                name: value
                for name, value in full_row["metrics"].items()
                if name not in WALL_CLOCK_METRICS
            }
            assert canonical_row["metrics"] == kept
        # Nothing else differs: stripping metrics is the whole transform.
        stripped = resultset_to_dict(results)
        for row in stripped["rows"]:
            row["metrics"] = {
                name: value
                for name, value in row["metrics"].items()
                if name not in WALL_CLOCK_METRICS
            }
        assert canonical == stripped

    def test_canonical_dict_does_not_mutate_the_set(self, results):
        from repro.experiments import WALL_CLOCK_METRICS

        results.canonical_dict()
        # Simulated rows still carry their wall-clock telemetry: the
        # canonical view is a copy, not an in-place strip.
        assert any(
            name in row.metrics
            for row in results.simulated()
            for name in WALL_CLOCK_METRICS
        )


class TestLegacyRngModeCompat:
    """Rows serialized before the counter default flip replay matrix bits.

    PR 9 changed ``SimulationConfig``'s default ``rng_mode`` to
    ``"counter"``.  Archived result sets must not silently change meaning:
    a PR-8-era row that recorded ``rng_mode="matrix"`` — and an even older
    row from before the field existed at all — must both reproduce the
    exact bits they were drawn with.
    """

    EXPECTED_KWARGS = dict(seed=17, mode="batch", rng_mode="matrix")

    def _matrix_expected(self):
        from repro.systems import get_scenario

        return get_scenario("antiphishing").bind().simulate(
            120, **self.EXPECTED_KWARGS
        )

    def _era_payload(self, expected, **tweaks):
        payload = {
            "experiment": "archived",
            "scenario": "antiphishing",
            "variant": "baseline",
            "params": {},
            "mode": "batch",
            "metrics": {"protection_rate": expected.protection_rate()},
            "seed": 17,
            "n_receivers": 120,
            "batch_size": expected.batch_size,
            "task": expected.task_name,
            "population": expected.population_name,
            "calibration_label": expected.calibration_label,
            "rounds": expected.rounds,
            "recovery_rate": expected.recovery_rate,
            "dismiss_weight": expected.dismiss_weight,
            "heed_weight": expected.heed_weight,
            "rng_mode": "matrix",
            "chunk_workers": 1,
            "variant_index": 0,
        }
        payload.update(tweaks)
        return {key: value for key, value in payload.items() if value is not ...}

    def _assert_bit_identical(self, rerun, expected):
        from repro.io import simulation_result_to_dict

        rerun_payload = simulation_result_to_dict(rerun)
        expected_payload = simulation_result_to_dict(expected)
        rerun_payload["provenance"].pop("elapsed_seconds")
        expected_payload["provenance"].pop("elapsed_seconds")
        assert rerun_payload == expected_payload

    def test_pr8_row_with_recorded_matrix_mode_reproduces(self):
        from repro.io import result_row_from_dict

        expected = self._matrix_expected()
        row = result_row_from_dict(self._era_payload(expected))
        rerun = reproduce_row(row)
        assert rerun.rng_mode == "matrix"
        self._assert_bit_identical(rerun, expected)

    def test_pre_rng_mode_row_pins_matrix(self):
        """A row with NO rng_mode key predates the field: it was drawn by
        the matrix source (the only one at the time), and reproduce_row
        must pin that rather than inherit today's counter default."""
        from repro.io import result_row_from_dict

        expected = self._matrix_expected()
        payload = self._era_payload(
            expected, rng_mode=..., chunk_workers=..., variant_index=...
        )
        assert "rng_mode" not in payload
        row = result_row_from_dict(payload)
        assert row.rng_mode is None
        rerun = reproduce_row(row)
        assert rerun.rng_mode == "matrix"
        self._assert_bit_identical(rerun, expected)

    def test_counter_row_reproduces_counter_bits(self):
        from repro.io import result_row_from_dict
        from repro.systems import get_scenario

        expected = get_scenario("antiphishing").bind().simulate(
            120, seed=17, mode="batch", rng_mode="counter"
        )
        payload = self._era_payload(expected, rng_mode="counter")
        rerun = reproduce_row(result_row_from_dict(payload))
        assert rerun.rng_mode == "counter"
        self._assert_bit_identical(rerun, expected)
