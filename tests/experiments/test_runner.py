"""Tests for experiment execution: serial, parallel, and both paths."""

import pytest

from repro.experiments import (
    WALL_CLOCK_METRICS,
    Experiment,
    SweepSpec,
    VariantSpec,
    plan_runs,
    reproduce_row,
)
def _without_wall_clock(metrics):
    """Row metrics modulo wall-clock telemetry (never deterministic)."""
    return {
        name: value
        for name, value in metrics.items()
        if name not in WALL_CLOCK_METRICS
    }


def _canonical(resultset):
    # Bit-identity modulo wall-clock telemetry: one canonical filter.
    return resultset.canonical_dict()

VARIANTS = (
    VariantSpec("passwords", {}, label="baseline"),
    VariantSpec("passwords", {"single_sign_on": True}, label="sso"),
)


def _experiment(**overrides) -> Experiment:
    settings = dict(
        name="runner-test",
        variants=VARIANTS,
        n_receivers=200,
        seed=9,
        task="recall-passwords",
    )
    settings.update(overrides)
    return Experiment(**settings)


class TestPlanning:
    def test_one_run_per_variant_with_derived_seeds(self):
        experiment = _experiment()
        runs = plan_runs(experiment)
        assert [run.label for run in runs] == ["baseline", "sso"]
        assert [run.seed for run in runs] == [
            experiment.variant_seed(0),
            experiment.variant_seed(1),
        ]
        assert all(run.n_receivers == 200 for run in runs)


class TestExecution:
    def test_simulated_rows_carry_full_provenance(self):
        results = _experiment().run()
        assert len(results) == 2
        for row in results:
            assert row.experiment == "runner-test"
            assert row.scenario == "passwords"
            assert row.mode == "batch"
            assert row.seed is not None
            assert row.n_receivers == 200
            assert row.batch_size is not None
            assert row.task.startswith("recall-passwords")
            assert row.population == "organization"
            assert 0.0 <= row.metric("protection_rate") <= 1.0

    def test_variant_effect_visible(self):
        results = _experiment(seed_strategy="shared").run()
        assert results.row("sso").metric("protection_rate") > results.row(
            "baseline"
        ).metric("protection_rate")

    def test_both_paths_produce_two_rows_per_variant(self):
        results = _experiment(paths=("analyze", "simulate")).run()
        assert len(results) == 4
        analytic = results.row("baseline", mode="analytic")
        assert 0.0 <= analytic.metric("success_probability") <= 1.0
        assert analytic.seed is None
        assert results.row("baseline", mode="batch").seed is not None

    def test_reference_mode_matches_batch(self):
        batch = _experiment().run()
        reference = _experiment(mode="reference").run()
        for label in ("baseline", "sso"):
            assert _without_wall_clock(batch.row(label).metrics) == _without_wall_clock(
                reference.row(label).metrics
            )

    def test_parallel_identical_to_serial(self):
        from repro.experiments import ProcessBackend

        experiment = _experiment()
        serial = experiment.run()
        parallel = experiment.run(backend=ProcessBackend(max_workers=2))
        assert _canonical(parallel) == _canonical(serial)

    def test_rows_reproduce_exactly(self):
        results = _experiment().run()
        for row in results:
            rerun = reproduce_row(row)
            assert rerun.seed == row.seed
            assert rerun.mode == row.mode
            assert rerun.batch_size == row.batch_size
            assert {
                name: rerun.summary()[name] for name in rerun.summary()
            } == {name: row.metrics[name] for name in rerun.summary()}


class TestSweepThroughRunner:
    def test_grid_of_twelve_runs_without_hand_wiring(self):
        sweep = SweepSpec(
            scenario="passwords",
            grid={
                "distinct_accounts": [4, 8, 16],
                "expiry_days": [None, 90],
                "single_sign_on": [False, True],
            },
        )
        experiment = Experiment.from_sweep(
            "password-grid", sweep, n_receivers=100, seed=3, task="recall-passwords"
        )
        results = experiment.run()
        assert len(results) == 12
        # Per-variant streams: every row carries its own derived seed.
        seeds = [row.seed for row in results]
        assert len(set(seeds)) == 12
        # Params provenance matches the declared grid point.
        for row in results:
            assert set(row.params) == {
                "distinct_accounts",
                "expiry_days",
                "single_sign_on",
            }
