"""Tests for pluggable execution backends (ISSUE 5).

Shard determinism (sharded == serial bit for bit), merge semantics
(provenance validation, overlapping-shard clash rejection, canonical row
order), checkpoint/resume (no recomputation of finished rows), and the
deprecated ``max_workers=`` shim.
"""

import pytest

from repro.experiments import (
    Experiment,
    ExperimentError,
    ProcessBackend,
    ResultSet,
    SerialBackend,
    ShardBackend,
    SweepSpec,
    reproduce_row,
    resolve_backend,
    shard_plans,
)
from repro.experiments import ShardProgress
from repro.experiments import backends as backends_module
from repro.io import load_checkpoint, shard_filename

SEED = 20260726


def canonical(resultset):
    """Result-set dict modulo wall-clock telemetry.

    All bit-identity assertions route through the one canonical filter
    (:meth:`ResultSet.canonical_dict`, built on ``WALL_CLOCK_METRICS``)
    rather than re-deriving which metrics are machine-time.
    """
    return resultset.canonical_dict()


def _experiment(n_receivers=80, **overrides) -> Experiment:
    sweep = SweepSpec(
        scenario="passwords",
        grid={"distinct_accounts": [4, 8, 12], "single_sign_on": [False, True]},
    )
    settings = dict(n_receivers=n_receivers, seed=SEED, task="recall-passwords")
    settings.update(overrides)
    return Experiment.from_sweep("backend-test", sweep, **settings)


@pytest.fixture(scope="module")
def experiment() -> Experiment:
    return _experiment()


@pytest.fixture(scope="module")
def serial(experiment) -> ResultSet:
    return experiment.run(backend=SerialBackend())


class TestBackendSelection:
    def test_default_run_is_serial(self, experiment, serial):
        assert canonical(experiment.run()) == canonical(serial)

    def test_process_backend_identical_to_serial(self, experiment, serial):
        parallel = experiment.run(backend=ProcessBackend(max_workers=2))
        assert canonical(parallel) == canonical(serial)

    def test_max_workers_shim_warns_and_matches(self, experiment, serial):
        with pytest.warns(DeprecationWarning, match="max_workers"):
            shimmed = experiment.run(max_workers=2)
        assert canonical(shimmed) == canonical(serial)

    def test_positional_max_workers_caller_still_routed(self, experiment, serial):
        # Pre-backend code called run(N) with max_workers positional.
        with pytest.warns(DeprecationWarning, match="max_workers"):
            shimmed = experiment.run(2)
        assert canonical(shimmed) == canonical(serial)

    def test_backend_and_max_workers_is_a_contradiction(self, experiment):
        with pytest.raises(ExperimentError):
            experiment.run(backend=SerialBackend(), max_workers=2)

    def test_non_backend_rejected(self, experiment):
        with pytest.raises(ExperimentError):
            experiment.run(backend=object())

    def test_backend_class_instead_of_instance_rejected(self, experiment):
        # runtime_checkable protocols pass classes on attribute presence;
        # the typo must get the clear contract error, not a TypeError.
        with pytest.raises(ExperimentError, match="instance"):
            experiment.run(backend=SerialBackend)

    def test_resolve_defaults_to_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)

    def test_process_backend_validates_workers(self):
        with pytest.raises(ExperimentError):
            ProcessBackend(max_workers=0)


class TestShardPlans:
    def test_strided_disjoint_partition_covers_everything(self, experiment):
        plans = shard_plans(experiment, 4)
        indices = [[run.variant_index for run in plan.runs] for plan in plans]
        assert indices == [[0, 4], [1, 5], [2], [3]]
        flattened = sorted(index for shard in indices for index in shard)
        assert flattened == list(range(len(experiment.variants)))

    def test_shard_runs_keep_serial_seeds(self, experiment):
        for plan in shard_plans(experiment, 3):
            for run in plan.runs:
                assert run.seed == experiment.variant_seed(run.variant_index)

    def test_plan_header_carries_provenance(self, experiment):
        plan = shard_plans(experiment, 2)[1]
        header = plan.header()
        assert header["experiment"] == "backend-test"
        assert header["seed"] == SEED
        assert (header["shard_index"], header["shard_count"]) == (1, 2)
        assert header["n_variants"] == 6

    def test_invalid_shard_geometry_rejected(self, experiment):
        with pytest.raises(ExperimentError):
            shard_plans(experiment, 0)
        with pytest.raises(ExperimentError):
            ShardBackend(shard_index=2, shard_count=2)
        with pytest.raises(ExperimentError):
            ShardBackend(shard_index=-1, shard_count=2)


class TestShardDeterminism:
    def test_two_shards_merge_bit_identical_to_serial(self, experiment, serial):
        shards = [
            experiment.run(backend=ShardBackend(index, 2)) for index in range(2)
        ]
        merged = ResultSet.merge(*shards)
        assert canonical(merged) == canonical(serial)

    def test_uneven_shards_merge_bit_identical(self, experiment, serial):
        shards = [
            experiment.run(backend=ShardBackend(index, 4)) for index in range(4)
        ]
        assert [len(shard) for shard in shards] == [2, 2, 1, 1]
        merged = ResultSet.merge(*shards)
        assert canonical(merged) == canonical(serial)

    def test_both_paths_and_shared_seed_survive_sharding(self):
        experiment = _experiment(
            n_receivers=60, paths=("analyze", "simulate"), seed_strategy="shared"
        )
        serial = experiment.run()
        merged = ResultSet.merge(
            *(experiment.run(backend=ShardBackend(index, 3)) for index in range(3))
        )
        assert canonical(merged) == canonical(serial)

    def test_merged_rows_reproduce_exactly(self, experiment, serial):
        shards = [
            experiment.run(backend=ShardBackend(index, 2)) for index in range(2)
        ]
        merged = ResultSet.merge(*shards)
        row = merged.row("distinct_accounts=8,single_sign_on=True")
        rerun = reproduce_row(row)
        assert rerun.summary()["protection_rate"] == row.metric("protection_rate")
        # Identity-based lookup: the same row addressed by content hash.
        by_hash = merged.reproduce(row.variant_hash)
        assert by_hash.summary() == rerun.summary()


class TestMerge:
    def test_merge_requires_at_least_one_set(self):
        with pytest.raises(ExperimentError):
            ResultSet.merge()

    def test_merge_rejects_mixed_experiments(self, serial):
        other = ResultSet(experiment="someone-else", rows=list(serial.rows[:1]))
        with pytest.raises(ExperimentError, match="different experiments"):
            ResultSet.merge(serial, other)

    def test_overlapping_shards_clash(self, experiment):
        shard = experiment.run(backend=ShardBackend(0, 2))
        with pytest.raises(ExperimentError, match="overlapping"):
            ResultSet.merge(shard, shard)

    def test_partial_overlap_clashes_too(self, experiment):
        half = experiment.run(backend=ShardBackend(0, 2))
        third = experiment.run(backend=ShardBackend(0, 3))  # shares variant 0
        with pytest.raises(ExperimentError, match="overlapping"):
            ResultSet.merge(half, third)

    def test_merge_restores_declaration_order(self, experiment, serial):
        shards = [
            experiment.run(backend=ShardBackend(index, 2)) for index in range(2)
        ]
        # Feed the shards in reverse — canonical order must still win.
        merged = ResultSet.merge(*reversed(shards))
        assert [row.variant for row in merged] == [row.variant for row in serial]
        assert [row.variant_index for row in merged] == list(range(6))

    def test_single_set_roundtrip_is_identity(self, serial):
        merged = ResultSet.merge(serial)
        assert canonical(merged) == canonical(serial)

    def test_same_name_different_seed_rejected(self, experiment):
        # A re-run under a new seed keeps the name but must not merge with
        # the old shards, even though the row identities are disjoint.
        reseeded = _experiment(seed=SEED + 1)
        old = experiment.run(backend=ShardBackend(0, 2))
        new = reseeded.run(backend=ShardBackend(1, 2))
        with pytest.raises(ExperimentError, match="different experiment seeds"):
            ResultSet.merge(old, new)

    def test_mixed_n_receivers_rejected(self, experiment):
        small = _experiment(n_receivers=40)
        # Align the set-level seeds so the row-level check is what fires.
        a = experiment.run(backend=ShardBackend(0, 2))
        b = small.run(backend=ShardBackend(1, 2))
        with pytest.raises(ExperimentError, match="n_receivers"):
            ResultSet.merge(a, b)

    def test_legacy_rows_without_index_keep_relative_order(self):
        import dataclasses

        # Rows from pre-backend payloads carry no variant_index; merge must
        # preserve their original analytic/simulated interleaving.
        experiment = _experiment(n_receivers=40, paths=("analyze", "simulate"))
        legacy_rows = [
            dataclasses.replace(row, variant_index=None)
            for row in experiment.run().rows
        ]
        merged = ResultSet.merge(ResultSet("backend-test", legacy_rows))
        assert [row.row_key() for row in merged] == [
            row.row_key() for row in legacy_rows
        ]

    def test_merge_carries_the_experiment_seed(self, experiment, serial):
        merged = ResultSet.merge(
            *(experiment.run(backend=ShardBackend(index, 2)) for index in range(2))
        )
        assert merged.seed == SEED == serial.seed


def _counting_run_variant(monkeypatch):
    """Patch the backend layer's run_variant to count actual executions."""
    executed = []
    original = backends_module.run_variant

    def wrapper(run):
        executed.append(run.label)
        return original(run)

    monkeypatch.setattr(backends_module, "run_variant", wrapper)
    return executed


class TestCheckpointResume:
    def test_shard_checkpoints_and_skips_on_reinvocation(
        self, experiment, serial, tmp_path, monkeypatch
    ):
        backend = ShardBackend(0, 2, checkpoint_dir=str(tmp_path))
        first = experiment.run(backend=backend)
        assert (tmp_path / shard_filename(0, 2)).exists()

        executed = _counting_run_variant(monkeypatch)
        again = experiment.run(backend=backend)
        assert executed == [], "re-invocation must not recompute finished rows"
        assert canonical(again) == canonical(first)

    def test_resume_completes_missing_shard_without_recomputation(
        self, experiment, serial, tmp_path, monkeypatch
    ):
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        done = {run.label for run in shard_plans(experiment, 2)[0].runs}

        executed = _counting_run_variant(monkeypatch)
        resumed = experiment.resume(str(tmp_path))
        assert set(executed) == {
            run.label for run in shard_plans(experiment, 2)[1].runs
        }
        assert not (set(executed) & done)
        assert canonical(resumed) == canonical(serial)
        # The recomputed rows were persisted append-only alongside the shard.
        names = [path.name for path, _, _ in load_checkpoint(tmp_path)]
        assert "resume.jsonl" in names

    def test_resume_twice_recomputes_nothing(
        self, experiment, serial, tmp_path, monkeypatch
    ):
        experiment.run(backend=ShardBackend(1, 2, checkpoint_dir=str(tmp_path)))
        experiment.resume(str(tmp_path))

        executed = _counting_run_variant(monkeypatch)
        resumed = experiment.resume(str(tmp_path))
        assert executed == []
        assert canonical(resumed) == canonical(serial)

    def test_resume_rejects_foreign_checkpoints(self, experiment, tmp_path):
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        other = _experiment(seed=SEED + 1)
        with pytest.raises(ExperimentError, match="different experiment"):
            other.resume(str(tmp_path))

    def test_resume_needs_an_existing_directory(self, experiment, tmp_path):
        with pytest.raises(ExperimentError, match="does not exist"):
            experiment.resume(str(tmp_path / "missing"))

    def test_mixed_shard_geometries_deduplicate_via_the_directory(
        self, experiment, serial, tmp_path, monkeypatch
    ):
        # Two geometries whose shards overlap on variant 0: the second
        # invocation serves the overlap from the first one's file instead
        # of recomputing it, so the directory never holds a clash.
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        executed = _counting_run_variant(monkeypatch)
        experiment.run(backend=ShardBackend(0, 3, checkpoint_dir=str(tmp_path)))
        overlap = shard_plans(experiment, 2)[0].runs[0].label
        assert overlap not in executed
        resumed = experiment.resume(str(tmp_path))
        assert canonical(resumed) == canonical(serial)

    def test_overlapping_checkpoint_files_clash(self, experiment, tmp_path):
        import shutil

        # A row copied wholesale into a second file (botched manual shard
        # collection) is a genuine clash and must be rejected.
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        shutil.copy(
            tmp_path / shard_filename(0, 2), tmp_path / shard_filename(0, 4)
        )
        with pytest.raises(ExperimentError, match="clash"):
            experiment.resume(str(tmp_path))

    def test_interrupted_mid_variant_recovers(self, experiment, serial, tmp_path):
        path = tmp_path / shard_filename(0, 2)
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        # Simulate a crash mid-append: drop the last completed row and leave
        # a torn half-written line behind.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + '\n{"kind": "row", "row": {"exp')
        resumed = experiment.resume(str(tmp_path))
        assert canonical(resumed) == canonical(serial)

    def test_shard_retry_after_torn_append_heals_the_file(
        self, experiment, serial, tmp_path
    ):
        backend = ShardBackend(0, 2, checkpoint_dir=str(tmp_path))
        path = tmp_path / shard_filename(0, 2)
        experiment.run(backend=backend)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + '\n{"kind": "row", "row": {"exp')
        # The advertised recovery path: simply re-invoke the shard.  The
        # torn fragment must not corrupt the fresh append.
        retried = experiment.run(backend=backend)
        assert canonical(retried) == canonical(
            experiment.run(backend=ShardBackend(0, 2))
        )
        # And the healed file now parses clean — every line committed.
        again = experiment.run(backend=backend)
        assert canonical(again) == canonical(retried)

    def test_shard_retry_after_resume_does_not_duplicate(
        self, experiment, serial, tmp_path, monkeypatch
    ):
        # Shard 0 never ran; resume recovers its rows into resume.jsonl.
        experiment.run(backend=ShardBackend(1, 2, checkpoint_dir=str(tmp_path)))
        experiment.resume(str(tmp_path))
        # A scheduler retry of shard 0 must serve those rows from the
        # checkpoint directory, not recompute them into its own file.
        executed = _counting_run_variant(monkeypatch)
        retried = experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        assert executed == []
        assert len(retried) == 3
        # And the directory stays clash-free for later resumes.
        resumed = experiment.resume(str(tmp_path))
        assert canonical(resumed) == canonical(serial)

    def test_crash_during_first_append_leaves_recoverable_shard(
        self, experiment, serial, tmp_path
    ):
        backend = ShardBackend(0, 2, checkpoint_dir=str(tmp_path))
        path = tmp_path / shard_filename(0, 2)
        # Run killed while the header itself was being flushed.
        path.write_text('{"kind": "header", "format_ver')
        retried = experiment.run(backend=backend)
        assert canonical(retried) == canonical(
            experiment.run(backend=ShardBackend(0, 2))
        )
        # Resume also tolerates the torn-header file.
        resumed = experiment.resume(str(tmp_path))
        assert canonical(resumed) == canonical(serial)


class TestShardProgress:
    def test_progress_reports_before_first_and_after_each_unit(
        self, experiment, tmp_path
    ):
        seen = []
        backend = ShardBackend(
            0, 2, checkpoint_dir=str(tmp_path), on_progress=seen.append
        )
        experiment.run(backend=backend)
        n_units = len(shard_plans(experiment, 2)[0].runs)
        assert len(seen) == n_units + 1, "one leading report plus one per unit"
        assert all(isinstance(progress, ShardProgress) for progress in seen)
        assert [progress.variants_done for progress in seen] == list(
            range(n_units + 1)
        )
        assert all(progress.variants_total == n_units for progress in seen)
        assert seen[0].rows_committed == 0 and seen[0].rows_appended == 0
        # Everything was fresh on a cold run: committed == appended.
        assert seen[-1].rows_committed == seen[-1].rows_appended == 3

    def test_retry_reports_served_rows_as_committed_not_appended(
        self, experiment, tmp_path
    ):
        experiment.run(backend=ShardBackend(0, 2, checkpoint_dir=str(tmp_path)))
        seen = []
        backend = ShardBackend(
            0, 2, checkpoint_dir=str(tmp_path), on_progress=seen.append
        )
        experiment.run(backend=backend)
        # The heartbeat signal (rows_committed) still advances — the
        # scheduler must see a retried shard as live — but the fault
        # budget (rows_appended) meters nothing.
        assert seen[-1].rows_committed == 3
        assert all(progress.rows_appended == 0 for progress in seen)

    def test_on_progress_does_not_change_results(self, experiment, serial, tmp_path):
        backend = ShardBackend(
            0, 2, checkpoint_dir=str(tmp_path), on_progress=lambda progress: None
        )
        bare = experiment.run(backend=ShardBackend(0, 2))
        assert canonical(experiment.run(backend=backend)) == canonical(bare)


class TestAppendComplexity:
    def test_checkpointed_run_scans_the_log_once(
        self, experiment, tmp_path, monkeypatch
    ):
        # The retry path must be O(rows appended), not O(rows²): the
        # shard log's torn-tail recovery scan (its only full read on the
        # append path) happens once per execute, no matter how many
        # variants append.
        import pathlib

        backend = ShardBackend(0, 1, checkpoint_dir=str(tmp_path))
        path = tmp_path / shard_filename(0, 1)
        experiment.run(backend=backend)  # seed the checkpoint
        # Keep only the header and the first row: the retry recomputes
        # five variants, each appending to the already-existing file.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")

        reads = []
        original = pathlib.Path.read_bytes

        def counting_read_bytes(self):
            reads.append(str(self))
            return original(self)

        monkeypatch.setattr(pathlib.Path, "read_bytes", counting_read_bytes)
        retried = experiment.run(backend=backend)
        assert reads.count(str(path)) == 1, "one recovery scan per execute"
        assert len(retried) == 6


class TestRowIdentity:
    def test_variant_hash_is_content_based(self, serial):
        row = serial.rows[0]
        twin = serial.rows[0]
        assert row.variant_hash == twin.variant_hash
        assert serial.rows[0].variant_hash != serial.rows[1].variant_hash

    def test_row_key_separates_modes(self):
        experiment = _experiment(n_receivers=40, paths=("analyze", "simulate"))
        results = experiment.run()
        analytic = results.row(results.labels()[0], mode="analytic")
        simulated = results.row(results.labels()[0], mode="batch")
        assert analytic.variant_hash == simulated.variant_hash
        assert analytic.row_key() != simulated.row_key()

    def test_row_by_hash_lookup(self, serial):
        row = serial.rows[2]
        assert serial.row_by_hash(row.variant_hash) is row
        with pytest.raises(ExperimentError, match="no row"):
            serial.row_by_hash("0" * 16)

    def test_scenario_variant_hash_matches_row_hash(self, serial):
        from repro.systems import get_scenario

        row = serial.rows[0]
        variant = get_scenario(row.scenario).bind(**dict(row.params))
        assert variant.variant_hash() == row.variant_hash
