"""Tests for the encoded-study registry."""

import pytest

from repro.core.components import Component
from repro.core.exceptions import ModelError
from repro.studies import ALL_STUDIES, Finding, Study, StudyRegistry, registry


class TestStudyModel:
    def test_finding_requires_key_and_statement(self):
        with pytest.raises(ModelError):
            Finding(key="", statement="x")
        with pytest.raises(ModelError):
            Finding(key="k", statement="")

    def test_study_rejects_duplicate_finding_keys(self):
        finding = Finding(key="same", statement="x")
        with pytest.raises(ModelError):
            Study(study_id="s", citation="c", year=2000, findings=(finding, finding))

    def test_value_raises_for_qualitative_findings(self):
        study = Study(
            study_id="s",
            citation="c",
            year=2000,
            findings=(Finding(key="qualitative", statement="no number"),),
        )
        with pytest.raises(ModelError):
            study.value("qualitative")

    def test_finding_lookup_missing_key(self):
        study = ALL_STUDIES[0]
        with pytest.raises(KeyError):
            study.finding("not-a-real-key")


class TestRegistry:
    def test_ten_studies_encoded(self):
        assert len(registry) == 10

    def test_expected_studies_present(self):
        for study_id in (
            "egelman2008",
            "wu2006",
            "whalen2005",
            "gaw_felten2006",
            "kuo2006",
            "dhamija2006",
            "davis2004",
            "thorpe2007",
            "sheng2007",
            "adams_sasse1999",
        ):
            assert study_id in registry

    def test_key_calibration_values_in_range(self):
        assert 0.0 < registry.value("egelman2008", "passive_warning_protection_rate") < 0.3
        assert registry.value("egelman2008", "active_warning_protection_rate") > 0.7
        assert registry.value("wu2006", "toolbar_not_noticed_rate") == pytest.approx(0.25)
        assert registry.value("kuo2006", "understand_password_guidance") >= 0.7
        assert registry.value("gaw_felten2006", "password_reuse_rate") >= 0.5

    def test_unknown_study_raises(self):
        with pytest.raises(KeyError):
            registry.study("unknown")

    def test_findings_for_component(self):
        attention_findings = registry.findings_for_component(Component.ATTENTION_SWITCH)
        assert len(attention_findings) >= 3
        capability_findings = registry.findings_for_component(Component.CAPABILITIES)
        assert any(study.study_id == "gaw_felten2006" for study, _finding in capability_findings)

    def test_bibliography_has_one_entry_per_study(self):
        bibliography = registry.bibliography()
        assert len(bibliography) == len(registry)
        assert all(citation for citation in bibliography)

    def test_studies_cite_paper_reference_numbers(self):
        for study in ALL_STUDIES:
            assert study.paper_reference_number is None or 1 <= study.paper_reference_number <= 41

    def test_duplicate_study_ids_rejected(self):
        duplicate = ALL_STUDIES[0]
        with pytest.raises(ModelError):
            StudyRegistry(studies=(duplicate, duplicate))

    def test_every_study_has_findings(self):
        for study in ALL_STUDIES:
            assert study.findings
            assert study.year >= 1999
