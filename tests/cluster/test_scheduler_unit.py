"""Fake-clock unit tests for the scheduler's requeue/backoff machinery (ISSUE 7).

Nothing here launches a process or computes a row: a scripted transport
hands the scheduler fake worker handles, the clock and sleeper are
synthetic, and the final merge is stubbed out.  What's under test is the
state machine itself — dispatch order, the capacity cap, heartbeat
timeouts, capped exponential backoff with deterministic jitter, and
attempt exhaustion.
"""

import types

import pytest

from repro.cluster import ShardScheduler, backoff_delay, read_scheduler_events
from repro.core.exceptions import ClusterError
from repro.experiments import Experiment, SweepSpec

SEED = 20260808


@pytest.fixture(scope="module")
def experiment():
    sweep = SweepSpec(
        scenario="passwords",
        grid={"single_sign_on": [False, True], "distinct_accounts": [4, 8]},
    )
    return Experiment.from_sweep(
        "scheduler-unit", sweep, n_receivers=20, seed=SEED, task="recall-passwords"
    )


class FakeClock:
    """Monotonic time that only moves when the scheduler sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        assert seconds >= 0.0
        self.now += seconds


class FakeHandle:
    """A scripted worker: exits with ``exit_code`` on the
    ``exit_after_polls``-th poll (never, if ``None``), reporting a fixed
    ``rows`` count from :meth:`rows_committed`."""

    def __init__(self, exit_code=0, exit_after_polls=1, rows=None):
        self.exit_code = exit_code
        self.exit_after_polls = exit_after_polls
        self.rows = rows
        self.polls = 0
        self.terminated = False

    def poll(self):
        if self.terminated:
            return -9
        self.polls += 1
        if self.exit_after_polls is not None and self.polls >= self.exit_after_polls:
            return self.exit_code
        return None

    def rows_committed(self):
        return self.rows

    def terminate(self):
        self.terminated = True


class FakeTransport:
    """Hands out handles from a ``factory(shard_index, attempt)`` and
    records every launch."""

    def __init__(self, factory):
        self.factory = factory
        self.launches = []

    def launch(self, assignment):
        handle = self.factory(assignment.shard_index, assignment.attempt)
        self.launches.append((assignment.shard_index, assignment.attempt, handle))
        return handle


def make_scheduler(experiment, tmp_path, factory, **overrides):
    clock = FakeClock()
    kwargs = dict(
        transport=FakeTransport(factory),
        max_workers=4,
        heartbeat_timeout=1.0,
        poll_interval=0.05,
        backoff_base=0.25,
        backoff_cap=8.0,
        backoff_jitter=0.0,
        max_attempts=4,
        clock=clock.clock,
        sleep=clock.sleep,
    )
    kwargs.update(overrides)
    scheduler = ShardScheduler(
        experiment, shard_count=2, checkpoint_dir=str(tmp_path), **kwargs
    )
    return scheduler, clock


@pytest.fixture()
def stub_merge(monkeypatch):
    """Replace the real checkpoint merge with a sentinel result."""
    sentinel = types.SimpleNamespace(rows=[])
    monkeypatch.setattr(
        "repro.cluster.scheduler.resume_experiment", lambda exp, d: sentinel
    )
    return sentinel


def kinds(checkpoint_dir):
    return [event["event"] for event in read_scheduler_events(checkpoint_dir)]


class TestHappyPath:
    def test_clean_run_event_sequence(self, experiment, tmp_path, stub_merge):
        scheduler, _ = make_scheduler(
            experiment, tmp_path, lambda shard, attempt: FakeHandle()
        )
        assert scheduler.run() is stub_merge
        assert kinds(tmp_path) == [
            "queued",
            "queued",
            "started",
            "started",
            "completed",
            "completed",
            "merged",
        ]
        queued = read_scheduler_events(tmp_path, kind="queued")
        assert [event["shard"] for event in queued] == [0, 1]
        assert all(event["n_work_units"] == 2 for event in queued)

    def test_capacity_cap_serializes_dispatch(self, experiment, tmp_path, stub_merge):
        scheduler, _ = make_scheduler(
            experiment, tmp_path, lambda shard, attempt: FakeHandle(), max_workers=1
        )
        scheduler.run()
        # With one worker slot and instant completions, each shard must
        # finish before the next starts.
        assert kinds(tmp_path) == [
            "queued",
            "queued",
            "started",
            "completed",
            "started",
            "completed",
            "merged",
        ]


class TestRequeueOnFailure:
    def test_failed_worker_is_requeued_and_retried(
        self, experiment, tmp_path, stub_merge
    ):
        def factory(shard, attempt):
            if shard == 0 and attempt == 1:
                return FakeHandle(exit_code=70)
            return FakeHandle()

        scheduler, clock = make_scheduler(
            experiment, tmp_path, factory, backoff_jitter=0.1
        )
        scheduler.run()
        failed = read_scheduler_events(tmp_path, kind="worker-failed")
        assert [(e["shard"], e["attempt"], e["exit_code"]) for e in failed] == [
            (0, 1, 70)
        ]
        (requeued,) = read_scheduler_events(tmp_path, kind="requeued")
        assert requeued["shard"] == 0 and requeued["attempt"] == 2
        expected = backoff_delay(0.25, 8.0, 0.1, SEED, 0, 1)
        assert requeued["delay"] == round(expected, 6)
        retry_started = [
            event
            for event in read_scheduler_events(tmp_path, kind="started")
            if event["shard"] == 0 and event["attempt"] == 2
        ]
        assert len(retry_started) == 1
        assert retry_started[0]["time"] >= requeued["time"] + requeued["delay"] - 1e-9
        completed = read_scheduler_events(tmp_path, kind="completed")
        assert {(e["shard"], e["attempt"]) for e in completed} == {(0, 2), (1, 1)}

    def test_backoff_doubles_per_failure_until_cap(
        self, experiment, tmp_path, stub_merge
    ):
        def factory(shard, attempt):
            if shard == 0 and attempt <= 3:
                return FakeHandle(exit_code=1)
            return FakeHandle()

        scheduler, _ = make_scheduler(
            experiment, tmp_path, factory, backoff_base=2.0, backoff_cap=5.0
        )
        scheduler.run()
        delays = [
            event["delay"] for event in read_scheduler_events(tmp_path, kind="requeued")
        ]
        assert delays == [2.0, 4.0, 5.0], "exponential growth, capped"


class TestHeartbeatTimeout:
    def test_silent_worker_is_killed_and_requeued(
        self, experiment, tmp_path, stub_merge
    ):
        hung = FakeHandle(exit_after_polls=None, rows=3)

        def factory(shard, attempt):
            if shard == 0 and attempt == 1:
                return hung
            return FakeHandle()

        scheduler, _ = make_scheduler(experiment, tmp_path, factory)
        scheduler.run()
        assert hung.terminated, "a silent worker must be hard-killed"
        (timeout,) = read_scheduler_events(tmp_path, kind="timeout")
        assert timeout["shard"] == 0 and timeout["attempt"] == 1
        assert timeout["rows"] == 3, "last observed progress is recorded"
        assert timeout["silent_for"] >= scheduler.heartbeat_timeout
        # Progress *was* observed once before the silence.
        beats = read_scheduler_events(tmp_path, kind="heartbeat")
        assert any(e["shard"] == 0 and e["rows"] == 3 for e in beats)
        (requeued,) = read_scheduler_events(tmp_path, kind="requeued")
        assert (requeued["shard"], requeued["attempt"]) == (0, 2)

    def test_progress_resets_the_timeout(self, experiment, tmp_path, stub_merge):
        class TricklingHandle(FakeHandle):
            """Commits one fresh row per poll — slow but alive."""

            def rows_committed(self):
                return self.polls

        def factory(shard, attempt):
            if shard == 0:
                return TricklingHandle(exit_after_polls=60)
            return FakeHandle()

        # 60 polls * 0.05s/poll is 3s of wall clock against a 1s timeout:
        # only steady progress keeps the worker alive to completion.
        scheduler, _ = make_scheduler(experiment, tmp_path, factory)
        scheduler.run()
        assert read_scheduler_events(tmp_path, kind="timeout") == []
        assert read_scheduler_events(tmp_path, kind="requeued") == []


class TestExhaustion:
    def test_exhausted_shard_aborts_and_terminates_the_fleet(
        self, experiment, tmp_path, stub_merge
    ):
        bystander = FakeHandle(exit_after_polls=None)

        def factory(shard, attempt):
            if shard == 0:
                return FakeHandle(exit_code=1)
            return bystander

        scheduler, _ = make_scheduler(
            experiment, tmp_path, factory, max_attempts=2, heartbeat_timeout=1e9
        )
        with pytest.raises(ClusterError, match="shard 0 failed 2 times"):
            scheduler.run()
        (exhausted,) = read_scheduler_events(tmp_path, kind="exhausted")
        assert exhausted["shard"] == 0 and exhausted["attempts"] == 2
        assert bystander.terminated, "abort must not leak running workers"
        assert read_scheduler_events(tmp_path, kind="merged") == []


class TestBackoffDelay:
    def test_exponential_and_capped_before_jitter(self):
        assert backoff_delay(1.0, 100.0, 0.0, SEED, 0, 1) == 1.0
        assert backoff_delay(1.0, 100.0, 0.0, SEED, 0, 2) == 2.0
        assert backoff_delay(1.0, 100.0, 0.0, SEED, 0, 3) == 4.0
        assert backoff_delay(1.0, 4.0, 0.0, SEED, 0, 10) == 4.0

    def test_jitter_is_bounded_and_deterministic(self):
        first = backoff_delay(1.0, 8.0, 0.25, SEED, 3, 2)
        again = backoff_delay(1.0, 8.0, 0.25, SEED, 3, 2)
        assert first == again, "same (seed, shard, failures) -> same delay"
        assert 2.0 <= first <= 2.0 * 1.25
        other_shard = backoff_delay(1.0, 8.0, 0.25, SEED, 4, 2)
        other_failure = backoff_delay(1.0, 8.0, 0.25, SEED, 3, 3)
        assert other_shard != first
        assert other_failure != first * 2.0


class TestValidation:
    def test_bad_settings_raise_cluster_error(self, experiment, tmp_path):
        good = dict(shard_count=2, checkpoint_dir=str(tmp_path))
        with pytest.raises(ClusterError, match="shard_count"):
            ShardScheduler(experiment, 0, str(tmp_path))
        with pytest.raises(ClusterError, match="heartbeat_timeout"):
            ShardScheduler(experiment, **good, heartbeat_timeout=0.0)
        with pytest.raises(ClusterError, match="poll_interval"):
            ShardScheduler(experiment, **good, poll_interval=0.0)
        with pytest.raises(ClusterError, match="backoff"):
            ShardScheduler(experiment, **good, backoff_base=-1.0)
        with pytest.raises(ClusterError, match="max_attempts"):
            ShardScheduler(experiment, **good, max_attempts=0)
        with pytest.raises(ClusterError, match="max_workers"):
            ShardScheduler(experiment, **good, max_workers=0)

    def test_max_workers_falls_back_to_transport_capacity(self, experiment, tmp_path):
        transport = FakeTransport(lambda shard, attempt: FakeHandle())
        transport.max_workers = 3
        scheduler = ShardScheduler(
            experiment, 2, str(tmp_path), transport=transport
        )
        assert scheduler.max_workers == 3
