"""Tests for deterministic fault injection (ISSUE 7)."""

import pickle

import pytest

from repro.cluster import FAULT_KILL_EXIT_CODE, FaultInjector


class TestScoping:
    def test_defaults_arm_every_shard_on_first_attempt_only(self):
        fault = FaultInjector(kill_after_rows=1)
        assert fault.applies_to(0, 1)
        assert fault.applies_to(7, 1)
        assert not fault.applies_to(0, 2), "the retry must be allowed to succeed"

    def test_shard_scoping(self):
        fault = FaultInjector(shards=(1, 3), kill_after_rows=1)
        assert fault.applies_to(1, 1)
        assert fault.applies_to(3, 1)
        assert not fault.applies_to(0, 1)
        assert not fault.applies_to(2, 1)

    def test_none_means_every_shard_and_attempt(self):
        fault = FaultInjector(shards=None, attempts=None, kill_after_rows=1)
        for shard in range(4):
            for attempt in range(1, 5):
                assert fault.applies_to(shard, attempt)


class TestThresholds:
    def test_kill_threshold_is_at_least(self):
        fault = FaultInjector(kill_after_rows=2)
        assert not fault.should_kill(0)
        assert not fault.should_kill(1)
        assert fault.should_kill(2)
        assert fault.should_kill(3)

    def test_no_kill_configured_never_kills(self):
        fault = FaultInjector(drop_heartbeats_after=1)
        assert not fault.should_kill(10**6)

    def test_drop_heartbeat_threshold(self):
        fault = FaultInjector(drop_heartbeats_after=1)
        assert not fault.should_drop_heartbeat(0)
        assert fault.should_drop_heartbeat(1)
        assert fault.should_drop_heartbeat(5)

    def test_no_drop_configured_never_drops(self):
        fault = FaultInjector(kill_after_rows=1)
        assert not fault.should_drop_heartbeat(10**6)


class TestValidation:
    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError, match="kill_after_rows"):
            FaultInjector(kill_after_rows=-1)
        with pytest.raises(ValueError, match="drop_heartbeats_after"):
            FaultInjector(drop_heartbeats_after=-1)
        with pytest.raises(ValueError, match="delay_completion_seconds"):
            FaultInjector(delay_completion_seconds=-0.5)


class TestPicklability:
    def test_round_trips_through_pickle(self):
        # Assignments carry the injector into worker processes, so it
        # must survive multiprocessing's pickling.
        fault = FaultInjector(
            shards=(1,), kill_after_rows=2, drop_heartbeats_after=3, torn_line=False
        )
        assert pickle.loads(pickle.dumps(fault)) == fault


class TestKillNow:
    def test_exit_code_is_pinned(self):
        # The scheduler smoke tests recognize injected crashes by this
        # exit status; changing it silently breaks them.
        assert FAULT_KILL_EXIT_CODE == 70

    def test_kill_tears_the_log_then_exits(self, tmp_path, monkeypatch):
        exits = []
        monkeypatch.setattr("os._exit", lambda code: exits.append(code))
        log = tmp_path / "shard-0000-of-0002.jsonl"
        log.write_text('{"kind": "header"}\n')
        FaultInjector(kill_after_rows=1).kill_now(log)
        assert exits == [FAULT_KILL_EXIT_CODE]
        assert not log.read_text().endswith("\n"), "must leave a torn final line"

    def test_torn_line_disabled_leaves_log_untouched(self, tmp_path, monkeypatch):
        exits = []
        monkeypatch.setattr("os._exit", lambda code: exits.append(code))
        log = tmp_path / "shard-0000-of-0002.jsonl"
        log.write_text('{"kind": "header"}\n')
        FaultInjector(kill_after_rows=1, torn_line=False).kill_now(log)
        assert exits == [FAULT_KILL_EXIT_CODE]
        assert log.read_text() == '{"kind": "header"}\n'

    def test_missing_log_still_exits(self, tmp_path, monkeypatch):
        exits = []
        monkeypatch.setattr("os._exit", lambda code: exits.append(code))
        FaultInjector(kill_after_rows=0).kill_now(tmp_path / "absent.jsonl")
        assert exits == [FAULT_KILL_EXIT_CODE]
