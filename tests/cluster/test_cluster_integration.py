"""End-to-end cluster tests over real worker processes (ISSUE 7).

The acceptance drill for the scheduler: run a 4-shard sweep on a real
:class:`LocalProcessFleet`, kill a worker mid-shard with the
deterministic fault injector, and require the run to complete via
requeue with the merged :class:`ResultSet` bit-identical — modulo
:data:`WALL_CLOCK_METRICS` — to a serial run of the same experiment.
"""

import json

import pytest

from repro.cluster import (
    FAULT_KILL_EXIT_CODE,
    FaultInjector,
    LocalProcessFleet,
    ShardAssignment,
    ShardScheduler,
    read_scheduler_events,
)
from repro.cluster.cli import main as cluster_main
from repro.cluster.faults import TORN_FRAGMENT
from repro.experiments import Experiment, SweepSpec
from repro.io import load_checkpoint, read_shard

SEED = 20260808


def _experiment(name="cluster-int", n_receivers=30) -> Experiment:
    # 8 variants -> 2 per shard at shard_count=4, so kill_after_rows=1
    # strikes mid-shard: one row committed, one still to compute.
    sweep = SweepSpec(
        scenario="passwords",
        grid={
            "distinct_accounts": [4, 8],
            "single_sign_on": [False, True],
            "forbid_reuse": [False, True],
        },
    )
    return Experiment.from_sweep(
        name, sweep, n_receivers=n_receivers, seed=SEED, task="recall-passwords"
    )


@pytest.fixture(scope="module")
def experiment() -> Experiment:
    return _experiment()


@pytest.fixture(scope="module")
def serial(experiment):
    return experiment.run()


def make_scheduler(experiment, checkpoint_dir, **overrides) -> ShardScheduler:
    kwargs = dict(
        shard_count=4,
        transport=LocalProcessFleet(max_workers=2),
        heartbeat_timeout=30.0,
        poll_interval=0.02,
        backoff_base=0.05,
        backoff_cap=0.2,
    )
    kwargs.update(overrides)
    return ShardScheduler(experiment, checkpoint_dir=str(checkpoint_dir), **kwargs)


def all_checkpoint_row_keys(checkpoint_dir):
    return [
        row.row_key()
        for _, _, rows in load_checkpoint(checkpoint_dir)
        for row in rows
    ]


class TestHappyPath:
    def test_fleet_run_is_bit_identical_to_serial(
        self, experiment, serial, tmp_path
    ):
        merged = make_scheduler(experiment, tmp_path).run()
        assert merged.canonical_dict() == serial.canonical_dict()
        completed = read_scheduler_events(tmp_path, kind="completed")
        assert sorted(event["shard"] for event in completed) == [0, 1, 2, 3]
        assert read_scheduler_events(tmp_path, kind="requeued") == []
        (final,) = read_scheduler_events(tmp_path, kind="merged")
        assert final["rows"] == len(serial.rows)


class TestKillMidShard:
    def test_injected_crash_recovers_via_requeue(self, experiment, serial, tmp_path):
        scheduler = make_scheduler(
            experiment,
            tmp_path,
            fault_injector=FaultInjector(shards=(1,), kill_after_rows=1),
        )
        merged = scheduler.run()

        # The crash is visible in the event log: attempt 1 died with the
        # injector's exit code, the shard was requeued, attempt 2 finished.
        (failed,) = read_scheduler_events(tmp_path, kind="worker-failed")
        assert (failed["shard"], failed["attempt"]) == (1, 1)
        assert failed["exit_code"] == FAULT_KILL_EXIT_CODE
        (requeued,) = read_scheduler_events(tmp_path, kind="requeued")
        assert (requeued["shard"], requeued["attempt"]) == (1, 2)
        completed = read_scheduler_events(tmp_path, kind="completed")
        assert {(e["shard"], e["attempt"]) for e in completed} == {
            (0, 1),
            (1, 2),
            (2, 1),
            (3, 1),
        }

        # The retry dedups against the checkpoint: every row identity
        # appears exactly once across all shard logs, and the merged set
        # is bit-identical to serial.
        keys = all_checkpoint_row_keys(tmp_path)
        assert len(keys) == len(set(keys)), "retry must not duplicate rows"
        assert len(keys) == len(serial.rows)
        assert merged.canonical_dict() == serial.canonical_dict()

    def test_kill_leaves_a_torn_final_line(self, tmp_path):
        # Drive one assignment directly through the fleet (no scheduler,
        # no retry) to inspect the crash's exact on-disk signature.
        experiment = _experiment(name="cluster-torn")
        assignment = ShardAssignment(
            experiment=experiment,
            shard_index=0,
            shard_count=4,
            checkpoint_dir=str(tmp_path),
            fault=FaultInjector(shards=(0,), kill_after_rows=1),
        )
        handle = LocalProcessFleet(max_workers=1).launch(assignment)
        handle.process.join(timeout=120)
        assert handle.poll() == FAULT_KILL_EXIT_CODE
        text = assignment.shard_log_path.read_text()
        assert text.endswith(TORN_FRAGMENT), "crash mid-append, torn line"
        assert not text.endswith("\n")
        # The committed prefix survives the tear: one row is durable.
        _, rows = read_shard(assignment.shard_log_path)
        assert len(rows) == 1
        # And a scheduler pass over the same directory heals everything.
        merged = make_scheduler(experiment, tmp_path).run()
        assert merged.canonical_dict() == experiment.run().canonical_dict()
        keys = all_checkpoint_row_keys(tmp_path)
        assert len(keys) == len(set(keys))


class TestHeartbeatTimeout:
    def test_silent_worker_is_requeued_and_run_completes(
        self, experiment, serial, tmp_path
    ):
        # The armed worker computes its shard but never says so (all
        # heartbeats dropped) and then lingers instead of exiting: the
        # scheduler must detect the silence, kill it, and requeue.
        scheduler = make_scheduler(
            experiment,
            tmp_path,
            shard_count=2,
            fault_injector=FaultInjector(
                shards=(0,), drop_heartbeats_after=0, delay_completion_seconds=30.0
            ),
            heartbeat_timeout=1.0,
        )
        merged = scheduler.run()
        timeouts = read_scheduler_events(tmp_path, kind="timeout")
        assert [event["shard"] for event in timeouts] == [0]
        requeues = read_scheduler_events(tmp_path, kind="requeued")
        assert [(e["shard"], e["attempt"]) for e in requeues] == [(0, 2)]
        assert merged.canonical_dict() == serial.canonical_dict()
        keys = all_checkpoint_row_keys(tmp_path)
        assert len(keys) == len(set(keys))


class TestCli:
    def test_run_with_injection_then_events(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        output = tmp_path / "merged.json"
        rc = cluster_main(
            [
                "run",
                "--scenario",
                "passwords",
                "--grid",
                '{"single_sign_on": [false, true], "distinct_accounts": [4, 8]}',
                "--task",
                "recall-passwords",
                "--n-receivers",
                "20",
                "--seed",
                str(SEED),
                "--shards",
                "2",
                "--workers",
                "2",
                "--checkpoint-dir",
                str(checkpoint),
                "--backoff-base",
                "0.05",
                "--inject-kill-after-rows",
                "1",
                "--inject-shards",
                "0",
                "--output",
                str(output),
            ]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "1 requeue(s)" in stdout
        payload = json.loads(output.read_text())
        assert len(payload["rows"]) == 4

        rc = cluster_main(
            ["events", "--checkpoint-dir", str(checkpoint), "--kind", "worker-failed"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["exit_code"] for event in events] == [FAULT_KILL_EXIT_CODE]
