"""Property-based tests: JSON round-trips preserve the models."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behavior import TaskDesign
from repro.core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from repro.core.receiver import Capabilities
from repro.core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from repro.io.json_io import (
    communication_from_dict,
    communication_to_dict,
    dumps_system,
    loads_system,
    task_from_dict,
    task_to_dict,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_"),
    min_size=1,
    max_size=20,
)


@st.composite
def communications(draw) -> Communication:
    return Communication(
        name=draw(names),
        comm_type=draw(st.sampled_from(list(CommunicationType))),
        activeness=draw(unit),
        hazard=HazardProfile(
            severity=draw(st.sampled_from(list(HazardSeverity))),
            frequency=draw(st.sampled_from(list(HazardFrequency))),
            user_action_necessity=draw(unit),
            description=draw(st.text(max_size=30)),
        ),
        clarity=draw(unit),
        includes_instructions=draw(st.booleans()),
        explains_risk=draw(st.booleans()),
        resembles_low_risk_communications=draw(st.booleans()),
        length_words=draw(st.integers(min_value=0, max_value=2000)),
        channel=draw(st.sampled_from(list(DeliveryChannel))),
        conspicuity=draw(unit),
        allows_override=draw(st.booleans()),
        false_positive_rate=draw(unit),
        habituation_exposures=draw(st.integers(min_value=0, max_value=500)),
        description=draw(st.text(max_size=50)),
    )


@st.composite
def tasks(draw) -> HumanSecurityTask:
    return HumanSecurityTask(
        name=draw(names),
        description=draw(st.text(max_size=40)),
        communication=draw(st.one_of(st.none(), communications())),
        task_design=TaskDesign(
            steps=draw(st.integers(min_value=0, max_value=12)),
            controls_discoverable=draw(unit),
            feedback_quality=draw(unit),
            controls_distinguishable=draw(unit),
            guidance_through_steps=draw(st.booleans()),
            requires_unpredictable_choice=draw(st.booleans()),
            choice_predictability=draw(unit),
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=draw(unit),
            cognitive_skill=draw(unit),
            physical_skill=draw(unit),
            memory_capacity=draw(unit),
            has_required_software=draw(st.booleans()),
            has_required_device=draw(st.booleans()),
        ),
        security_critical=draw(st.booleans()),
        automation=AutomationProfile(
            can_fully_automate=draw(st.booleans()),
            automation_accuracy=draw(unit),
            automation_false_positive_rate=draw(unit),
            human_information_advantage=draw(unit),
            automation_cost=draw(unit),
        ),
        desired_action=draw(st.text(min_size=1, max_size=40)),
        failure_consequence=draw(st.text(max_size=40)),
    )


class TestRoundTripProperties:
    @given(communication=communications())
    @settings(max_examples=60, deadline=None)
    def test_communication_round_trip_identity(self, communication):
        payload = json.loads(json.dumps(communication_to_dict(communication)))
        assert communication_from_dict(payload) == communication

    @given(task=tasks())
    @settings(max_examples=40, deadline=None)
    def test_task_round_trip_preserves_semantics(self, task):
        payload = json.loads(json.dumps(task_to_dict(task)))
        restored = task_from_dict(payload)
        assert restored.name == task.name
        assert restored.communication == task.communication
        assert restored.task_design == task.task_design
        assert restored.capability_requirements == task.capability_requirements
        assert restored.automation == task.automation
        assert restored.security_critical == task.security_critical

    @given(task_list=st.lists(tasks(), min_size=1, max_size=4, unique_by=lambda t: t.name))
    @settings(max_examples=25, deadline=None)
    def test_system_round_trip_through_json_text(self, task_list):
        system = SecureSystem(name="property-system", tasks=list(task_list))
        restored = loads_system(dumps_system(system))
        assert restored.name == system.name
        assert [task.name for task in restored.tasks] == [task.name for task in system.tasks]
