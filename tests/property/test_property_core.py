"""Property-based tests (hypothesis) for the core framework invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import probabilities
from repro.core.behavior import TaskDesign, assess_behavior_design
from repro.core.communication import (
    ActivenessLevel,
    Communication,
    CommunicationType,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    recommend_activeness,
)
from repro.core.failure import FailureLikelihood
from repro.core.impediments import Environment, StimulusKind
from repro.core.receiver import (
    AttitudesBeliefs,
    Capabilities,
    HumanReceiver,
    Intentions,
    KnowledgeExperience,
    Motivation,
    PersonalVariables,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def communications(draw) -> Communication:
    return Communication(
        name="prop",
        comm_type=draw(st.sampled_from(list(CommunicationType))),
        activeness=draw(unit),
        hazard=HazardProfile(
            severity=draw(st.sampled_from(list(HazardSeverity))),
            frequency=draw(st.sampled_from(list(HazardFrequency))),
            user_action_necessity=draw(unit),
        ),
        clarity=draw(unit),
        includes_instructions=draw(st.booleans()),
        explains_risk=draw(st.booleans()),
        resembles_low_risk_communications=draw(st.booleans()),
        length_words=draw(st.integers(min_value=0, max_value=1000)),
        conspicuity=draw(unit),
        allows_override=draw(st.booleans()),
        false_positive_rate=draw(unit),
        habituation_exposures=draw(st.integers(min_value=0, max_value=200)),
    )


@st.composite
def receivers(draw) -> HumanReceiver:
    return HumanReceiver(
        name="prop-receiver",
        personal_variables=PersonalVariables(
            knowledge=KnowledgeExperience(
                security_knowledge=draw(unit),
                domain_knowledge=draw(unit),
                computer_proficiency=draw(unit),
                prior_exposure=draw(unit),
                has_received_training=draw(st.booleans()),
            ),
        ),
        intentions=Intentions(
            attitudes=AttitudesBeliefs(
                trust=draw(unit),
                perceived_relevance=draw(unit),
                risk_perception=draw(unit),
                self_efficacy=draw(unit),
                response_efficacy=draw(unit),
                perceived_time_cost=draw(unit),
                annoyance=draw(unit),
            ),
            motivation=Motivation(
                conflicting_goals=draw(unit),
                primary_task_pressure=draw(unit),
                perceived_consequences=draw(unit),
                incentives=draw(unit),
                disincentives=draw(unit),
                convenience_cost=draw(unit),
            ),
        ),
        capabilities=Capabilities(
            knowledge_to_act=draw(unit),
            cognitive_skill=draw(unit),
            physical_skill=draw(unit),
            memory_capacity=draw(unit),
        ),
    )


@st.composite
def environments(draw) -> Environment:
    environment = Environment(
        competing_indicator_count=draw(st.integers(min_value=0, max_value=10))
    )
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        environment.add_stimulus(
            draw(st.sampled_from(list(StimulusKind))), intensity=draw(unit)
        )
    return environment


class TestProbabilityInvariants:
    @given(communication=communications(), environment=environments(), receiver=receivers())
    @settings(max_examples=60, deadline=None)
    def test_all_stage_probabilities_are_valid(self, communication, environment, receiver):
        values = [
            probabilities.attention_switch_probability(communication, environment, receiver),
            probabilities.attention_maintenance_probability(communication, environment, receiver),
            probabilities.comprehension_probability(communication, receiver),
            probabilities.knowledge_acquisition_probability(communication, receiver),
            probabilities.knowledge_retention_probability(communication, receiver),
            probabilities.knowledge_transfer_probability(communication, receiver),
            probabilities.intention_probability(communication, receiver),
        ]
        assert all(0.0 < value < 1.0 for value in values)

    @given(communication=communications(), environment=environments(), receiver=receivers())
    @settings(max_examples=60, deadline=None)
    def test_more_active_is_never_less_noticed(self, communication, environment, receiver):
        passive = communication.with_activeness(min(communication.activeness, 0.2))
        active = communication.with_activeness(max(communication.activeness, 0.9))
        assert probabilities.attention_switch_probability(
            active, environment, receiver
        ) >= probabilities.attention_switch_probability(passive, environment, receiver) - 1e-9

    @given(communication=communications(), receiver=receivers())
    @settings(max_examples=60, deadline=None)
    def test_more_exposures_never_increase_notice(self, communication, receiver):
        environment = Environment.quiet()
        fresh = communication.with_exposures(0)
        worn = communication.with_exposures(communication.habituation_exposures + 50)
        assert probabilities.attention_switch_probability(
            worn, environment, receiver
        ) <= probabilities.attention_switch_probability(fresh, environment, receiver) + 1e-9

    @given(exposures=st.integers(min_value=0, max_value=500), activeness=unit)
    @settings(max_examples=100, deadline=None)
    def test_habituation_factor_bounded(self, exposures, activeness):
        factor = probabilities.habituation_factor(exposures, activeness)
        assert 0.25 <= factor <= 1.0

    @given(probability=unit)
    @settings(max_examples=100, deadline=None)
    def test_likelihood_banding_total(self, probability):
        band = FailureLikelihood.from_probability(probability)
        assert band in FailureLikelihood


class TestDesignInvariants:
    @given(
        steps=st.integers(min_value=0, max_value=20),
        discoverable=unit,
        feedback=unit,
        distinguishable=unit,
        capability=unit,
        knowledge=unit,
    )
    @settings(max_examples=80, deadline=None)
    def test_behavior_assessment_bounded(self, steps, discoverable, feedback, distinguishable,
                                         capability, knowledge):
        design = TaskDesign(
            steps=steps,
            controls_discoverable=discoverable,
            feedback_quality=feedback,
            controls_distinguishable=distinguishable,
        )
        assessment = assess_behavior_design(
            design, receiver_capability=capability, receiver_knowledge=knowledge
        )
        assert 0.0 <= assessment.success_likelihood <= 1.0
        assert all(0.0 <= score <= 1.0 for score in assessment.risk_scores.values())

    @given(
        severity=st.sampled_from(list(HazardSeverity)),
        frequency=st.sampled_from(list(HazardFrequency)),
        necessity=unit,
    )
    @settings(max_examples=80, deadline=None)
    def test_recommended_activeness_is_valid_level(self, severity, frequency, necessity):
        hazard = HazardProfile(severity=severity, frequency=frequency,
                               user_action_necessity=necessity)
        assert recommend_activeness(hazard) in ActivenessLevel
