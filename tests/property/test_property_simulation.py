"""Property-based tests (hypothesis) for the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.communication import Communication, CommunicationType
from repro.core.task import HumanSecurityTask
from repro.simulation.calibration import StageCalibration
from repro.simulation.engine import HumanLoopSimulator, SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.population import (
    TraitDistribution,
    general_web_population,
)
from repro.simulation.rng import SimulationRng

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), probability=unit)
    @settings(max_examples=80, deadline=None)
    def test_bernoulli_is_deterministic_per_seed(self, seed, probability):
        assert SimulationRng(seed).bernoulli(probability) == SimulationRng(seed).bernoulli(
            probability
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        mean=unit,
        std=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_truncated_normal_in_bounds(self, seed, mean, std):
        value = SimulationRng(seed).truncated_normal(mean, std, 0.0, 1.0)
        assert 0.0 <= value <= 1.0


class TestPopulationProperties:
    @given(mean=unit, std=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_trait_samples_respect_bounds(self, mean, std, seed):
        distribution = TraitDistribution(mean=mean, std=std)
        sample = distribution.sample(SimulationRng(seed))
        assert 0.0 <= sample <= 1.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampled_receivers_always_valid(self, seed):
        receiver = general_web_population().sample(SimulationRng(seed))
        assert 0.0 <= receiver.expertise <= 1.0
        assert 0.0 <= receiver.intention_score <= 1.0
        assert 0.0 <= receiver.capability_score <= 1.0


class TestEngineProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        activeness=unit,
        clarity=unit,
        n_receivers=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_simulation_invariants(self, seed, activeness, clarity, n_receivers):
        task = HumanSecurityTask(
            name="prop-task",
            communication=Communication(
                name="prop-comm",
                comm_type=CommunicationType.WARNING,
                activeness=activeness,
                clarity=clarity,
            ),
            desired_action="act",
        )
        simulator = HumanLoopSimulator(SimulationConfig(n_receivers=n_receivers, seed=seed))
        result = simulator.simulate_task(task, general_web_population())
        assert result.n_receivers == n_receivers
        assert 0.0 <= result.protection_rate() <= 1.0
        assert result.heed_rate() <= result.protection_rate() + 1e-9
        counts = result.outcome_counts()
        assert sum(counts.values()) == n_receivers
        # Protected flag must agree with the outcome semantics.
        for record in result.records:
            assert record.protected == record.outcome.hazard_avoided

    @given(multiplier=st.floats(min_value=0.0, max_value=5.0, allow_nan=False), value=unit)
    @settings(max_examples=80, deadline=None)
    def test_calibration_output_is_valid_probability(self, multiplier, value):
        calibration = StageCalibration(intention_multiplier=multiplier)
        assert 0.0 < calibration.apply_intention(value) < 1.0
