"""REP003 known-bad: provenance holes across the chain.

* ``SimulationConfig.new_knob`` is serialized nowhere and not declared
  in ``NON_PROVENANCE_CONFIG_FIELDS``;
* ``ResultRow.rounds`` is dropped by both sides of the JSON round-trip
  and is neither consumed by ``reproduce_row`` nor declared telemetry;
* ``SIMULATION_PARAMETER_NAMES`` has an entry missing from provenance;
* ``COMMON_PARAMETER_NAMES`` disagrees with ``common_parameter_space``.
"""

import dataclasses

NON_PROVENANCE_CONFIG_FIELDS = ("attacker",)
SIMULATION_PARAMETER_NAMES = ("rounds", "ghost_param")
TELEMETRY_ROW_FIELDS = ()
COMMON_PARAMETER_NAMES = ("rounds", "missing_param")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    seed: int = 0
    mode: str = "batch"
    attacker: object = None
    new_knob: float = 1.0


@dataclasses.dataclass(frozen=True)
class ResultRow:
    seed: int
    mode: str
    rounds: int


def simulation_result_to_dict(result):
    return {
        "provenance": {
            "seed": result.seed,
            "mode": result.mode,
            "rounds": result.rounds,
        },
    }


def result_row_to_dict(row):
    return {
        "seed": row.seed,
        "mode": row.mode,
    }


def result_row_from_dict(payload):
    return ResultRow(
        seed=payload["seed"],
        mode=payload["mode"],
    )


def reproduce_row(row, simulate):
    return simulate(seed=row.seed, mode=row.mode)


class Parameter:
    def __init__(self, name, kind):
        self.name = name
        self.kind = kind


def common_parameter_space():
    return (
        Parameter("rounds", int),
        Parameter("undeclared_param", int),
    )
