"""REP007 known-bad: shared mutable default arguments."""


def merge(rows, seen=[]):
    seen.extend(rows)
    return seen


def tally(counts={}, *, labels=set()):
    return len(counts) + len(labels)


def build(factory=list()):
    return factory
