"""REP006 known-bad: a kernel module with side effects."""

import logging


def walk_batch(plan, draws):
    print("walking", len(plan))
    with open("trace.log") as handle:
        handle.read()
    logging.info("walked %d stages", len(plan))
    return sum(draws)
