"""REP005 known-bad: rewriting committed checkpoint bytes in place."""


def clobber(checkpoint_path, payload):
    with open(checkpoint_path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def heal_tail(checkpoint_path, offset):
    checkpoint_handle = open(checkpoint_path, "r+b")
    checkpoint_handle.seek(offset)
    checkpoint_handle.truncate()
    return checkpoint_handle
