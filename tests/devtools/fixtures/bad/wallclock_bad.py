"""REP002 known-bad: a clock read that leaks into result identity."""

import datetime
import time


def stamp_row(row):
    row.created_at = time.time()
    row.day = datetime.date.today()
    return row
