"""REP004 known-bad: a renumbered stream id and a reordered column tail."""

AGE_STREAMS = (42, 43)
TRAINED_STREAM = 52
SPOOF_STREAM = 45


def decision_columns(stages):
    columns = {}
    offset = len(stages)
    columns["intention"] = offset
    columns["override"] = offset + 1
    columns["capability"] = offset + 2
    columns["behavior"] = offset + 3
    return columns
