"""REP001 known-bad: ambient global-generator randomness."""

import random

import numpy as np
from numpy.random import default_rng


def ambient_draws(count):
    values = np.random.random(count)
    rng = np.random.default_rng()
    noise = default_rng()
    return values, rng, noise, random.randint(0, count)
