"""REP006 known-good: a pure traversal kernel — no I/O, clocks, or logging."""

import math


def stage_probability(base, habituation):
    return base * habituation


def walk_batch(plan, draws):
    total = 0.0
    for stage, draw in zip(plan, draws):
        total += stage_probability(stage, math.exp(-draw))
    return total
