"""REP007 known-good: defaults are None or immutable."""


def merge(rows, seen=None):
    seen = set() if seen is None else seen
    return [row for row in rows if row not in seen]


def tally(counts=(), base=0, label=""):
    return base + len(counts) + len(label)
