"""REP001 known-good: every generator derives from an explicit SeedSequence."""

import numpy as np


def make_stream(seed, index):
    sequence = np.random.SeedSequence([seed, index])
    return np.random.default_rng(sequence)


def make_philox(seed):
    return np.random.Generator(np.random.Philox(np.random.SeedSequence(seed)))


def spawn_children(parent_sequence, count):
    return [
        np.random.default_rng(child_sequence)
        for child_sequence in parent_sequence.spawn(count)
    ]
