"""REP004 known-good: stream ids and decision columns match the snapshot.

Appending *new* entries after the frozen block (``EXTRA_STREAM``, the
``"escalation"`` column) is always allowed.
"""

AGE_STREAMS = (42, 43)
TRAINED_STREAM = 44
SPOOF_STREAM = 45
NOISE_STREAMS = (46, 47)
DECISION_STREAM_BASE = 48

EXTRA_STREAM = 99


def decision_columns(stages):
    columns = {}
    offset = len(stages)
    columns["override"] = offset
    columns["intention"] = offset + 1
    columns["capability"] = offset + 2
    columns["behavior"] = offset + 3
    columns["escalation"] = offset + 4
    if not stages:
        return {"self_initiated": 0, "behavior": 1}
    return columns
