"""REP003 known-good: a complete provenance chain in miniature.

Mirrors the real shape: a ``SimulationConfig``, its serializer's
provenance block, the ``ResultRow`` JSON round-trip, the reproducer, and
the identity/telemetry declarations — with every field covered.
"""

import dataclasses

NON_PROVENANCE_CONFIG_FIELDS = ("attacker",)
SIMULATION_PARAMETER_NAMES = ("rounds", "chunk_workers")
TELEMETRY_ROW_FIELDS = ("chunk_workers",)
COMMON_PARAMETER_NAMES = ("rounds", "chunk_workers")
WALL_CLOCK_METRICS = ("perf:elapsed_seconds",)


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    seed: int = 0
    mode: str = "batch"
    attacker: object = None


@dataclasses.dataclass(frozen=True)
class ResultRow:
    seed: int
    mode: str
    chunk_workers: int


def simulation_result_to_dict(result):
    return {
        "provenance": {
            "seed": result.seed,
            "mode": result.mode,
            "rounds": result.rounds,
            "chunk_workers": result.chunk_workers,
        },
    }


def result_row_to_dict(row):
    return {
        "seed": row.seed,
        "mode": row.mode,
        "chunk_workers": row.chunk_workers,
    }


def result_row_from_dict(payload):
    return ResultRow(
        seed=payload["seed"],
        mode=payload["mode"],
        chunk_workers=payload["chunk_workers"],
    )


def reproduce_row(row, simulate):
    return simulate(seed=row.seed, mode=row.mode)


class Parameter:
    def __init__(self, name, kind):
        self.name = name
        self.kind = kind


def common_parameter_space():
    return (
        Parameter("rounds", int),
        Parameter("chunk_workers", int),
    )
