"""REP002 known-good: a registered telemetry-stream writer.

The module writes streams named by ``TELEMETRY_PREFIXES``, so its clock
reads land in telemetry files that checkpoint loading skips by name.
"""

import time

TELEMETRY_PREFIXES = ("scheduler-", "heartbeat-")


def heartbeat_name(worker_id):
    return f"heartbeat-{worker_id}.jsonl"


def emit_heartbeat(append_line, worker_id):
    append_line(heartbeat_name(worker_id), {"at": time.monotonic()})
