"""REP005 known-good: checkpoint files only ever grow."""


def append_row(checkpoint_path, line):
    with open(checkpoint_path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def read_rows(checkpoint_path):
    with open(checkpoint_path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def rewrite_scratch(scratch_path, payload):
    # Write modes are fine on non-checkpoint paths.
    with open(scratch_path, "w", encoding="utf-8") as handle:
        handle.write(payload)
