"""REP002 known-good: clock reads only where telemetry is registered.

``timed_run`` assigns a ``WALL_CLOCK_METRICS`` field, so its clock reads
feed declared telemetry; ``default_clock`` only *references* a clock
callable (the injectable-clock pattern), which is never flagged.
"""

import time


def timed_run(result, work):
    started = time.perf_counter()
    work()
    result.elapsed_seconds = time.perf_counter() - started
    return result


def default_clock(clock=time.monotonic):
    return clock
