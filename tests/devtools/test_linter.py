"""The invariant linter: rule framework, fixture corpus, CLI contract.

The fixture corpus under ``fixtures/`` is the executable specification of
every rule: ``good/`` must lint clean as a whole, and each ``bad/``
module must fire exactly its rule, at known lines.  The meta-test at the
bottom keeps the corpus honest — a rule nobody can demonstrate a
violation of is a rule that silently checks nothing.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import (
    Diagnostic,
    format_json,
    format_text,
    registered_rules,
    run_lint,
)

FIXTURES = Path(__file__).parent / "fixtures"
GOOD = FIXTURES / "good"
BAD = FIXTURES / "bad"
REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_RULE_IDS = (
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP007",
)


def rules_fired(diagnostics):
    return {diagnostic.rule for diagnostic in diagnostics}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_is_complete_sorted_and_documented():
    rules = registered_rules()
    assert [rule.rule_id for rule in rules] == list(ALL_RULE_IDS)
    for rule in rules:
        assert rule.title, rule.rule_id
        assert rule.contract, rule.rule_id
        assert rule.__doc__, rule.rule_id


# ---------------------------------------------------------------------------
# Known-good corpus
# ---------------------------------------------------------------------------


def test_good_corpus_is_clean():
    assert run_lint([str(GOOD)]) == []


def test_real_source_tree_is_clean():
    diagnostics = run_lint([str(REPO_ROOT / "src")])
    assert diagnostics == [], format_text(diagnostics)


# ---------------------------------------------------------------------------
# Known-bad corpus: each module fires exactly its rule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "fixture, rule_id, count",
    [
        ("rng_bad.py", "REP001", 4),
        ("wallclock_bad.py", "REP002", 2),
        ("provenance_bad.py", "REP003", 7),
        ("layout_bad.py", "REP004", 2),
        ("io_bad.py", "REP005", 4),
        ("core/pipeline.py", "REP006", 4),
        ("defaults_bad.py", "REP007", 4),
    ],
)
def test_bad_fixture_fires_only_its_rule(fixture, rule_id, count):
    diagnostics = run_lint([str(BAD / fixture)])
    assert rules_fired(diagnostics) == {rule_id}, format_text(diagnostics)
    assert len(diagnostics) == count, format_text(diagnostics)


def test_rep001_flags_exact_lines():
    diagnostics = run_lint([str(BAD / "rng_bad.py")])
    assert [(d.rule, d.line) for d in diagnostics] == [
        ("REP001", 10),
        ("REP001", 11),
        ("REP001", 12),
        ("REP001", 13),
    ]
    assert "ambient global generator" in diagnostics[0].message
    assert "SeedSequence" in diagnostics[1].message


def test_rep002_flags_exact_lines():
    diagnostics = run_lint([str(BAD / "wallclock_bad.py")])
    assert [(d.line, d.rule) for d in diagnostics] == [
        (8, "REP002"),
        (9, "REP002"),
    ]
    assert "time.time" in diagnostics[0].message
    assert "datetime.date.today" in diagnostics[1].message


def test_rep003_names_every_provenance_hole():
    messages = [d.message for d in run_lint([str(BAD / "provenance_bad.py")])]
    assert any("SimulationConfig.new_knob" in m for m in messages)
    assert any("result_row_to_dict" in m and "rounds" in m for m in messages)
    assert any("result_row_from_dict" in m and "rounds" in m for m in messages)
    assert any("reproduce_row never consumes" in m for m in messages)
    assert any("'ghost_param'" in m for m in messages)
    assert any("'missing_param'" in m for m in messages)
    assert any("'undeclared_param'" in m for m in messages)


def test_rep003_fires_when_config_grows_uncovered_field(tmp_path):
    """The acceptance scenario: add a SimulationConfig field, cover it
    nowhere — REP003 must fail the tree until the field is serialized or
    declared non-provenance."""
    source = (GOOD / "provenance_good.py").read_text(encoding="utf-8")
    grown = source.replace(
        'attacker: object = None',
        'attacker: object = None\n    brand_new_knob: float = 0.5',
    )
    assert grown != source
    target = tmp_path / "provenance_grown.py"
    target.write_text(grown, encoding="utf-8")
    diagnostics = run_lint([str(target)])
    assert rules_fired(diagnostics) == {"REP003"}
    assert any("brand_new_knob" in d.message for d in diagnostics)

    # Declaring it non-provenance clears the rule again.
    declared = grown.replace(
        'NON_PROVENANCE_CONFIG_FIELDS = ("attacker",)',
        'NON_PROVENANCE_CONFIG_FIELDS = ("attacker", "brand_new_knob")',
    )
    target.write_text(declared, encoding="utf-8")
    assert run_lint([str(target)]) == []


def test_rep004_reports_renumbered_stream_and_reordered_tail():
    diagnostics = run_lint([str(BAD / "layout_bad.py")])
    assert [(d.rule, d.line) for d in diagnostics] == [
        ("REP004", 4),
        ("REP004", 11),
    ]
    assert "TRAINED_STREAM = 52" in diagnostics[0].message
    assert "frozen suffix" in diagnostics[1].message


def test_rep005_flags_write_mode_seek_and_truncate():
    diagnostics = run_lint([str(BAD / "io_bad.py")])
    assert [(d.rule, d.line) for d in diagnostics] == [
        ("REP005", 5),
        ("REP005", 10),
        ("REP005", 11),
        ("REP005", 12),
    ]
    assert "'w'" in diagnostics[0].message
    assert ".seek()" in diagnostics[2].message
    assert ".truncate()" in diagnostics[3].message


def test_rep006_scopes_to_kernel_paths_only(tmp_path):
    """The same side-effecting source is a violation under a kernel path
    and clean under any other name — path-suffix scoping."""
    source = (BAD / "core" / "pipeline.py").read_text(encoding="utf-8")
    elsewhere = tmp_path / "helpers.py"
    elsewhere.write_text(source, encoding="utf-8")
    assert "REP006" not in rules_fired(run_lint([str(elsewhere)]))

    mirrored = tmp_path / "core" / "pipeline.py"
    mirrored.parent.mkdir()
    mirrored.write_text(source, encoding="utf-8")
    assert "REP006" in rules_fired(run_lint([str(mirrored)]))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_inline_allow_comment_suppresses_named_rule(tmp_path):
    target = tmp_path / "suppressed.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()"
        "  # repro-lint: allow REP001 — demo exemption\n",
        encoding="utf-8",
    )
    assert run_lint([str(target)]) == []


def test_standalone_allow_comment_covers_next_line(tmp_path):
    target = tmp_path / "suppressed.py"
    target.write_text(
        "import numpy as np\n"
        "# repro-lint: allow REP001 — demo exemption\n"
        "rng = np.random.default_rng()\n",
        encoding="utf-8",
    )
    assert run_lint([str(target)]) == []


def test_allow_comment_for_other_rule_does_not_suppress(tmp_path):
    target = tmp_path / "suppressed.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro-lint: allow REP002 — wrong id\n",
        encoding="utf-8",
    )
    assert rules_fired(run_lint([str(target)])) == {"REP001"}


# ---------------------------------------------------------------------------
# Output formats
# ---------------------------------------------------------------------------


def test_json_payload_shape():
    diagnostics = run_lint([str(BAD / "rng_bad.py")])
    payload = json.loads(format_json(diagnostics))
    assert set(payload) == {"tool", "count", "diagnostics"}
    assert payload["tool"] == "repro.devtools"
    assert payload["count"] == len(diagnostics) == len(payload["diagnostics"])
    for entry in payload["diagnostics"]:
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "REP001"
        assert entry["path"].endswith("rng_bad.py")
        assert isinstance(entry["line"], int) and entry["line"] > 0


def test_text_format_is_stable():
    clean = format_text([])
    assert clean == "repro-lint: clean"
    rendered = format_text(
        [Diagnostic(rule="REP001", path="a.py", line=3, col=4, message="boom")]
    )
    assert rendered.splitlines() == [
        "a.py:3:4: REP001 boom",
        "repro-lint: 1 violation(s)",
    ]


# ---------------------------------------------------------------------------
# Meta: the corpus proves every rule can fire
# ---------------------------------------------------------------------------


def test_every_registered_rule_fires_on_the_bad_corpus():
    fired = rules_fired(run_lint([str(BAD)]))
    missing = {rule.rule_id for rule in registered_rules()} - fired
    assert not missing, f"rules with no failing fixture: {sorted(missing)}"


def test_every_rule_has_a_good_and_bad_fixture_file():
    good_names = {path.name for path in GOOD.rglob("*.py")}
    bad_names = {path.name for path in BAD.rglob("*.py")}
    assert {"rng_good.py", "wallclock_good.py", "provenance_good.py",
            "layout_good.py", "io_good.py", "pipeline.py",
            "defaults_good.py"} <= good_names
    assert {"rng_bad.py", "wallclock_bad.py", "provenance_bad.py",
            "layout_bad.py", "io_bad.py", "pipeline.py",
            "defaults_bad.py"} <= bad_names


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args):
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools", *args],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )


def test_cli_exit_zero_on_clean_tree():
    result = run_cli("lint", str(GOOD))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "repro-lint: clean" in result.stdout


def test_cli_exit_one_with_json_on_violations():
    result = run_cli("lint", str(BAD / "rng_bad.py"), "--format", "json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["count"] == 4
    assert all(d["rule"] == "REP001" for d in payload["diagnostics"])


def test_cli_rule_selection_and_unknown_rule():
    only_io = run_cli(
        "lint", str(BAD), "--rules", "REP005", "--format", "json"
    )
    assert only_io.returncode == 1
    payload = json.loads(only_io.stdout)
    assert {d["rule"] for d in payload["diagnostics"]} == {"REP005"}

    unknown = run_cli("lint", str(BAD), "--rules", "REP999")
    assert unknown.returncode == 2
    assert "unknown rule" in unknown.stderr


def test_cli_rules_listing():
    result = run_cli("rules")
    assert result.returncode == 0
    for rule_id in ALL_RULE_IDS:
        assert rule_id in result.stdout


def test_cli_missing_target_is_usage_error(tmp_path):
    result = run_cli("lint", str(tmp_path / "nope.txt"))
    assert result.returncode == 2
