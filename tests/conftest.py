"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    Communication,
    CommunicationType,
    Environment,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    HumanSecurityTask,
    SecureSystem,
    StimulusKind,
    TaskDesign,
    expert_receiver,
    novice_receiver,
    typical_receiver,
)
from repro.core.receiver import Capabilities
from repro.simulation import SimulationRng


@pytest.fixture
def severe_hazard() -> HazardProfile:
    """A severe hazard for which user action is critical."""
    return HazardProfile(
        severity=HazardSeverity.HIGH,
        frequency=HazardFrequency.OCCASIONAL,
        user_action_necessity=0.9,
        description="test hazard",
    )


@pytest.fixture
def blocking_warning(severe_hazard: HazardProfile) -> Communication:
    """A clear, blocking warning with instructions."""
    return Communication(
        name="test-blocking-warning",
        comm_type=CommunicationType.WARNING,
        activeness=1.0,
        hazard=severe_hazard,
        clarity=0.8,
        includes_instructions=True,
        conspicuity=0.9,
    )


@pytest.fixture
def passive_indicator(severe_hazard: HazardProfile) -> Communication:
    """A subtle passive indicator for the same hazard."""
    return Communication(
        name="test-passive-indicator",
        comm_type=CommunicationType.STATUS_INDICATOR,
        activeness=0.1,
        hazard=severe_hazard,
        clarity=0.3,
        conspicuity=0.2,
    )


@pytest.fixture
def busy_environment() -> Environment:
    """A distracting environment with a demanding primary task."""
    environment = Environment(description="busy")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.7, "primary task")
    environment.add_stimulus(StimulusKind.UNRELATED_COMMUNICATION, 0.3, "notifications")
    return environment


@pytest.fixture
def warning_task(blocking_warning: Communication, busy_environment: Environment) -> HumanSecurityTask:
    """A simple security-critical task triggered by the blocking warning."""
    return HumanSecurityTask(
        name="heed-test-warning",
        description="Heed the warning and leave.",
        communication=blocking_warning,
        task_design=TaskDesign(steps=1, controls_discoverable=0.9, feedback_quality=0.8),
        environment=busy_environment,
        receivers=[typical_receiver(), novice_receiver(), expert_receiver()],
        desired_action="leave the hazardous site",
        failure_consequence="credentials stolen",
    )


@pytest.fixture
def memory_task(passive_indicator: Communication) -> HumanSecurityTask:
    """A task whose capability requirements exceed typical memory capacity."""
    return HumanSecurityTask(
        name="remember-many-secrets",
        description="Remember many random secrets.",
        communication=passive_indicator,
        capability_requirements=Capabilities(
            knowledge_to_act=0.2,
            cognitive_skill=0.2,
            physical_skill=0.1,
            memory_capacity=0.9,
            has_required_software=False,
            has_required_device=False,
        ),
        desired_action="recall every secret on demand",
    )


@pytest.fixture
def small_system(warning_task: HumanSecurityTask, memory_task: HumanSecurityTask) -> SecureSystem:
    """A two-task system used by analysis/process tests."""
    return SecureSystem(
        name="test-system",
        description="two-task test system",
        tasks=[warning_task, memory_task],
    )


@pytest.fixture
def rng() -> SimulationRng:
    return SimulationRng(seed=1234)
