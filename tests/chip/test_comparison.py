"""Tests for the HILP-vs-C-HIP structural comparison (Section 4 claims)."""

import pytest

from repro.chip.comparison import MappingKind, compare_with_framework
from repro.chip.model import CHIPStage
from repro.core.components import Component


class TestComparison:
    def test_every_framework_component_mapped(self):
        result = compare_with_framework()
        mapped = {mapping.component for mapping in result.mappings}
        assert mapped == set(Component)

    def test_capabilities_and_interference_are_added(self):
        result = compare_with_framework()
        added = set(result.added_components())
        assert added == {Component.CAPABILITIES, Component.INTERFERENCE}

    def test_added_components_have_no_chip_stage(self):
        result = compare_with_framework()
        for component in result.added_components():
            assert result.mapping_for(component).chip_stages == ()

    def test_attention_stages_map_directly(self):
        result = compare_with_framework()
        assert result.mapping_for(Component.ATTENTION_SWITCH).kind is MappingKind.DIRECT
        assert result.mapping_for(Component.ATTENTION_MAINTENANCE).kind is MappingKind.DIRECT

    def test_knowledge_stages_split_from_comprehension_memory(self):
        result = compare_with_framework()
        for component in (
            Component.COMPREHENSION,
            Component.KNOWLEDGE_ACQUISITION,
            Component.KNOWLEDGE_RETENTION,
            Component.KNOWLEDGE_TRANSFER,
        ):
            mapping = result.mapping_for(component)
            assert mapping.kind is MappingKind.SPLIT
            assert CHIPStage.COMPREHENSION_MEMORY in mapping.chip_stages

    def test_communication_generalized(self):
        result = compare_with_framework()
        assert result.mapping_for(Component.COMMUNICATION).kind is MappingKind.GENERALIZED

    def test_coverage_counts_sum_to_component_count(self):
        result = compare_with_framework()
        counts = result.coverage_counts()
        assert sum(counts.values()) == len(list(Component))
        assert counts[MappingKind.ADDED] == 2

    def test_unmapped_chip_stages_is_only_delivery(self):
        result = compare_with_framework()
        assert result.unmapped_chip_stages() == [CHIPStage.DELIVERY]

    def test_summary_mentions_added_components(self):
        summary = compare_with_framework().summary()
        assert "Capabilities" in summary
        assert "Interference" in summary

    def test_every_mapping_has_rationale(self):
        for mapping in compare_with_framework().mappings:
            assert len(mapping.rationale) > 10

    def test_mapping_for_unknown_component_raises(self):
        result = compare_with_framework()
        with pytest.raises(KeyError):
            result.mapping_for("not-a-component")
