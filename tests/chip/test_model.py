"""Tests for the C-HIP model encoding (Figure 3)."""

import networkx as nx
import pytest

from repro.chip.model import CHIP_STAGE_ORDER, CHIPModel, CHIPStage


class TestCHIPStages:
    def test_ten_elements(self):
        assert len(list(CHIPStage)) == 10

    def test_receiver_stages_are_five(self):
        assert len(CHIPModel.receiver_stages()) == 5

    def test_processing_order_ends_at_behavior(self):
        assert CHIP_STAGE_ORDER[-1] is CHIPStage.BEHAVIOR
        assert CHIP_STAGE_ORDER[0] is CHIPStage.ATTENTION_SWITCH

    def test_source_and_channel_not_receiver_stages(self):
        assert not CHIPStage.SOURCE.is_receiver_stage
        assert not CHIPStage.CHANNEL.is_receiver_stage
        assert CHIPStage.MOTIVATION.is_receiver_stage

    def test_every_stage_has_description(self):
        for stage in CHIPStage:
            assert len(stage.description) > 10


class TestCHIPGraph:
    def test_graph_has_all_stages(self):
        graph = CHIPModel.graph()
        assert set(graph.nodes) == {stage.value for stage in CHIPStage}

    def test_linear_chain_present(self):
        graph = CHIPModel.graph()
        for earlier, later in zip(CHIP_STAGE_ORDER, CHIP_STAGE_ORDER[1:]):
            assert graph.has_edge(earlier.value, later.value)

    def test_feedback_edge_to_source(self):
        graph = CHIPModel.graph()
        assert graph.has_edge(CHIPStage.BEHAVIOR.value, CHIPStage.SOURCE.value)
        assert graph.edges[CHIPStage.BEHAVIOR.value, CHIPStage.SOURCE.value]["kind"] == "feedback"

    def test_acyclic_without_feedback(self):
        graph = CHIPModel.graph()
        stripped = nx.DiGraph(
            (source, target)
            for source, target, data in graph.edges(data=True)
            if data.get("kind") != "feedback"
        )
        assert nx.is_directed_acyclic_graph(stripped)

    def test_model_declares_linearity(self):
        assert CHIPModel.is_linear()
