"""Domain binders for the previously binder-less scenarios (ISSUEs 4, 5).

``ssl-indicator`` and ``email-attachments`` gained typed domain
parameters in ISSUE 4; ``smartcard``, ``file-permissions``, and
``graphical-passwords`` follow in ISSUE 5 — all seven scenarios are now
bindable and sweepable through the experiment backends.
"""

import pytest

from repro.core.exceptions import ModelError
from repro.experiments import Experiment, SweepSpec
from repro.systems import get_scenario

SEED = 20260726


class TestSslIndicatorBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("ssl-indicator").parameter_space().names()
        assert "habituation_exposures" in names
        assert "spoofing_capability" in names
        assert "conspicuity" in names
        # Common knobs still present.
        assert "rounds" in names and "dismiss_weight" in names

    def test_default_bind_reproduces_base_scenario(self):
        base = get_scenario("ssl-indicator")
        bound = base.bind()
        assert (
            bound.analyze().mean_success_probability()
            == base.analyze().mean_success_probability()
        )
        a = base.simulate(300, seed=SEED)
        b = bound.simulate(300, seed=SEED)
        assert a.outcome_counts() == b.outcome_counts()

    def test_spoofing_capability_drives_spoof_rate(self):
        scenario = get_scenario("ssl-indicator")
        honest = scenario.bind(spoofing_capability=0.0).simulate(1_000, seed=SEED)
        hostile = scenario.bind(spoofing_capability=0.8).simulate(1_000, seed=SEED)
        assert honest.spoofed_rate() == 0.0
        assert hostile.spoofed_rate() > 0.5

    def test_fresh_indicator_gets_noticed_more(self):
        scenario = get_scenario("ssl-indicator")
        worn = scenario.bind(habituation_exposures=200).simulate(2_000, seed=SEED)
        fresh = scenario.bind(habituation_exposures=0, conspicuity=0.9).simulate(
            2_000, seed=SEED
        )
        assert fresh.notice_rate() > worn.notice_rate()

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ModelError):
            get_scenario("ssl-indicator").bind(spoofing_capability=1.5)
        with pytest.raises(ModelError):
            get_scenario("ssl-indicator").bind(habituation_exposures=-1)

    def test_sweepable_through_experiments(self):
        # The default lock icon is so inconspicuous the notice probability
        # sits on the model floor; a conspicuous variant gives the
        # habituation axis headroom to matter.
        sweep = SweepSpec(
            scenario="ssl-indicator",
            grid={"habituation_exposures": [0, 100]},
            base={"spoofing_capability": 0.0, "conspicuity": 0.9},
        )
        results = Experiment.from_sweep(
            "ssl-habituation", sweep, n_receivers=1_000, seed=SEED,
            seed_strategy="shared",
        ).run()
        notice = results.metric_by_variant("notice_rate")
        assert notice["habituation_exposures=0"] > notice["habituation_exposures=100"]


class TestEmailAttachmentsBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("email-attachments").parameter_space().names()
        assert "interactive_training" in names
        assert "training_clarity" in names
        assert "refresher_exposures" in names

    def test_interactive_training_outperforms_handbook(self):
        scenario = get_scenario("email-attachments")
        handbook = scenario.bind(interactive_training=False).simulate(2_000, seed=SEED)
        interactive = scenario.bind(interactive_training=True).simulate(2_000, seed=SEED)
        assert interactive.protection_rate() > handbook.protection_rate()

    def test_bound_task_matches_training_variant(self):
        variant = get_scenario("email-attachments").bind(interactive_training=True)
        assert variant.task().name == "judge-email-attachment-interactive-training"
        assert variant.task().communication.name.endswith("-interactive")

    def test_training_clarity_override_applies(self):
        variant = get_scenario("email-attachments").bind(training_clarity=0.95)
        assert variant.task().communication.clarity == 0.95

    def test_refresher_exposures_habituate(self):
        variant = get_scenario("email-attachments").bind(refresher_exposures=50)
        assert variant.task().communication.habituation_exposures == 50

    def test_batch_reference_equivalence_for_bound_variant(self):
        variant = get_scenario("email-attachments").bind(interactive_training=True)
        batch = variant.simulate(400, seed=SEED, mode="batch")
        reference = variant.simulate(400, seed=SEED, mode="reference")
        assert batch.outcome_counts() == reference.outcome_counts()
        assert batch.stage_failure_counts() == reference.stage_failure_counts()

    def test_sweepable_with_common_knobs(self):
        sweep = SweepSpec(
            scenario="email-attachments",
            grid={"interactive_training": [False, True]},
            base={"training_fraction": 1.0},
        )
        results = Experiment.from_sweep(
            "training-design", sweep, n_receivers=500, seed=SEED
        ).run()
        assert len(results) == 2
        for row in results.rows:
            assert row.params["training_fraction"] == 1.0


class TestSmartcardBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("smartcard").parameter_space().names()
        assert "improved_design" in names
        assert "instruction_clarity" in names
        assert "removal_pressure" in names
        # Common knobs still present.
        assert "rounds" in names and "training_fraction" in names

    def test_default_bind_simulates_like_base_scenario(self):
        base = get_scenario("smartcard")
        a = base.simulate(300, seed=SEED)
        b = base.bind().simulate(300, seed=SEED)
        assert a.outcome_counts() == b.outcome_counts()

    def test_improved_design_narrows_the_gulfs(self):
        scenario = get_scenario("smartcard")
        stock = scenario.bind(improved_design=False).simulate(2_000, seed=SEED)
        improved = scenario.bind(improved_design=True).simulate(2_000, seed=SEED)
        assert improved.protection_rate() > stock.protection_rate()

    def test_bound_task_matches_design_variant(self):
        variant = get_scenario("smartcard").bind(improved_design=True)
        assert variant.task().name == "insert-smartcard-improved"
        assert variant.task().communication.name.endswith("-improved")

    def test_instruction_clarity_override_applies(self):
        variant = get_scenario("smartcard").bind(instruction_clarity=0.95)
        assert variant.task().communication.clarity == 0.95

    def test_removal_pressure_shapes_the_removal_task(self):
        variant = get_scenario("smartcard").bind(removal_pressure=0.2)
        remove = variant.task("remove-smartcard-on-leaving")
        assert remove.environment.stimuli[0].intensity == 0.2

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ModelError):
            get_scenario("smartcard").bind(instruction_clarity=1.5)
        with pytest.raises(ModelError):
            get_scenario("smartcard").bind(removal_pressure=-0.1)


class TestFilePermissionsBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("file-permissions").parameter_space().names()
        assert "improved_interface" in names
        assert "feedback_quality" in names
        assert "deadline_pressure" in names

    def test_default_bind_simulates_like_base_scenario(self):
        base = get_scenario("file-permissions")
        a = base.simulate(300, seed=SEED)
        b = base.bind().simulate(300, seed=SEED)
        assert a.outcome_counts() == b.outcome_counts()

    def test_effective_permissions_view_closes_the_evaluation_gulf(self):
        scenario = get_scenario("file-permissions")
        stock = scenario.bind(improved_interface=False).simulate(2_000, seed=SEED)
        improved = scenario.bind(improved_interface=True).simulate(2_000, seed=SEED)
        assert improved.protection_rate() > stock.protection_rate()

    def test_feedback_quality_override_applies(self):
        variant = get_scenario("file-permissions").bind(feedback_quality=0.9)
        assert variant.task().task_design.feedback_quality == 0.9

    def test_sweepable_through_experiments(self):
        sweep = SweepSpec(
            scenario="file-permissions",
            grid={"improved_interface": [False, True]},
        )
        results = Experiment.from_sweep(
            "permissions-interface", sweep, n_receivers=800, seed=SEED,
            seed_strategy="shared",
        ).run()
        protection = results.metric_by_variant("protection_rate")
        assert (
            protection["improved_interface=True"]
            > protection["improved_interface=False"]
        )


class TestGraphicalPasswordsBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("graphical-passwords").parameter_space().names()
        assert "scheme" in names
        assert "choice_predictability" in names
        assert "guidance_conspicuity" in names

    def test_default_bind_simulates_like_base_scenario(self):
        base = get_scenario("graphical-passwords")
        a = base.simulate(300, seed=SEED)
        b = base.bind().simulate(300, seed=SEED)
        assert a.outcome_counts() == b.outcome_counts()

    def test_bound_task_matches_scheme(self):
        variant = get_scenario("graphical-passwords").bind(scheme="click_based")
        assert variant.task().name == "choose-graphical-password-click_based"

    def test_constraining_choices_reduces_predictable_behavior(self):
        scenario = get_scenario("graphical-passwords")
        free = scenario.bind(scheme="click_based").simulate(2_000, seed=SEED)
        constrained = scenario.bind(scheme="click_based_constrained").simulate(
            2_000, seed=SEED
        )
        assert constrained.protection_rate() > free.protection_rate()

    def test_choice_predictability_override_applies(self):
        variant = get_scenario("graphical-passwords").bind(choice_predictability=0.05)
        assert variant.task().task_design.choice_predictability == 0.05

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ModelError):
            get_scenario("graphical-passwords").bind(scheme="textual")

    def test_sweepable_through_experiments(self):
        sweep = SweepSpec(
            scenario="graphical-passwords",
            grid={"scheme": ["face_based", "click_based", "click_based_constrained"]},
        )
        results = Experiment.from_sweep(
            "scheme-predictability", sweep, n_receivers=500, seed=SEED
        ).run()
        assert len(results) == 3


class TestRegistryCoverage:
    def test_every_scenario_now_has_a_domain_binder(self):
        from repro.systems.scenario import all_scenarios

        without_binders = [
            name
            for name, scenario in all_scenarios().items()
            if getattr(scenario, "binder", None) is None
        ]
        assert without_binders == []
