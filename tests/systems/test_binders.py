"""Domain binders for the previously binder-less scenarios (ISSUE 4).

``ssl-indicator`` and ``email-attachments`` now expose typed domain
parameters, so their system-specific knobs are bindable and sweepable
like the passwords and anti-phishing scenarios.
"""

import pytest

from repro.core.exceptions import ModelError
from repro.experiments import Experiment, SweepSpec
from repro.systems import get_scenario

SEED = 20260726


class TestSslIndicatorBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("ssl-indicator").parameter_space().names()
        assert "habituation_exposures" in names
        assert "spoofing_capability" in names
        assert "conspicuity" in names
        # Common knobs still present.
        assert "rounds" in names and "dismiss_weight" in names

    def test_default_bind_reproduces_base_scenario(self):
        base = get_scenario("ssl-indicator")
        bound = base.bind()
        assert (
            bound.analyze().mean_success_probability()
            == base.analyze().mean_success_probability()
        )
        a = base.simulate(300, seed=SEED)
        b = bound.simulate(300, seed=SEED)
        assert a.outcome_counts() == b.outcome_counts()

    def test_spoofing_capability_drives_spoof_rate(self):
        scenario = get_scenario("ssl-indicator")
        honest = scenario.bind(spoofing_capability=0.0).simulate(1_000, seed=SEED)
        hostile = scenario.bind(spoofing_capability=0.8).simulate(1_000, seed=SEED)
        assert honest.spoofed_rate() == 0.0
        assert hostile.spoofed_rate() > 0.5

    def test_fresh_indicator_gets_noticed_more(self):
        scenario = get_scenario("ssl-indicator")
        worn = scenario.bind(habituation_exposures=200).simulate(2_000, seed=SEED)
        fresh = scenario.bind(habituation_exposures=0, conspicuity=0.9).simulate(
            2_000, seed=SEED
        )
        assert fresh.notice_rate() > worn.notice_rate()

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ModelError):
            get_scenario("ssl-indicator").bind(spoofing_capability=1.5)
        with pytest.raises(ModelError):
            get_scenario("ssl-indicator").bind(habituation_exposures=-1)

    def test_sweepable_through_experiments(self):
        # The default lock icon is so inconspicuous the notice probability
        # sits on the model floor; a conspicuous variant gives the
        # habituation axis headroom to matter.
        sweep = SweepSpec(
            scenario="ssl-indicator",
            grid={"habituation_exposures": [0, 100]},
            base={"spoofing_capability": 0.0, "conspicuity": 0.9},
        )
        results = Experiment.from_sweep(
            "ssl-habituation", sweep, n_receivers=1_000, seed=SEED,
            seed_strategy="shared",
        ).run()
        notice = results.metric_by_variant("notice_rate")
        assert notice["habituation_exposures=0"] > notice["habituation_exposures=100"]


class TestEmailAttachmentsBinder:
    def test_scenario_exposes_domain_parameters(self):
        names = get_scenario("email-attachments").parameter_space().names()
        assert "interactive_training" in names
        assert "training_clarity" in names
        assert "refresher_exposures" in names

    def test_interactive_training_outperforms_handbook(self):
        scenario = get_scenario("email-attachments")
        handbook = scenario.bind(interactive_training=False).simulate(2_000, seed=SEED)
        interactive = scenario.bind(interactive_training=True).simulate(2_000, seed=SEED)
        assert interactive.protection_rate() > handbook.protection_rate()

    def test_bound_task_matches_training_variant(self):
        variant = get_scenario("email-attachments").bind(interactive_training=True)
        assert variant.task().name == "judge-email-attachment-interactive-training"
        assert variant.task().communication.name.endswith("-interactive")

    def test_training_clarity_override_applies(self):
        variant = get_scenario("email-attachments").bind(training_clarity=0.95)
        assert variant.task().communication.clarity == 0.95

    def test_refresher_exposures_habituate(self):
        variant = get_scenario("email-attachments").bind(refresher_exposures=50)
        assert variant.task().communication.habituation_exposures == 50

    def test_batch_reference_equivalence_for_bound_variant(self):
        variant = get_scenario("email-attachments").bind(interactive_training=True)
        batch = variant.simulate(400, seed=SEED, mode="batch")
        reference = variant.simulate(400, seed=SEED, mode="reference")
        assert batch.outcome_counts() == reference.outcome_counts()
        assert batch.stage_failure_counts() == reference.stage_failure_counts()

    def test_sweepable_with_common_knobs(self):
        sweep = SweepSpec(
            scenario="email-attachments",
            grid={"interactive_training": [False, True]},
            base={"training_fraction": 1.0},
        )
        results = Experiment.from_sweep(
            "training-design", sweep, n_receivers=500, seed=SEED
        ).run()
        assert len(results) == 2
        for row in results.rows:
            assert row.params["training_fraction"] == 1.0


class TestRegistryCoverage:
    def test_majority_of_scenarios_now_have_domain_binders(self):
        from repro.systems.scenario import all_scenarios

        with_binders = [
            name
            for name, scenario in all_scenarios().items()
            if getattr(scenario, "binder", None) is not None
        ]
        assert {"passwords", "antiphishing", "ssl-indicator", "email-attachments"} <= set(
            with_binders
        )
