"""Tests for the system catalog and builder registry."""

import pytest

from repro.core.exceptions import ModelError
from repro.core.task import SecureSystem
from repro.systems import all_systems, available_systems, build, builder_for, system_descriptions
from repro.systems.base import register_system


class TestCatalog:
    def test_expected_systems_registered(self):
        names = available_systems()
        for expected in (
            "antiphishing",
            "passwords",
            "ssl-indicator",
            "email-attachments",
            "smartcard",
            "file-permissions",
            "graphical-passwords",
        ):
            assert expected in names

    def test_build_by_name(self):
        system = build("antiphishing")
        assert isinstance(system, SecureSystem)
        assert len(system) > 0

    def test_build_unknown_raises(self):
        with pytest.raises(ModelError):
            build("does-not-exist")

    def test_builder_for_describes_system(self):
        builder = builder_for("passwords")
        assert "password" in builder.description.lower()

    def test_all_systems_builds_everything(self):
        systems = all_systems()
        assert set(systems) == set(available_systems())
        for system in systems.values():
            system.validate()

    def test_system_descriptions_nonempty(self):
        descriptions = system_descriptions()
        assert set(descriptions) == set(available_systems())
        assert all(description for description in descriptions.values())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError):
            register_system("antiphishing", "duplicate")(lambda: SecureSystem(name="x"))

    def test_every_registered_system_has_security_critical_tasks(self):
        for system in all_systems().values():
            assert system.security_critical_tasks()
