"""Tests for the scenario registry unifying the modeled systems."""

import pytest

from repro.core.analysis import SystemAnalysis
from repro.core.exceptions import ModelError
from repro.simulation.calibration import StageCalibration
from repro.simulation.metrics import SimulationResult
from repro.simulation.population import PopulationSpec, general_web_population
from repro.systems import (
    Scenario,
    ScenarioLike,
    all_scenarios,
    available_scenarios,
    available_systems,
    get_scenario,
    register_scenario,
)
from repro.systems.scenario import _SCENARIOS


class TestRegistry:
    def test_every_system_has_a_scenario(self):
        assert available_scenarios() == available_systems()

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ModelError):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("antiphishing")
        with pytest.raises(ModelError):
            register_scenario(scenario)

    def test_registered_objects_satisfy_protocol(self):
        for scenario in all_scenarios().values():
            assert isinstance(scenario, ScenarioLike)

    def test_custom_scenario_roundtrip(self, warning_task):
        from repro.core.task import SecureSystem

        scenario = Scenario(
            name="test-custom-scenario",
            description="custom",
            system_factory=lambda: SecureSystem(
                name="custom-system", tasks=[warning_task]
            ),
            population_factory=general_web_population,
        )
        register_scenario(scenario)
        try:
            assert get_scenario("test-custom-scenario") is scenario
            result = scenario.simulate(100, seed=3)
            assert result.n_receivers == 100
        finally:
            _SCENARIOS.pop("test-custom-scenario")


class TestScenarioComponents:
    def test_components_have_expected_types(self):
        for scenario in all_scenarios().values():
            assert isinstance(scenario.population(), PopulationSpec)
            assert isinstance(scenario.calibration(), StageCalibration)
            assert scenario.tasks(), scenario.name

    def test_calibrations_anchor_case_studies(self):
        assert get_scenario("antiphishing").calibration().label != "neutral"
        assert get_scenario("smartcard").calibration().label == "neutral"

    def test_default_task_is_first_critical(self):
        scenario = get_scenario("antiphishing")
        assert scenario.task().name == scenario.tasks()[0].name

    def test_task_lookup_by_name(self):
        scenario = get_scenario("antiphishing")
        named = scenario.task("heed-ie_passive-warning")
        assert named.name == "heed-ie_passive-warning"


class TestScenarioPaths:
    """Any scenario drops into either the analytic or the simulated path."""

    @pytest.mark.parametrize("name", ["antiphishing", "passwords", "ssl-indicator"])
    def test_analytic_path(self, name):
        analysis = get_scenario(name).analyze()
        assert isinstance(analysis, SystemAnalysis)
        assert analysis.task_analyses

    @pytest.mark.parametrize("name", ["antiphishing", "ssl-indicator", "smartcard"])
    def test_simulated_path(self, name):
        result = get_scenario(name).simulate(200, seed=11)
        assert isinstance(result, SimulationResult)
        assert result.n_receivers == 200
        assert 0.0 <= result.protection_rate() <= 1.0

    def test_simulated_modes_agree(self):
        scenario = get_scenario("antiphishing")
        batch = scenario.simulate(300, seed=5, mode="batch")
        reference = scenario.simulate(300, seed=5, mode="reference")
        assert batch.stage_failure_counts() == reference.stage_failure_counts()
        assert batch.protection_rate() == reference.protection_rate()

    def test_simulate_respects_config_overrides(self):
        scenario = get_scenario("antiphishing")
        result = scenario.simulate(
            150, seed=2, calibration=StageCalibration(label="override")
        )
        assert result.calibration_label == "override"
