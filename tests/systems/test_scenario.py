"""Tests for the scenario registry unifying the modeled systems."""

import pytest

from repro.core.analysis import SystemAnalysis
from repro.core.exceptions import ModelError
from repro.simulation.calibration import StageCalibration
from repro.simulation.metrics import SimulationResult
from repro.simulation.population import PopulationSpec, general_web_population
from repro.systems import (
    Scenario,
    ScenarioLike,
    all_scenarios,
    available_scenarios,
    available_systems,
    get_scenario,
    register_scenario,
)
from repro.systems.scenario import _SCENARIOS


class TestRegistry:
    def test_every_system_has_a_scenario(self):
        assert available_scenarios() == available_systems()

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ModelError):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("antiphishing")
        with pytest.raises(ModelError):
            register_scenario(scenario)

    def test_registered_objects_satisfy_protocol(self):
        for scenario in all_scenarios().values():
            assert isinstance(scenario, ScenarioLike)

    def test_custom_scenario_roundtrip(self, warning_task):
        from repro.core.task import SecureSystem

        scenario = Scenario(
            name="test-custom-scenario",
            description="custom",
            system_factory=lambda: SecureSystem(
                name="custom-system", tasks=[warning_task]
            ),
            population_factory=general_web_population,
        )
        register_scenario(scenario)
        try:
            assert get_scenario("test-custom-scenario") is scenario
            result = scenario.simulate(100, seed=3)
            assert result.n_receivers == 100
        finally:
            _SCENARIOS.pop("test-custom-scenario")


class TestScenarioComponents:
    def test_components_have_expected_types(self):
        for scenario in all_scenarios().values():
            assert isinstance(scenario.population(), PopulationSpec)
            assert isinstance(scenario.calibration(), StageCalibration)
            assert scenario.tasks(), scenario.name

    def test_calibrations_anchor_case_studies(self):
        assert get_scenario("antiphishing").calibration().label != "neutral"
        assert get_scenario("smartcard").calibration().label == "neutral"

    def test_default_task_is_first_critical(self):
        scenario = get_scenario("antiphishing")
        assert scenario.task().name == scenario.tasks()[0].name

    def test_task_lookup_by_name(self):
        scenario = get_scenario("antiphishing")
        named = scenario.task("heed-ie_passive-warning")
        assert named.name == "heed-ie_passive-warning"


class TestScenarioPaths:
    """Any scenario drops into either the analytic or the simulated path."""

    @pytest.mark.parametrize("name", ["antiphishing", "passwords", "ssl-indicator"])
    def test_analytic_path(self, name):
        analysis = get_scenario(name).analyze()
        assert isinstance(analysis, SystemAnalysis)
        assert analysis.task_analyses

    @pytest.mark.parametrize("name", ["antiphishing", "ssl-indicator", "smartcard"])
    def test_simulated_path(self, name):
        result = get_scenario(name).simulate(200, seed=11)
        assert isinstance(result, SimulationResult)
        assert result.n_receivers == 200
        assert 0.0 <= result.protection_rate() <= 1.0

    def test_simulated_modes_agree(self):
        scenario = get_scenario("antiphishing")
        batch = scenario.simulate(300, seed=5, mode="batch")
        reference = scenario.simulate(300, seed=5, mode="reference")
        assert batch.stage_failure_counts() == reference.stage_failure_counts()
        assert batch.protection_rate() == reference.protection_rate()

    def test_simulate_respects_config_overrides(self):
        scenario = get_scenario("antiphishing")
        result = scenario.simulate(
            150, seed=2, calibration=StageCalibration(label="override")
        )
        assert result.calibration_label == "override"


class TestParameterizedScenarios:
    """Scenarios accept typed parameter overrides via bind()."""

    def test_bind_without_overrides_matches_base_components(self):
        scenario = get_scenario("passwords")
        variant = scenario.bind()
        assert variant.params == {}
        assert variant.name == "passwords"
        assert [task.name for task in variant.tasks()] == [
            task.name for task in scenario.tasks()
        ]
        assert variant.calibration().label == scenario.calibration().label
        assert (
            variant.population().training_fraction
            == scenario.population().training_fraction
        )

    def test_bind_validates_types_and_names(self):
        scenario = get_scenario("passwords")
        with pytest.raises(ModelError):
            scenario.bind(not_a_parameter=1)
        with pytest.raises(ModelError):
            scenario.bind(distinct_accounts=-3)
        with pytest.raises(ModelError):
            scenario.bind(single_sign_on="yes")

    def test_custom_parameters_flow_into_the_policy(self):
        variant = get_scenario("passwords").bind(distinct_accounts=16, expiry_days=None)
        assert variant.params == {"distinct_accounts": 16, "expiry_days": None}
        recall = variant.task("recall-passwords")
        baseline_recall = get_scenario("passwords").bind().task("recall-passwords")
        # More accounts without expiry still demands more memory than baseline.
        assert (
            recall.capability_requirements.memory_capacity
            > baseline_recall.capability_requirements.memory_capacity
        )

    def test_common_parameters_apply_to_any_scenario(self):
        variant = get_scenario("smartcard").bind(
            training_fraction=0.75, user_noise_std=0.0, intention_multiplier=1.5
        )
        assert variant.population().training_fraction == 0.75
        assert variant.calibration().user_noise_std == 0.0
        assert variant.calibration().intention_multiplier == 1.5

    def test_antiphishing_variant_and_activeness(self):
        variant = get_scenario("antiphishing").bind(variant="ie_passive", activeness=0.9)
        task = variant.task()
        assert task.name == "heed-ie_passive-warning"
        assert task.communication.activeness == 0.9

    def test_task_prefix_match_is_unique_or_fails(self):
        variant = get_scenario("passwords").bind(password_vault=True)
        assert variant.task("recall-passwords").name.startswith("recall-passwords[")
        with pytest.raises(ModelError):
            variant.task("re")  # matches recall- and refrain-
        with pytest.raises(ModelError):
            variant.task("no-such-task")

    def test_rebinding_layers_overrides(self):
        variant = get_scenario("passwords").bind(single_sign_on=True)
        layered = variant.bind(training_fraction=0.9)
        assert layered.params == {"single_sign_on": True, "training_fraction": 0.9}
        assert layered.population().training_fraction == 0.9

    def test_variant_satisfies_scenario_protocol(self):
        variant = get_scenario("antiphishing").bind(activeness=0.5)
        assert isinstance(variant, ScenarioLike)

    def test_bound_variant_batch_reference_equivalence(self):
        """Parameterized variants keep the exact batch/reference agreement."""
        for overrides in (
            {"single_sign_on": True},
            {"distinct_accounts": 16, "training_fraction": 0.8},
        ):
            variant = get_scenario("passwords").bind(**overrides)
            batch = variant.simulate(300, seed=5, task="recall-passwords", mode="batch")
            reference = variant.simulate(
                300, seed=5, task="recall-passwords", mode="reference"
            )
            assert batch.stage_failure_counts() == reference.stage_failure_counts()
            assert batch.outcome_counts() == reference.outcome_counts()
            assert batch.protection_rate() == reference.protection_rate()
            assert batch.capability_failure_rate() == reference.capability_failure_rate()

    def test_inapplicable_knobs_rejected_at_bind_time(self):
        scenario = get_scenario("antiphishing")
        # The no-warning baseline has no communication to modulate.
        with pytest.raises(ModelError):
            scenario.bind(variant="no_warning", activeness=0.9)
        with pytest.raises(ModelError):
            scenario.bind(variant="no_warning", prior_exposures=30)
        bare = scenario.bind(variant="no_warning")
        assert bare.task().communication is None
