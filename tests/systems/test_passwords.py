"""Tests for the password-policy case-study system (Section 3.2)."""

import pytest

from repro.core.analysis import analyze_task
from repro.core.communication import CommunicationType
from repro.core.components import Component
from repro.core.exceptions import ModelError
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.systems.passwords import (
    PasswordPolicy,
    baseline_policy,
    build_system,
    build_system_for,
    calibration,
    creation_task,
    policy_communication,
    policy_variants,
    population,
    recall_task,
    relaxed_expiry_policy,
    sharing_task,
    sso_policy,
    training_policy,
    vault_policy,
)


class TestPasswordPolicy:
    def test_baseline_policy_defaults(self):
        policy = baseline_policy()
        assert policy.min_length == 8
        assert policy.effective_accounts == 8

    def test_sso_reduces_effective_accounts(self):
        assert sso_policy().effective_accounts == 1

    def test_vault_caps_memory_burden(self):
        assert vault_policy().memory_burden < baseline_policy().memory_burden

    def test_memory_burden_grows_with_accounts(self):
        few = PasswordPolicy(distinct_accounts=2)
        many = PasswordPolicy(distinct_accounts=15)
        assert many.memory_burden > few.memory_burden

    def test_memory_burden_grows_with_expiry(self):
        assert baseline_policy().memory_burden > relaxed_expiry_policy().memory_burden

    def test_memory_burden_bounded(self):
        extreme = PasswordPolicy(distinct_accounts=50, min_length=20,
                                 required_character_classes=4, expiry_days=30)
        assert extreme.memory_burden <= 0.95

    def test_convenience_cost_lower_with_sso(self):
        assert sso_policy().convenience_cost < baseline_policy().convenience_cost

    def test_validation(self):
        with pytest.raises(ModelError):
            PasswordPolicy(min_length=0)
        with pytest.raises(ModelError):
            PasswordPolicy(required_character_classes=5)
        with pytest.raises(ModelError):
            PasswordPolicy(expiry_days=0)
        with pytest.raises(ModelError):
            PasswordPolicy(distinct_accounts=0)

    def test_policy_variants_cover_mitigations(self):
        variants = policy_variants()
        assert {"baseline", "single-sign-on", "password-vault",
                "rationale-training", "no-expiry"} == set(variants)


class TestTasksAndCommunication:
    def test_policy_communication_is_a_policy(self):
        communication = policy_communication(baseline_policy())
        assert communication.comm_type is CommunicationType.POLICY
        assert communication.includes_instructions

    def test_training_variant_explains_risk(self):
        assert policy_communication(training_policy()).explains_risk
        assert not policy_communication(baseline_policy()).explains_risk

    def test_recall_task_memory_requirement_tracks_policy(self):
        baseline_requirement = recall_task(baseline_policy()).capability_requirements.memory_capacity
        sso_requirement = recall_task(sso_policy()).capability_requirements.memory_capacity
        assert baseline_requirement > sso_requirement

    def test_creation_task_requires_unpredictable_choice(self):
        design = creation_task(baseline_policy()).task_design
        assert design.requires_unpredictable_choice
        assert design.choice_predictability > 0.2

    def test_sharing_task_not_automatable(self):
        assert not sharing_task(baseline_policy()).automation.can_fully_automate

    def test_system_has_three_tasks(self):
        system = build_system()
        assert len(system) == 3
        system.validate()

    def test_system_for_variant_named_after_policy(self):
        assert "single-sign-on" in build_system_for(sso_policy()).name

    def test_population_training_fraction_follows_policy(self):
        assert population(training_policy()).training_fraction > population(baseline_policy()).training_fraction


class TestAnalysis:
    def test_recall_task_binding_failure_is_capability(self):
        analysis = analyze_task(recall_task(baseline_policy()))
        capability_failures = analysis.failures.by_component(Component.CAPABILITIES)
        assert capability_failures
        # The capability failure should be among the highest-risk findings.
        top_components = [failure.component for failure in analysis.failures.top(3)]
        assert Component.CAPABILITIES in top_components

    def test_recall_task_more_reliable_under_sso(self):
        baseline_analysis = analyze_task(recall_task(baseline_policy()))
        sso_analysis = analyze_task(recall_task(sso_policy()))
        assert sso_analysis.success_probability > baseline_analysis.success_probability


class TestSimulatedCaseStudy:
    @pytest.fixture(scope="class")
    def compliance(self):
        rates = {}
        for name, policy in policy_variants().items():
            simulator = HumanLoopSimulator(
                SimulationConfig(n_receivers=400, seed=3000, calibration=calibration(policy))
            )
            result = simulator.simulate_task(recall_task(policy), population(policy))
            rates[name] = result
        return rates

    def test_baseline_compliance_is_poor(self, compliance):
        assert compliance["baseline"].protection_rate() < 0.5

    def test_sso_and_vault_beat_baseline_substantially(self, compliance):
        baseline_rate = compliance["baseline"].protection_rate()
        assert compliance["single-sign-on"].protection_rate() > baseline_rate + 0.15
        assert compliance["password-vault"].protection_rate() > baseline_rate + 0.15

    def test_training_alone_is_a_smaller_win_than_sso(self, compliance):
        training_gain = (
            compliance["rationale-training"].protection_rate()
            - compliance["baseline"].protection_rate()
        )
        sso_gain = (
            compliance["single-sign-on"].protection_rate()
            - compliance["baseline"].protection_rate()
        )
        assert sso_gain > training_gain

    def test_capability_is_the_dominant_failure_for_baseline(self, compliance):
        baseline = compliance["baseline"]
        assert baseline.capability_failure_rate() > baseline.intention_failure_rate()
        stage_fractions = baseline.stage_failure_fractions()
        assert all(
            baseline.capability_failure_rate() >= fraction
            for fraction in stage_fractions.values()
        )

    def test_sso_and_vault_remove_the_capability_failure(self, compliance):
        assert (
            compliance["single-sign-on"].capability_failure_rate()
            < compliance["baseline"].capability_failure_rate() / 2
        )
        assert (
            compliance["password-vault"].capability_failure_rate()
            < compliance["baseline"].capability_failure_rate() / 2
        )


class TestCaseStudyVariantParams:
    """The canonical variant set feeds both the benchmark and the example."""

    def test_labels_match_policy_variants(self):
        from repro.systems.passwords import case_study_variant_params, policy_variants

        assert list(case_study_variant_params()) == list(policy_variants())

    def test_overrides_reconstruct_the_factory_policies(self):
        import dataclasses

        from repro.systems.passwords import (
            baseline_policy,
            case_study_variant_params,
            policy_variants,
        )

        for label, params in case_study_variant_params().items():
            rebuilt = dataclasses.replace(baseline_policy(), name=label, **params)
            assert rebuilt == policy_variants()[label]

    def test_overrides_are_valid_scenario_parameters(self):
        from repro.systems import get_scenario
        from repro.systems.passwords import case_study_variant_params

        scenario = get_scenario("passwords")
        for params in case_study_variant_params().values():
            scenario.parameter_space().validate(params)
