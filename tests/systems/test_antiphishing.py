"""Tests for the anti-phishing case-study system (Section 3.1)."""

import pytest

from repro.core.analysis import analyze_task
from repro.core.communication import ActivenessLevel, CommunicationType
from repro.core.components import Component
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.systems.antiphishing import (
    WarningVariant,
    build_system,
    calibration,
    firefox_warning,
    ie_active_warning,
    ie_passive_warning,
    phishing_hazard,
    population,
    task_for,
    warning_for,
)


class TestWarningModels:
    def test_firefox_and_ie_active_are_blocking(self):
        assert firefox_warning().activeness_level is ActivenessLevel.BLOCKING
        assert ie_active_warning().activeness_level is ActivenessLevel.BLOCKING

    def test_ie_passive_is_passive(self):
        assert ie_passive_warning().is_passive

    def test_all_variants_are_warnings(self):
        for communication in (firefox_warning(), ie_active_warning(), ie_passive_warning()):
            assert communication.comm_type is CommunicationType.WARNING
            assert communication.allows_override

    def test_firefox_does_not_resemble_routine_warnings_but_ie_does(self):
        assert not firefox_warning().resembles_low_risk_communications
        assert ie_active_warning().resembles_low_risk_communications
        assert ie_passive_warning().resembles_low_risk_communications

    def test_warning_for_variant(self):
        assert warning_for(WarningVariant.FIREFOX).name == firefox_warning().name
        with pytest.raises(ValueError):
            warning_for(WarningVariant.NO_WARNING)

    def test_hazard_is_severe_and_actionable(self):
        hazard = phishing_hazard()
        assert hazard.severity.weight >= 0.5
        assert hazard.user_action_necessity >= 0.8


class TestTasks:
    def test_no_warning_task_has_no_communication(self):
        assert task_for(WarningVariant.NO_WARNING).communication is None

    def test_passive_task_models_late_loading_interference(self):
        task = task_for(WarningVariant.IE_PASSIVE)
        assert task.environment.degrade_probability > 0.0
        active_task = task_for(WarningVariant.IE_ACTIVE)
        assert active_task.environment.degrade_probability == 0.0

    def test_tasks_are_security_critical_with_automation_constraints(self):
        task = task_for(WarningVariant.FIREFOX)
        assert task.security_critical
        assert task.automation.can_fully_automate
        assert task.automation.vendor_constraints

    def test_system_contains_three_warning_variants(self):
        system = build_system()
        assert len(system) == 3
        system.validate()


class TestAnalysis:
    def test_passive_warning_analysis_flags_attention(self):
        analysis = analyze_task(task_for(WarningVariant.IE_PASSIVE))
        assert analysis.failures.by_component(Component.ATTENTION_SWITCH)

    def test_active_warning_more_reliable_than_passive(self):
        active = analyze_task(task_for(WarningVariant.FIREFOX))
        passive = analyze_task(task_for(WarningVariant.IE_PASSIVE))
        assert active.success_probability > passive.success_probability

    def test_ie_active_flagged_for_resembling_routine_warnings(self):
        analysis = analyze_task(task_for(WarningVariant.IE_ACTIVE))
        identifiers = [failure.identifier for failure in analysis.failures]
        assert any("lookalike" in identifier for identifier in identifiers)


class TestSimulatedCaseStudy:
    @pytest.fixture(scope="class")
    def results(self):
        simulator = HumanLoopSimulator(
            SimulationConfig(n_receivers=400, seed=20080124, calibration=calibration())
        )
        pop = population()
        return {
            variant: simulator.simulate_task(task_for(variant), pop)
            for variant in WarningVariant
        }

    def test_active_warnings_protect_the_majority(self, results):
        assert results[WarningVariant.FIREFOX].protection_rate() > 0.6
        assert results[WarningVariant.IE_ACTIVE].protection_rate() > 0.55

    def test_passive_warning_protects_a_small_minority(self, results):
        assert results[WarningVariant.IE_PASSIVE].protection_rate() < 0.3

    def test_ordering_matches_egelman(self, results):
        firefox = results[WarningVariant.FIREFOX].protection_rate()
        ie_active = results[WarningVariant.IE_ACTIVE].protection_rate()
        ie_passive = results[WarningVariant.IE_PASSIVE].protection_rate()
        none = results[WarningVariant.NO_WARNING].protection_rate()
        assert firefox >= ie_active - 0.05
        assert ie_active > ie_passive + 0.3
        assert ie_passive >= none - 0.02

    def test_active_warnings_are_noticed_passive_often_missed(self, results):
        assert results[WarningVariant.FIREFOX].notice_rate() > 0.9
        assert results[WarningVariant.IE_PASSIVE].notice_rate() < 0.6
