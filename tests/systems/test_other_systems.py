"""Tests for the remaining modeled systems (SSL, attachments, smartcards,
file permissions, graphical passwords)."""

import pytest

from repro.core.analysis import analyze_task
from repro.core.communication import CommunicationType
from repro.core.components import Component
from repro.norman.gulfs import assess_gulfs
from repro.systems import (
    email_attachments,
    file_permissions,
    graphical_passwords,
    smartcard,
    ssl_indicators,
)


class TestSSLIndicator:
    def test_lock_icon_is_a_passive_status_indicator(self):
        icon = ssl_indicators.lock_icon_indicator()
        assert icon.comm_type is CommunicationType.STATUS_INDICATOR
        assert icon.is_passive
        assert icon.habituation_exposures > 10

    def test_spoofing_attacker_included_by_default(self):
        task = ssl_indicators.verify_connection_task()
        assert task.environment.spoof_probability > 0.0

    def test_analysis_flags_attention_and_interference(self):
        analysis = analyze_task(ssl_indicators.verify_connection_task())
        assert analysis.failures.by_component(Component.ATTENTION_SWITCH)
        assert analysis.failures.by_component(Component.INTERFERENCE)

    def test_system_builds_and_validates(self):
        ssl_indicators.build_system().validate()


class TestEmailAttachments:
    def test_training_communication_type(self):
        assert email_attachments.attachment_training().comm_type is CommunicationType.TRAINING

    def test_interactive_training_is_clearer_and_shorter(self):
        static = email_attachments.attachment_training(interactive=False)
        interactive = email_attachments.attachment_training(interactive=True)
        assert interactive.clarity > static.clarity
        assert interactive.length_words < static.length_words

    def test_task_not_fully_automatable(self):
        task = email_attachments.judge_attachment_task()
        assert not task.automation.can_fully_automate
        assert task.automation.human_information_advantage > 0.5

    def test_interactive_training_improves_reliability(self):
        static = analyze_task(email_attachments.judge_attachment_task(False))
        interactive = analyze_task(email_attachments.judge_attachment_task(True))
        assert interactive.success_probability > static.success_probability

    def test_system_builds(self):
        system = email_attachments.build_system()
        assert len(system) == 2


class TestSmartcard:
    def test_stock_insert_task_has_wide_gulfs(self):
        task = smartcard.insert_card_task(improved_design=False)
        gulfs = assess_gulfs(task.task_design)
        assert not gulfs.acceptable()

    def test_improved_design_narrows_gulfs(self):
        improved = smartcard.insert_card_task(improved_design=True)
        assert assess_gulfs(improved.task_design).acceptable(threshold=0.35)

    def test_improved_design_more_reliable(self):
        stock = analyze_task(smartcard.insert_card_task(False))
        improved = analyze_task(smartcard.insert_card_task(True))
        assert improved.success_probability > stock.success_probability

    def test_remove_card_task_has_no_communication(self):
        task = smartcard.remove_card_task()
        assert task.communication is None
        analysis = analyze_task(task)
        assert analysis.failures.by_component(Component.COMMUNICATION)

    def test_system_builds(self):
        assert len(smartcard.build_system()) == 3


class TestFilePermissions:
    def test_stock_interface_has_poor_feedback(self):
        task = file_permissions.set_permissions_task(False)
        assert task.task_design.feedback_quality < 0.4

    def test_improved_interface_more_reliable(self):
        stock = analyze_task(file_permissions.set_permissions_task(False))
        improved = analyze_task(file_permissions.set_permissions_task(True))
        assert improved.success_probability > stock.success_probability

    def test_stock_analysis_flags_behavior_stage(self):
        analysis = analyze_task(file_permissions.set_permissions_task(False))
        findings = " ".join(analysis.assessment(Component.BEHAVIOR).findings).lower()
        assert "evaluation" in findings or "feedback" in findings

    def test_system_builds(self):
        assert len(file_permissions.build_system()) == 2


class TestGraphicalPasswords:
    def test_scheme_predictability_ordering(self):
        assert (
            graphical_passwords.Scheme.FACE_BASED.choice_predictability
            > graphical_passwords.Scheme.CLICK_BASED_CONSTRAINED.choice_predictability
        )

    def test_predictability_flagged_for_unconstrained_schemes(self):
        analysis = analyze_task(
            graphical_passwords.choose_password_task(graphical_passwords.Scheme.FACE_BASED)
        )
        behavior_failures = analysis.failures.by_component(Component.BEHAVIOR)
        assert any(failure.behavior_kind is not None for failure in behavior_failures)

    def test_constrained_scheme_not_flagged_for_predictability(self):
        analysis = analyze_task(
            graphical_passwords.choose_password_task(
                graphical_passwords.Scheme.CLICK_BASED_CONSTRAINED
            )
        )
        identifiers = [failure.identifier for failure in analysis.failures]
        assert not any("predictable" in identifier for identifier in identifiers)

    def test_system_builds(self):
        assert len(graphical_passwords.build_system()) == 3
