"""Tests for the typed scenario-parameter machinery."""

import pytest

from repro.core.exceptions import ModelError
from repro.systems.parameters import (
    Parameter,
    ParameterSpace,
    common_parameter_space,
    variant_label,
)


class TestParameter:
    def test_float_bounds(self):
        parameter = Parameter("x", "float", default=0.5, low=0.0, high=1.0)
        assert parameter.validate(0.25) == 0.25
        assert parameter.validate(1) == 1.0
        with pytest.raises(ModelError):
            parameter.validate(1.5)
        with pytest.raises(ModelError):
            parameter.validate(-0.1)
        with pytest.raises(ModelError):
            parameter.validate("0.5")

    def test_int_rejects_bool_and_float(self):
        parameter = Parameter("n", "int", default=3, low=1, high=10)
        assert parameter.validate(5) == 5
        with pytest.raises(ModelError):
            parameter.validate(2.5)
        with pytest.raises(ModelError):
            parameter.validate(True)

    def test_bool_kind(self):
        parameter = Parameter("flag", "bool", default=False)
        assert parameter.validate(True) is True
        with pytest.raises(ModelError):
            parameter.validate(1)

    def test_choice_kind(self):
        parameter = Parameter("mode", "choice", default="a", choices=("a", "b"))
        assert parameter.validate("b") == "b"
        with pytest.raises(ModelError):
            parameter.validate("c")
        with pytest.raises(ModelError):
            Parameter("mode", "choice", default="a")  # choices missing

    def test_none_handling(self):
        optional = Parameter("x", "int", default=None, low=1, allow_none=True)
        assert optional.validate(None) is None
        required = Parameter("y", "int", default=3, low=1)
        with pytest.raises(ModelError):
            required.validate(None)

    def test_invalid_declarations(self):
        with pytest.raises(ModelError):
            Parameter("", "float", default=0.5)
        with pytest.raises(ModelError):
            Parameter("x", "complex", default=0.5)
        with pytest.raises(ModelError):
            Parameter("x", "float", default=0.5, low=1.0, high=0.0)
        with pytest.raises(ModelError):
            Parameter("x", "float", default=2.0, low=0.0, high=1.0)  # bad default


class TestParameterSpace:
    def _space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                Parameter("n", "int", default=3, low=1, high=10),
                Parameter("flag", "bool", default=False),
            ]
        )

    def test_defaults_in_declaration_order(self):
        assert self._space().defaults() == {"n": 3, "flag": False}

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ModelError):
            self._space().validate({"unknown": 1})

    def test_resolve_overlays_overrides(self):
        assert self._space().resolve({"flag": True}) == {"n": 3, "flag": True}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            ParameterSpace([Parameter("n", "int", default=1), Parameter("n", "int", default=2)])

    def test_merged_preserves_order_and_rejects_collisions(self):
        merged = self._space().merged(ParameterSpace([Parameter("z", "float", default=0.1)]))
        assert merged.names() == ("n", "flag", "z")
        with pytest.raises(ModelError):
            self._space().merged(self._space())

    def test_describe_one_row_per_parameter(self):
        rows = self._space().describe()
        assert [row["name"] for row in rows] == ["n", "flag"]


class TestCommonSpace:
    def test_common_knobs_default_to_none(self):
        space = common_parameter_space()
        assert set(space.defaults().values()) == {None}
        assert "training_fraction" in space

    def test_variant_label(self):
        assert variant_label("s", {}) == "s"
        assert variant_label("s", {"a": 1, "b": None}) == "s[a=1,b=None]"
