"""Scenario registry: one uniform entry point per modeled secure system.

A *scenario* bundles everything needed to study one secure system with
either reading of the framework: the :class:`~repro.core.task.SecureSystem`
model, the receiver :class:`~repro.simulation.population.PopulationSpec`
expected to face it, and the
:class:`~repro.simulation.calibration.StageCalibration` anchoring the
simulation to the cited user studies (neutral when no study calibration
exists).  Any registered scenario can be dropped into

* the **analytic path** — :meth:`Scenario.analyze` runs the Table-1
  failure-identification walk of :mod:`repro.core.analysis`, and
* the **batch simulator** — :meth:`Scenario.simulate` runs the vectorized
  engine of :mod:`repro.simulation.engine` over the scenario population,

both of which traverse the shared stage pipeline of
:mod:`repro.core.pipeline`.  The benchmarks iterate the registry instead
of hand-wiring each system to the engine.

Every module in :mod:`repro.systems` registers one scenario here;
third-party systems can call :func:`register_scenario` themselves — any
object satisfying :class:`ScenarioLike` is accepted.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from ..core.analysis import SystemAnalysis, analyze_system
from ..core.exceptions import ModelError
from ..core.task import HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.engine import HumanLoopSimulator, SimulationConfig
from ..simulation.metrics import SimulationResult
from ..simulation.population import PopulationSpec
from . import (  # noqa: F401  (imported for their registration side effects)
    antiphishing,
    email_attachments,
    file_permissions,
    graphical_passwords,
    passwords,
    smartcard,
    ssl_indicators,
)
from .base import builder_for

__all__ = [
    "ScenarioLike",
    "Scenario",
    "register_scenario",
    "available_scenarios",
    "get_scenario",
    "all_scenarios",
]


@runtime_checkable
class ScenarioLike(Protocol):
    """The protocol every registered scenario satisfies."""

    name: str
    description: str

    def system(self) -> SecureSystem: ...

    def population(self) -> PopulationSpec: ...

    def calibration(self) -> StageCalibration: ...


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A registered scenario: system + population + calibration factories."""

    name: str
    description: str
    system_factory: Callable[[], SecureSystem]
    population_factory: Callable[[], PopulationSpec]
    calibration_factory: Callable[[], StageCalibration] = StageCalibration.neutral
    default_task: Optional[str] = None

    # -- components --------------------------------------------------------------

    def system(self) -> SecureSystem:
        system = self.system_factory()
        system.validate()
        return system

    def population(self) -> PopulationSpec:
        return self.population_factory()

    def calibration(self) -> StageCalibration:
        return self.calibration_factory()

    def tasks(self) -> List[HumanSecurityTask]:
        """The scenario's security-critical tasks."""
        return self.system().security_critical_tasks()

    def task(self, name: Optional[str] = None) -> HumanSecurityTask:
        """One task by name; defaults to ``default_task`` or the first."""
        system = self.system()
        if name is not None:
            return system.task_named(name)
        if self.default_task is not None:
            return system.task_named(self.default_task)
        critical = system.security_critical_tasks()
        if not critical:
            raise ModelError(f"scenario {self.name!r} has no security-critical tasks")
        return critical[0]

    # -- the two framework readings ----------------------------------------------

    def analyze(self) -> SystemAnalysis:
        """Run the analytic failure-identification walk over the system."""
        return analyze_system(self.system())

    def simulator(self, **config_overrides) -> HumanLoopSimulator:
        """An engine configured with this scenario's calibration."""
        config_overrides.setdefault("calibration", self.calibration())
        return HumanLoopSimulator(SimulationConfig(**config_overrides))

    def simulate(
        self,
        n_receivers: int,
        seed: int = 0,
        task: Optional[str] = None,
        mode: Optional[str] = None,
        **config_overrides,
    ) -> SimulationResult:
        """Simulate the scenario population encountering one task."""
        simulator = self.simulator(**config_overrides)
        return simulator.simulate_task(
            self.task(task), self.population(), n_receivers=n_receivers, seed=seed, mode=mode
        )


_SCENARIOS: Dict[str, ScenarioLike] = {}


def register_scenario(scenario: ScenarioLike) -> ScenarioLike:
    """Register a scenario under its name (unique across the registry)."""
    if not isinstance(scenario, ScenarioLike):
        raise ModelError(f"object {scenario!r} does not satisfy the Scenario protocol")
    if scenario.name in _SCENARIOS:
        raise ModelError(f"scenario {scenario.name!r} already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def available_scenarios() -> List[str]:
    """Names of every registered scenario."""
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> ScenarioLike:
    """Look up a registered scenario by name."""
    if name not in _SCENARIOS:
        raise ModelError(f"unknown scenario {name!r}; known: {available_scenarios()}")
    return _SCENARIOS[name]


def all_scenarios() -> Dict[str, ScenarioLike]:
    """Every registered scenario, keyed by name."""
    return dict(_SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in scenarios: one per modeled system.  Population factories come
# from the system modules; systems without a study calibration run neutral.
# ---------------------------------------------------------------------------

def _builtin(name: str, population_factory, calibration_factory=None) -> None:
    register_scenario(
        Scenario(
            name=name,
            description=builder_for(name).description,
            system_factory=builder_for(name).build,
            population_factory=population_factory,
            calibration_factory=calibration_factory or StageCalibration.neutral,
        )
    )


_builtin("antiphishing", antiphishing.population, antiphishing.calibration)
_builtin("passwords", passwords.population, passwords.calibration)
_builtin("ssl-indicator", ssl_indicators.population)
_builtin("email-attachments", email_attachments.population)
_builtin("smartcard", smartcard.population)
_builtin("file-permissions", file_permissions.population)
_builtin("graphical-passwords", graphical_passwords.population)
