"""Scenario registry: one uniform entry point per modeled secure system.

A *scenario* bundles everything needed to study one secure system with
either reading of the framework: the :class:`~repro.core.task.SecureSystem`
model, the receiver :class:`~repro.simulation.population.PopulationSpec`
expected to face it, and the
:class:`~repro.simulation.calibration.StageCalibration` anchoring the
simulation to the cited user studies (neutral when no study calibration
exists).  Any registered scenario can be dropped into

* the **analytic path** — :meth:`Scenario.analyze` runs the Table-1
  failure-identification walk of :mod:`repro.core.analysis`, and
* the **batch simulator** — :meth:`Scenario.simulate` runs the vectorized
  engine of :mod:`repro.simulation.engine` over the scenario population,

both of which traverse the shared stage pipeline of
:mod:`repro.core.pipeline`.  The benchmarks iterate the registry instead
of hand-wiring each system to the engine.

Scenarios are **parameterized**: every scenario accepts the common typed
knobs of :func:`repro.systems.parameters.common_parameter_space`
(population training fraction, calibration noise and gate multipliers),
and scenarios registered with a domain *binder* add their own typed
parameters — the password scenario exposes every
:class:`~repro.systems.passwords.PasswordPolicy` field, the anti-phishing
scenario its warning variant, activeness, and prior exposures.
:meth:`Scenario.bind` validates overrides against the parameter space and
returns a :class:`ScenarioVariant` — a concrete, unregistered scenario
with identical ``analyze()`` / ``simulate()`` entry points plus full
parameter provenance.  The declarative experiment layer
(:mod:`repro.experiments`) expands sweep grids into such variants.

Every module in :mod:`repro.systems` registers one scenario here;
third-party systems can call :func:`register_scenario` themselves — any
object satisfying :class:`ScenarioLike` is accepted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from ..core.analysis import SystemAnalysis, analyze_system
from ..core.exceptions import ModelError
from ..core.task import HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.engine import HumanLoopSimulator, SimulationConfig
from ..simulation.metrics import SimulationResult
from ..simulation.population import PopulationSpec
from . import (  # noqa: F401  (imported for their registration side effects)
    antiphishing,
    email_attachments,
    file_permissions,
    graphical_passwords,
    passwords,
    smartcard,
    ssl_indicators,
)
from .base import builder_for
from .parameters import (
    SIMULATION_PARAMETER_NAMES,
    ParameterSpace,
    ScenarioBinder,
    ScenarioComponents,
    common_parameter_space,
    variant_label,
)

__all__ = [
    "ScenarioLike",
    "Scenario",
    "ScenarioVariant",
    "register_scenario",
    "available_scenarios",
    "get_scenario",
    "all_scenarios",
    "variant_hash",
]


def variant_hash(scenario_name: str, params: Mapping[str, Any]) -> str:
    """Stable content hash identifying one (scenario, parameters) point.

    The canonical row identity of the experiment layer: independent of
    variant declaration order, of which shard ran the point, and of the
    position a row ends up at after :meth:`ResultSet.merge` — two rows
    describe the same parameter point iff their hashes agree.  Computed
    over the canonical JSON form of the scenario name and the validated
    overrides (sorted by name), so it survives a JSON round-trip of the
    parameters unchanged.
    """
    canonical = json.dumps(
        {"scenario": scenario_name, "params": dict(params)},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@runtime_checkable
class ScenarioLike(Protocol):
    """The protocol every registered scenario satisfies."""

    name: str
    description: str

    def system(self) -> SecureSystem: ...

    def population(self) -> PopulationSpec: ...

    def calibration(self) -> StageCalibration: ...


class _ScenarioPaths:
    """The two framework readings, shared by scenarios and bound variants.

    Subclasses provide ``components()`` (one fresh system / population /
    calibration build) and a ``default_task`` attribute; everything here
    derives from those.  Single-component accessors go through
    ``components()`` too, so a bound variant's binder runs exactly once
    per access however many components the caller needs.
    """

    default_task: Optional[str]

    def components(self) -> ScenarioComponents:  # pragma: no cover - overridden
        raise NotImplementedError

    def system(self) -> SecureSystem:
        system = self.components().system
        system.validate()
        return system

    def population(self) -> PopulationSpec:
        return self.components().population

    def calibration(self) -> StageCalibration:
        return self.components().calibration

    def resolve_task(
        self, system: SecureSystem, name: Optional[str]
    ) -> HumanSecurityTask:
        """Resolve a task name (or unique prefix) within one built system.

        Callers that already hold a built system (the runner, the analytic
        path) use this to avoid rebuilding components just for the name.
        """
        if name is None:
            name = self.default_task
        if name is not None:
            try:
                return system.task_named(name)
            except ModelError:
                prefixed = [task for task in system.tasks if task.name.startswith(name)]
                if len(prefixed) == 1:
                    return prefixed[0]
                raise ModelError(
                    f"no task named (or uniquely prefixed by) {name!r}; "
                    f"known: {[task.name for task in system.tasks]}"
                )
        critical = system.security_critical_tasks()
        if not critical:
            raise ModelError(f"scenario {self.name!r} has no security-critical tasks")
        return critical[0]

    def tasks(self) -> List[HumanSecurityTask]:
        """The scenario's security-critical tasks."""
        return self.system().security_critical_tasks()

    def task(self, name: Optional[str] = None) -> HumanSecurityTask:
        """One task by name; defaults to ``default_task`` or the first.

        Exact names win; otherwise a *unique* name prefix is accepted, so
        experiment specs can say ``task="recall-passwords"`` and match
        ``recall-passwords[<any policy variant>]``.
        """
        return self.resolve_task(self.system(), name)

    def analyze(self) -> SystemAnalysis:
        """Run the analytic failure-identification walk over the system."""
        return analyze_system(self.system())

    def simulation_defaults(self) -> Dict[str, Any]:
        """Engine config defaults this scenario carries (none for base scenarios).

        Bound variants return their ``rounds`` / ``recovery_rate`` common
        knobs here, so a variant bound for a multi-round study runs
        multi-round through the ordinary ``simulate()`` entry point.
        """
        return {}

    def simulator(self, **config_overrides) -> HumanLoopSimulator:
        """An engine configured with this scenario's calibration."""
        config_overrides.setdefault("calibration", self.calibration())
        for name, value in self.simulation_defaults().items():
            config_overrides.setdefault(name, value)
        return HumanLoopSimulator(SimulationConfig(**config_overrides))

    def simulate(
        self,
        n_receivers: int,
        seed: int = 0,
        task: Optional[str] = None,
        mode: Optional[str] = None,
        **config_overrides,
    ) -> SimulationResult:
        """Simulate the scenario population encountering one task.

        ``config_overrides`` flow into :class:`SimulationConfig` — e.g.
        ``rounds=10, recovery_rate=0.2`` runs the multi-round engine over
        this scenario, ``rng_mode="counter"`` / ``chunk_workers=4`` select
        the engine's decision-stream source and in-call parallelism
        (explicit overrides win over a bound variant's knobs).
        """
        components = self.components()
        components.system.validate()
        config_overrides.setdefault("calibration", components.calibration)
        for name, value in self.simulation_defaults().items():
            config_overrides.setdefault(name, value)
        simulator = HumanLoopSimulator(SimulationConfig(**config_overrides))
        return simulator.simulate_task(
            self.resolve_task(components.system, task),
            components.population,
            n_receivers=n_receivers,
            seed=seed,
            mode=mode,
        )


@dataclasses.dataclass(frozen=True)
class Scenario(_ScenarioPaths):
    """A registered scenario: system + population + calibration factories.

    ``parameters`` declares the scenario's own typed knobs and ``binder``
    maps resolved values of those knobs to concrete components; scenarios
    without a binder still accept the common parameters via :meth:`bind`.
    """

    name: str
    description: str
    system_factory: Callable[[], SecureSystem]
    population_factory: Callable[[], PopulationSpec]
    calibration_factory: Callable[[], StageCalibration] = StageCalibration.neutral
    default_task: Optional[str] = None
    parameters: ParameterSpace = dataclasses.field(default_factory=ParameterSpace)
    binder: Optional[ScenarioBinder] = None

    # -- components --------------------------------------------------------------

    def components(self) -> ScenarioComponents:
        return ScenarioComponents(
            system=self.system_factory(),
            population=self.population_factory(),
            calibration=self.calibration_factory(),
        )

    # -- parameter binding -------------------------------------------------------

    def parameter_space(self) -> ParameterSpace:
        """The scenario's own parameters followed by the common ones."""
        return self.parameters.merged(common_parameter_space())

    def variant_hash(self) -> str:
        """The identity hash of this scenario with no overrides bound."""
        return variant_hash(self.name, {})

    def bind(self, **overrides: Any) -> "ScenarioVariant":
        """Bind typed parameter overrides into a concrete scenario variant.

        Overrides are validated against :meth:`parameter_space`; custom
        parameters flow through the scenario's binder, the common ones are
        applied to whatever population / calibration results.  Binding with
        no overrides reproduces the base scenario's components exactly.
        """
        space = self.parameter_space()
        validated = space.validate(overrides)
        custom = {name: value for name, value in validated.items() if name in self.parameters}
        common = {name: value for name, value in validated.items() if name not in self.parameters}

        if self.binder is not None:
            values = self.parameters.resolve(custom)
            binder = self.binder
            base_components: Callable[[], ScenarioComponents] = lambda: binder(values)
        elif custom:  # pragma: no cover - custom params imply a binder
            raise ModelError(
                f"scenario {self.name!r} declares parameters but no binder"
            )
        else:
            base_components = self.components

        training_fraction = common.get("training_fraction")
        calibration_updates = {
            name: common[name]
            for name in ("user_noise_std", "intention_multiplier", "capability_multiplier")
            if common.get(name) is not None
        }

        def components_factory() -> ScenarioComponents:
            components = base_components()
            population = components.population
            calibration = components.calibration
            if training_fraction is not None:
                population = dataclasses.replace(
                    population, training_fraction=training_fraction
                )
            if calibration_updates:
                calibration = dataclasses.replace(calibration, **calibration_updates)
            return ScenarioComponents(
                system=components.system, population=population, calibration=calibration
            )

        # Fail fast: per-value validation passed, but the binder may still
        # reject the combination (e.g. activeness on no_warning).
        components_factory()

        return ScenarioVariant(
            name=variant_label(self.name, validated),
            description=self.description,
            base=self,
            params=dict(validated),
            components_factory=components_factory,
            default_task=self.default_task,
        )


@dataclasses.dataclass(frozen=True)
class ScenarioVariant(_ScenarioPaths):
    """A scenario bound to concrete parameter values.

    Satisfies :class:`ScenarioLike` (and offers the same ``analyze()`` /
    ``simulate()`` paths as :class:`Scenario`) while carrying full
    provenance: the base scenario and the validated overrides that produced
    it.  Variants are not registered; re-binding goes through the base, so
    ``variant.bind(x=1)`` layers on top of the existing overrides.
    """

    name: str
    description: str
    base: Scenario
    params: Mapping[str, Any]
    components_factory: Callable[[], ScenarioComponents]
    default_task: Optional[str] = None

    def components(self) -> ScenarioComponents:
        return self.components_factory()

    def simulation_defaults(self) -> Dict[str, Any]:
        return {
            name: self.params[name]
            for name in SIMULATION_PARAMETER_NAMES
            if self.params.get(name) is not None
        }

    def parameter_space(self) -> ParameterSpace:
        return self.base.parameter_space()

    def variant_hash(self) -> str:
        """The identity hash of this variant's (base scenario, overrides) point."""
        return variant_hash(self.base.name, self.params)

    def bind(self, **overrides: Any) -> "ScenarioVariant":
        merged: Dict[str, Any] = {**dict(self.params), **overrides}
        return self.base.bind(**merged)


_SCENARIOS: Dict[str, ScenarioLike] = {}


def register_scenario(scenario: ScenarioLike) -> ScenarioLike:
    """Register a scenario under its name (unique across the registry)."""
    if not isinstance(scenario, ScenarioLike):
        raise ModelError(f"object {scenario!r} does not satisfy the Scenario protocol")
    if scenario.name in _SCENARIOS:
        raise ModelError(f"scenario {scenario.name!r} already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def available_scenarios() -> List[str]:
    """Names of every registered scenario."""
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> ScenarioLike:
    """Look up a registered scenario by name."""
    if name not in _SCENARIOS:
        raise ModelError(f"unknown scenario {name!r}; known: {available_scenarios()}")
    return _SCENARIOS[name]


def all_scenarios() -> Dict[str, ScenarioLike]:
    """Every registered scenario, keyed by name."""
    return dict(_SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in scenarios: one per modeled system.  Population factories come
# from the system modules; systems without a study calibration run neutral.
# Scenarios whose module exposes a parameter space register it (with the
# matching binder) so the experiment layer can sweep them declaratively.
# ---------------------------------------------------------------------------

def _builtin(
    name: str,
    population_factory,
    calibration_factory=None,
    parameters: Optional[ParameterSpace] = None,
    binder: Optional[ScenarioBinder] = None,
) -> None:
    register_scenario(
        Scenario(
            name=name,
            description=builder_for(name).description,
            system_factory=builder_for(name).build,
            population_factory=population_factory,
            calibration_factory=calibration_factory or StageCalibration.neutral,
            parameters=parameters or ParameterSpace(),
            binder=binder,
        )
    )


_builtin(
    "antiphishing",
    antiphishing.population,
    antiphishing.calibration,
    parameters=antiphishing.parameter_space(),
    binder=antiphishing.scenario_components,
)
_builtin(
    "passwords",
    passwords.population,
    passwords.calibration,
    parameters=passwords.parameter_space(),
    binder=passwords.scenario_components,
)
_builtin(
    "ssl-indicator",
    ssl_indicators.population,
    parameters=ssl_indicators.parameter_space(),
    binder=ssl_indicators.scenario_components,
)
_builtin(
    "email-attachments",
    email_attachments.population,
    parameters=email_attachments.parameter_space(),
    binder=email_attachments.scenario_components,
)
_builtin(
    "smartcard",
    smartcard.population,
    parameters=smartcard.parameter_space(),
    binder=smartcard.scenario_components,
)
_builtin(
    "file-permissions",
    file_permissions.population,
    parameters=file_permissions.parameter_space(),
    binder=file_permissions.scenario_components,
)
_builtin(
    "graphical-passwords",
    graphical_passwords.population,
    parameters=graphical_passwords.parameter_space(),
    binder=graphical_passwords.scenario_components,
)
