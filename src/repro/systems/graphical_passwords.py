"""Graphical passwords: success that is predictably exploitable.

Section 2.4 uses graphical passwords as the example of the second
behavior-stage question in Table 1 — "Does behavior follow predictable
patterns that an attacker might exploit?":

* Davis et al.: users of a face-based scheme pick attractive faces of
  their own race, so demographics alone shrink the guess space.
* Thorpe & van Oorschot: click-based schemes concentrate on image "hot
  spots" that human-seeded attacks can harvest.

Both scheme variants are modeled, plus a constrained variant that applies
the paper's mitigation ("prevent users from behaving in ways that fit
known patterns").
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.impediments import Environment
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, general_web_population
from ..studies.registry import registry
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "Scheme",
    "enrollment_guidance",
    "choose_password_task",
    "build_system",
    "population",
    "parameter_space",
    "scenario_components",
]


class Scheme(enum.Enum):
    """Graphical password schemes, plus a pattern-constrained variant."""

    FACE_BASED = "face_based"
    CLICK_BASED = "click_based"
    CLICK_BASED_CONSTRAINED = "click_based_constrained"

    @property
    def choice_predictability(self) -> float:
        """How predictable typical user choices are under this scheme."""
        if self is Scheme.FACE_BASED:
            return registry.value("davis2004", "face_choice_predictability")
        if self is Scheme.CLICK_BASED:
            return registry.value("thorpe2007", "hotspot_concentration")
        # The constrained variant rejects choices that fall into known
        # hot spots, leaving substantially less exploitable structure.
        return 0.15


def enrollment_guidance(scheme: Scheme) -> Communication:
    """The enrollment-time guidance shown when choosing a graphical password."""
    return Communication(
        name=f"graphical-password-guidance-{scheme.value}",
        comm_type=CommunicationType.NOTICE,
        activeness=0.6,
        hazard=HazardProfile(
            severity=HazardSeverity.HIGH,
            frequency=HazardFrequency.RARE,
            user_action_necessity=1.0,
            description="Account compromise through guessable graphical passwords.",
        ),
        clarity=0.7,
        includes_instructions=True,
        explains_risk=scheme is Scheme.CLICK_BASED_CONSTRAINED,
        length_words=60,
        channel=DeliveryChannel.IN_PAGE,
        conspicuity=0.7,
        description="Instructions shown during graphical-password enrollment.",
    )


def choose_password_task(scheme: Scheme) -> HumanSecurityTask:
    """Choose a graphical password that an attacker cannot predict."""
    return HumanSecurityTask(
        name=f"choose-graphical-password-{scheme.value}",
        description="Select a graphical password during enrollment.",
        communication=enrollment_guidance(scheme),
        task_design=TaskDesign(
            steps=3,
            controls_discoverable=0.85,
            feedback_quality=0.7,
            controls_distinguishable=0.85,
            guidance_through_steps=True,
            requires_unpredictable_choice=True,
            choice_predictability=scheme.choice_predictability,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.2,
            cognitive_skill=0.3,
            physical_skill=0.2,
            memory_capacity=0.3,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=Environment(description="Account enrollment"),
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.9,
            automation_false_positive_rate=0.0,
            human_information_advantage=0.3,
            automation_cost=0.3,
            vendor_constraints=(
                "System-assigned graphical passwords resist prediction but are "
                "harder to remember; constraint-based filtering is the usual compromise."
            ),
        ),
        desired_action="Choose password elements that do not follow known popular patterns.",
        failure_consequence="An attacker exploiting choice patterns guesses the password quickly.",
    )


def build_system() -> SecureSystem:
    return SecureSystem(
        name="graphical-passwords",
        description="Graphical password enrollment where user choices may be predictable.",
        tasks=[choose_password_task(scheme) for scheme in Scheme],
    )


register_system("graphical-passwords", "Graphical password choice predictability")(build_system)


def population() -> PopulationSpec:
    return general_web_population()


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The choice-predictability knobs the behavior stage hinges on."""
    return ParameterSpace(
        [
            Parameter(
                "scheme",
                "choice",
                default=Scheme.FACE_BASED.value,
                choices=tuple(scheme.value for scheme in Scheme),
                description=(
                    "Graphical password scheme: face-based (Davis et al.), "
                    "click-based (Thorpe & van Oorschot), or the "
                    "pattern-constrained click variant."
                ),
            ),
            Parameter(
                "choice_predictability",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description=(
                    "Override how predictable typical user choices are under "
                    "the scheme (how much structure an attacker can harvest)."
                ),
            ),
            Parameter(
                "guidance_conspicuity",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Override how prominent the enrollment guidance is.",
            ),
        ]
    )


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: one enrollment task under the bound scheme."""
    task = choose_password_task(Scheme(str(values["scheme"])))
    if values["choice_predictability"] is not None:
        task.task_design = dataclasses.replace(
            task.task_design,
            choice_predictability=float(values["choice_predictability"]),
        )
    if values["guidance_conspicuity"] is not None:
        task.communication = dataclasses.replace(
            task.communication, conspicuity=float(values["guidance_conspicuity"])
        )
    system = SecureSystem(
        name="graphical-passwords",
        description="Graphical password enrollment where user choices may be predictable.",
        tasks=[task],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=StageCalibration.neutral()
    )
