"""Judging suspicious email attachments: a training-dependent human task.

Section 1 gives this as an example of a task where "a human may be a better
judge than a computer about whether an email attachment is suspicious in a
particular context", and Section 2.4 uses the naïve "it's from someone I
know" plan as its canonical GEMS *mistake*.  The triggering communication
here is anti-phishing/safe-attachment training, so the knowledge retention
and transfer stages of the framework are fully exercised.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.impediments import Environment, StimulusKind
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, organization_population
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "attachment_training",
    "judge_attachment_task",
    "build_system",
    "population",
    "parameter_space",
    "scenario_components",
]


def attachment_training(interactive: bool = False) -> Communication:
    """Security-awareness training about handling email attachments.

    ``interactive`` distinguishes engaging, game-style training (better
    knowledge acquisition, retention, and transfer per Sheng et al. and
    Kumaraguru et al.) from a static handbook section.
    """
    return Communication(
        name="attachment-handling-training" + ("-interactive" if interactive else ""),
        comm_type=CommunicationType.TRAINING,
        activeness=0.5 if interactive else 0.2,
        hazard=HazardProfile(
            severity=HazardSeverity.CRITICAL,
            frequency=HazardFrequency.FREQUENT,
            user_action_necessity=0.7,
            description="Malware delivered through email attachments.",
        ),
        clarity=0.8 if interactive else 0.6,
        includes_instructions=True,
        explains_risk=True,
        length_words=150 if interactive else 600,
        channel=DeliveryChannel.WEB_PAGE if interactive else DeliveryChannel.DOCUMENT,
        conspicuity=0.6 if interactive else 0.3,
        allows_override=True,
        description="Training on recognizing and handling suspicious attachments.",
    )


def judge_attachment_task(interactive_training: bool = False) -> HumanSecurityTask:
    """Decide whether an incoming attachment is safe to open."""
    environment = Environment(description="Employee triaging a full inbox")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.65, "working through email")
    environment.add_stimulus(StimulusKind.UNRELATED_COMMUNICATION, 0.3, "other messages arriving")
    return HumanSecurityTask(
        name="judge-email-attachment"
        + ("-interactive-training" if interactive_training else ""),
        description=(
            "Decide, using context the filtering software lacks, whether an "
            "email attachment is suspicious before opening it."
        ),
        communication=attachment_training(interactive=interactive_training),
        task_design=TaskDesign(
            steps=3,
            controls_discoverable=0.7,
            feedback_quality=0.3,
            controls_distinguishable=0.8,
            guidance_through_steps=False,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.5,
            cognitive_skill=0.5,
            physical_skill=0.1,
            memory_capacity=0.3,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=environment,
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=False,
            automation_accuracy=0.8,
            automation_false_positive_rate=0.1,
            human_information_advantage=0.7,
            automation_cost=0.3,
            vendor_constraints=(
                "The human's knowledge of context (expected invoices, ongoing "
                "conversations) is hard to capture in an automated filter."
            ),
        ),
        desired_action="Open only attachments that are expected and consistent with their context.",
        failure_consequence="Malware executed from a malicious attachment.",
    )


def build_system() -> SecureSystem:
    return SecureSystem(
        name="email-attachment-judgment",
        description=(
            "Employees act as the last line of defense against malicious email "
            "attachments, guided by security-awareness training."
        ),
        tasks=[judge_attachment_task(False), judge_attachment_task(True)],
    )


register_system("email-attachments", "Judging suspicious email attachments after training")(
    build_system
)


def population() -> PopulationSpec:
    return organization_population()


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The training-design knobs the retention/transfer stages hinge on."""
    return ParameterSpace(
        [
            Parameter(
                "interactive_training",
                "bool",
                default=False,
                description=(
                    "Engaging, game-style training (Sheng et al.) instead of "
                    "a static handbook section."
                ),
            ),
            Parameter(
                "training_clarity",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Override how clearly the training material is written.",
            ),
            Parameter(
                "refresher_exposures",
                "int",
                default=0,
                low=0,
                high=10_000,
                description=(
                    "Times the population has already sat through this "
                    "training content (habituation to refreshers)."
                ),
            ),
        ]
    )


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: one judgment task with the bound training design."""
    task = judge_attachment_task(
        interactive_training=bool(values["interactive_training"])
    )
    communication = task.communication
    if values["training_clarity"] is not None:
        communication = dataclasses.replace(
            communication, clarity=float(values["training_clarity"])
        )
    if values["refresher_exposures"]:
        communication = communication.with_exposures(int(values["refresher_exposures"]))
    task.communication = communication
    system = SecureSystem(
        name="email-attachment-judgment",
        description=(
            "Employees act as the last line of defense against malicious email "
            "attachments, guided by security-awareness training."
        ),
        tasks=[task],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=StageCalibration.neutral()
    )
