"""Windows file-permission management: a gulf-of-evaluation system.

Section 2.4 cites Maxion and Reeder: "users have trouble determining
effective file permissions in Windows XP.  Thus, when users change file
permissions settings, it is difficult for them to determine whether they
have achieved the desired outcome" — the canonical wide gulf of
evaluation.  Two task variants are modeled: the stock XP permissions
interface and an improved interface with an effective-permissions
visualization (Maxion & Reeder's Salmon-style mitigation).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.impediments import Environment, StimulusKind
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, organization_population
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "permissions_indicator",
    "set_permissions_task",
    "build_system",
    "population",
    "parameter_space",
    "scenario_components",
]


def permissions_indicator(improved: bool = False) -> Communication:
    """The permissions dialog treated as a status indicator / notice."""
    return Communication(
        name="file-permissions-display" + ("-improved" if improved else ""),
        comm_type=CommunicationType.STATUS_INDICATOR,
        activeness=0.4,
        hazard=HazardProfile(
            severity=HazardSeverity.HIGH,
            frequency=HazardFrequency.OCCASIONAL,
            user_action_necessity=1.0,
            description="Sensitive files exposed to unintended principals.",
        ),
        clarity=0.8 if improved else 0.35,
        includes_instructions=improved,
        length_words=50,
        channel=DeliveryChannel.DIALOG,
        conspicuity=0.6,
        description=(
            "The dialog showing a file's access-control settings (and, in the "
            "improved variant, the computed effective permissions)."
        ),
    )


def set_permissions_task(
    improved_interface: bool = False, deadline_pressure: float = 0.6
) -> HumanSecurityTask:
    """Set file permissions so only the intended principals have access."""
    design = TaskDesign(
        steps=5,
        controls_discoverable=0.6,
        feedback_quality=0.85 if improved_interface else 0.25,
        controls_distinguishable=0.6,
        guidance_through_steps=improved_interface,
    )
    environment = Environment(description="Sharing a project folder under deadline pressure")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, deadline_pressure, "the project work itself")
    return HumanSecurityTask(
        name="set-file-permissions" + ("-improved" if improved_interface else ""),
        description=(
            "Change a file's permissions so exactly the intended people can "
            "access it, and confirm the change took effect."
        ),
        communication=permissions_indicator(improved=improved_interface),
        task_design=design,
        capability_requirements=Capabilities(
            knowledge_to_act=0.55,
            cognitive_skill=0.55,
            physical_skill=0.1,
            memory_capacity=0.2,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=environment,
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=False,
            automation_accuracy=0.6,
            human_information_advantage=0.8,
            vendor_constraints="Only the user knows who should have access to the file.",
        ),
        desired_action="Grant access to exactly the intended principals and verify the result.",
        failure_consequence="Sensitive files readable or writable by unintended principals.",
    )


def build_system() -> SecureSystem:
    return SecureSystem(
        name="file-permissions-management",
        description="Users manage access-control settings on their own files (Maxion & Reeder).",
        tasks=[set_permissions_task(False), set_permissions_task(True)],
    )


register_system("file-permissions", "File-permission management (Maxion & Reeder)")(build_system)


def population() -> PopulationSpec:
    return organization_population()


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The Maxion & Reeder interface knobs the gulf of evaluation hinges on."""
    return ParameterSpace(
        [
            Parameter(
                "improved_interface",
                "bool",
                default=False,
                description=(
                    "Salmon-style interface with an effective-permissions "
                    "visualization (Maxion & Reeder) instead of the stock XP dialog."
                ),
            ),
            Parameter(
                "feedback_quality",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description=(
                    "Override how clearly the dialog shows whether the change "
                    "achieved the desired outcome (the gulf of evaluation)."
                ),
            ),
            Parameter(
                "deadline_pressure",
                "float",
                default=0.6,
                low=0.0,
                high=1.0,
                description="Strength of the project work competing for attention.",
            ),
        ]
    )


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: one permissions task with the bound interface design."""
    task = set_permissions_task(
        improved_interface=bool(values["improved_interface"]),
        deadline_pressure=float(values["deadline_pressure"]),
    )
    if values["feedback_quality"] is not None:
        task.task_design = dataclasses.replace(
            task.task_design, feedback_quality=float(values["feedback_quality"])
        )
    system = SecureSystem(
        name="file-permissions-management",
        description="Users manage access-control settings on their own files (Maxion & Reeder).",
        tasks=[task],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=StageCalibration.neutral()
    )
