"""Typed scenario parameters.

The scenario registry (:mod:`repro.systems.scenario`) originally exposed
each modeled system as a *frozen* factory: the only way to study a
password-policy variant or a more passive warning was to hand-wire a new
system object.  This module supplies the typed parameter layer that makes
scenarios *bindable*:

* a :class:`Parameter` declares one named knob (kind, default, bounds or
  choices, whether ``None`` is a meaningful value),
* a :class:`ParameterSpace` is an ordered collection of parameters that
  validates override mappings and resolves them against the defaults, and
* :class:`ScenarioComponents` is what a scenario *binder* returns: the
  concrete system / population / calibration triple built for one set of
  parameter values.

Every registered scenario automatically accepts the **common** parameters
(:func:`common_parameter_space`): population training fraction, the
calibration's noise / intention / capability knobs, and the engine knobs
(``rounds`` / ``recovery_rate``, the outcome-coupled habituation weights
``dismiss_weight`` / ``heed_weight``, the funnel ``trace`` toggle, and
the engine performance knobs ``rng_mode`` / ``chunk_workers`` — all of
which become the bound variant's simulation defaults rather than
touching the component build).
Scenarios with a domain binder (passwords, anti-phishing) add their own
typed parameters on top — see
:func:`repro.systems.passwords.parameter_space`.

Validation errors raise :class:`~repro.core.exceptions.ModelError`, the
same class the registry uses for unknown scenarios, so callers of the
declarative experiment layer catch one exception type.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import ModelError
from ..core.task import SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec

__all__ = [
    "Parameter",
    "ParameterSpace",
    "ScenarioComponents",
    "ScenarioBinder",
    "common_parameter_space",
    "COMMON_PARAMETER_NAMES",
    "SIMULATION_PARAMETER_NAMES",
    "format_params",
    "variant_label",
]

#: The parameter kinds a scenario knob may declare.
PARAMETER_KINDS = ("float", "int", "bool", "choice")


@dataclasses.dataclass(frozen=True)
class Parameter:
    """One typed scenario knob.

    Parameters
    ----------
    name:
        Override key accepted by :meth:`Scenario.bind`.
    kind:
        ``"float"``, ``"int"``, ``"bool"``, or ``"choice"``.
    default:
        Value used when the knob is not overridden.
    low / high:
        Inclusive bounds for numeric kinds (either may be omitted).
    choices:
        Allowed values for the ``"choice"`` kind.
    allow_none:
        Whether ``None`` is a legal value (e.g. "no expiry", "keep the
        scenario default").
    """

    name: str
    kind: str
    default: Any = None
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Optional[Tuple[Any, ...]] = None
    allow_none: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("parameter name must be non-empty")
        if self.kind not in PARAMETER_KINDS:
            raise ModelError(
                f"parameter {self.name!r}: kind must be one of {PARAMETER_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "choice" and not self.choices:
            raise ModelError(f"parameter {self.name!r}: choice kind requires choices")
        if self.low is not None and self.high is not None and self.high < self.low:
            raise ModelError(f"parameter {self.name!r}: high must be >= low")
        # The declared default must itself be valid.
        self.validate(self.default)

    def validate(self, value: Any) -> Any:
        """Validate (and coerce) one value for this parameter."""
        if value is None:
            if not self.allow_none:
                raise ModelError(f"parameter {self.name!r} does not accept None")
            return None
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ModelError(
                    f"parameter {self.name!r} expects a bool, got {value!r}"
                )
            return value
        if self.kind == "choice":
            if value not in self.choices:
                raise ModelError(
                    f"parameter {self.name!r} expects one of {list(self.choices)}, "
                    f"got {value!r}"
                )
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ModelError(
                    f"parameter {self.name!r} expects an int, got {value!r}"
                )
            number: float = value
        else:  # float
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ModelError(
                    f"parameter {self.name!r} expects a number, got {value!r}"
                )
            number = float(value)
        if self.low is not None and number < self.low:
            raise ModelError(
                f"parameter {self.name!r} must be >= {self.low}, got {value!r}"
            )
        if self.high is not None and number > self.high:
            raise ModelError(
                f"parameter {self.name!r} must be <= {self.high}, got {value!r}"
            )
        return int(number) if self.kind == "int" else float(number)


class ParameterSpace:
    """An ordered, name-unique collection of :class:`Parameter` objects."""

    def __init__(self, parameters: Sequence[Parameter] = ()) -> None:
        self._parameters: Dict[str, Parameter] = {}
        for parameter in parameters:
            if parameter.name in self._parameters:
                raise ModelError(f"duplicate parameter {parameter.name!r}")
            self._parameters[parameter.name] = parameter

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __contains__(self, name: object) -> bool:
        return name in self._parameters

    def names(self) -> Tuple[str, ...]:
        return tuple(self._parameters)

    def get(self, name: str) -> Parameter:
        if name not in self._parameters:
            raise ModelError(
                f"unknown parameter {name!r}; known: {list(self._parameters)}"
            )
        return self._parameters[name]

    # -- validation -------------------------------------------------------------

    def defaults(self) -> Dict[str, Any]:
        """Default value of every parameter, in declaration order."""
        return {name: parameter.default for name, parameter in self._parameters.items()}

    def validate(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate an override mapping; unknown names raise :class:`ModelError`."""
        unknown = [name for name in overrides if name not in self._parameters]
        if unknown:
            raise ModelError(
                f"unknown parameters {unknown}; known: {list(self._parameters)}"
            )
        return {
            name: self._parameters[name].validate(value)
            for name, value in overrides.items()
        }

    def resolve(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults updated with validated overrides, in declaration order."""
        validated = self.validate(overrides)
        resolved = self.defaults()
        resolved.update(validated)
        return resolved

    def merged(self, other: "ParameterSpace") -> "ParameterSpace":
        """A new space holding this space's parameters followed by ``other``'s."""
        collisions = [name for name in other.names() if name in self]
        if collisions:
            raise ModelError(f"parameter name collision: {collisions}")
        return ParameterSpace([*self, *other])

    def describe(self) -> Sequence[Dict[str, Any]]:
        """One row per parameter (for docs and ``--help``-style listings)."""
        return [
            {
                "name": parameter.name,
                "kind": parameter.kind,
                "default": parameter.default,
                "bounds": (parameter.low, parameter.high),
                "choices": parameter.choices,
                "description": parameter.description,
            }
            for parameter in self
        ]


@dataclasses.dataclass(frozen=True)
class ScenarioComponents:
    """The concrete component triple a scenario binder builds."""

    system: SecureSystem
    population: PopulationSpec
    calibration: StageCalibration


#: A scenario binder maps fully-resolved custom parameter values to components.
ScenarioBinder = Callable[[Mapping[str, Any]], ScenarioComponents]

#: Names of the parameters every scenario accepts.
COMMON_PARAMETER_NAMES = (
    "training_fraction",
    "user_noise_std",
    "intention_multiplier",
    "capability_multiplier",
    "rounds",
    "recovery_rate",
    "dismiss_weight",
    "heed_weight",
    "trace",
    "rng_mode",
    "chunk_workers",
)

#: The common knobs consumed by the engine (simulation defaults of a bound
#: variant) rather than by the component build.
SIMULATION_PARAMETER_NAMES = (
    "rounds",
    "recovery_rate",
    "dismiss_weight",
    "heed_weight",
    "trace",
    "rng_mode",
    "chunk_workers",
)


def common_parameter_space() -> ParameterSpace:
    """The parameters every registered scenario accepts.

    All default to ``None`` ("keep the scenario's own value"), so binding a
    scenario with no overrides reproduces the unbound scenario exactly.
    """
    return ParameterSpace(
        [
            Parameter(
                "training_fraction",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Fraction of the population with security training.",
            ),
            Parameter(
                "user_noise_std",
                "float",
                default=None,
                low=0.0,
                high=0.5,
                allow_none=True,
                description="Per-user noise added to stage probabilities.",
            ),
            Parameter(
                "intention_multiplier",
                "float",
                default=None,
                low=0.0,
                high=10.0,
                allow_none=True,
                description="Calibration multiplier on the intention gate.",
            ),
            Parameter(
                "capability_multiplier",
                "float",
                default=None,
                low=0.0,
                high=10.0,
                allow_none=True,
                description="Calibration multiplier on the capability gate.",
            ),
            Parameter(
                "rounds",
                "int",
                default=None,
                low=1,
                high=10_000,
                allow_none=True,
                description="Hazard encounters each simulated receiver faces.",
            ),
            Parameter(
                "recovery_rate",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Habituation recovery applied between encounter rounds.",
            ),
            Parameter(
                "dismiss_weight",
                "float",
                default=None,
                low=0.0,
                high=100.0,
                allow_none=True,
                description=(
                    "Exposure accrued by a delivered encounter the receiver "
                    "dismissed (hazard not avoided); outcome-coupled habituation."
                ),
            ),
            Parameter(
                "heed_weight",
                "float",
                default=None,
                low=0.0,
                high=100.0,
                allow_none=True,
                description=(
                    "Exposure accrued by a delivered encounter the receiver "
                    "heeded (hazard avoided); outcome-coupled habituation."
                ),
            ),
            Parameter(
                "trace",
                "bool",
                default=None,
                allow_none=True,
                description="Keep streaming per-stage funnel tallies for the run.",
            ),
            Parameter(
                "rng_mode",
                "choice",
                default=None,
                choices=("matrix", "counter"),
                allow_none=True,
                description=(
                    "Decision-stream source: 'counter' (O(1)-addressable keyed "
                    "streams, the engine default) or 'matrix' (the sequential "
                    "legacy layout, kept replayable for archived rows)."
                ),
            ),
            Parameter(
                "chunk_workers",
                "int",
                default=None,
                low=1,
                high=256,
                allow_none=True,
                description=(
                    "Worker processes simulating the chunks of one run "
                    "(bit-identical to serial for any count)."
                ),
            ),
        ]
    )


def format_params(params: Mapping[str, Any]) -> str:
    """Canonical ``name=value,...`` rendering of parameter overrides.

    The one formatter behind variant labels, sweep-point labels, and
    derived policy/calibration names, so provenance strings agree
    everywhere.
    """
    return ",".join(f"{name}={value}" for name, value in params.items())


def variant_label(scenario_name: str, params: Mapping[str, Any]) -> str:
    """Canonical human-readable label for a bound scenario variant."""
    if not params:
        return scenario_name
    return f"{scenario_name}[{format_params(params)}]"
