"""Anti-phishing browser warnings (case study, Section 3.1).

Models the three warning designs the paper analyses plus the no-warning
baseline:

* the **Firefox** active warning — greys out the page and shows a blocking
  pop-up that "does not look similar to other browser warnings",
* the **IE active** warning — replaces the page but resembles other IE
  error pages,
* the **IE passive** warning — loads a few seconds after the page and is
  dismissed if the user types into the page, and
* **no warning** — the user must recognize the phish unaided.

Each variant is a :class:`~repro.core.task.HumanSecurityTask` whose human
decision is "heed the warning and leave the suspicious site, or override it
and proceed".  :func:`calibration` returns the stage calibration that
anchors the simulated population to the Egelman et al. / Wu et al.
findings (see :mod:`repro.studies`).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.exceptions import ModelError
from ..core.impediments import (
    Environment,
    Interference,
    InterferenceSource,
    StimulusKind,
)
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, general_web_population
from ..core.stages import Stage
from ..studies.registry import registry
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "WarningVariant",
    "phishing_hazard",
    "firefox_warning",
    "ie_active_warning",
    "ie_passive_warning",
    "warning_for",
    "task_for",
    "build_system",
    "population",
    "calibration",
    "parameter_space",
    "scenario_components",
]


class WarningVariant(enum.Enum):
    """The warning designs compared in the case study."""

    FIREFOX = "firefox"
    IE_ACTIVE = "ie_active"
    IE_PASSIVE = "ie_passive"
    NO_WARNING = "no_warning"


def phishing_hazard() -> HazardProfile:
    """The hazard all variants address: visiting a phishing site."""
    return HazardProfile(
        severity=HazardSeverity.HIGH,
        frequency=HazardFrequency.OCCASIONAL,
        user_action_necessity=0.9,
        description="Credential theft via a spoofed web site reached from a phishing email.",
    )


def firefox_warning() -> Communication:
    """The Firefox active anti-phishing warning."""
    return Communication(
        name="firefox-antiphishing-warning",
        comm_type=CommunicationType.WARNING,
        activeness=1.0,
        hazard=phishing_hazard(),
        clarity=0.8,
        includes_instructions=True,
        explains_risk=False,
        resembles_low_risk_communications=False,
        length_words=40,
        channel=DeliveryChannel.DIALOG,
        conspicuity=0.9,
        allows_override=True,
        false_positive_rate=0.02,
        description=(
            "Greys out the suspected page and shows a pop-up warning that does "
            "not look similar to other browser warnings; the user must click a "
            "link to override."
        ),
    )


def ie_active_warning() -> Communication:
    """The IE active anti-phishing warning (blocks the page)."""
    return Communication(
        name="ie-active-antiphishing-warning",
        comm_type=CommunicationType.WARNING,
        activeness=1.0,
        hazard=phishing_hazard(),
        clarity=0.65,
        includes_instructions=True,
        explains_risk=False,
        resembles_low_risk_communications=True,
        length_words=60,
        channel=DeliveryChannel.IN_PAGE,
        conspicuity=0.8,
        allows_override=True,
        false_positive_rate=0.02,
        description=(
            "Displays an active warning instead of loading the page; resembles "
            "other IE error pages (some users confuse it with a 404)."
        ),
    )


def ie_passive_warning() -> Communication:
    """The IE passive anti-phishing warning (page loads, passive indicator)."""
    return Communication(
        name="ie-passive-antiphishing-warning",
        comm_type=CommunicationType.WARNING,
        activeness=0.35,
        hazard=phishing_hazard(),
        clarity=0.55,
        includes_instructions=True,
        explains_risk=False,
        resembles_low_risk_communications=True,
        length_words=30,
        channel=DeliveryChannel.BROWSER_CHROME,
        conspicuity=0.4,
        allows_override=True,
        false_positive_rate=0.02,
        description=(
            "Loads the page and shows a passive warning that appears a few "
            "seconds later and is dismissed if the user types into the page."
        ),
    )


def warning_for(variant: WarningVariant) -> Communication:
    """The communication used by a variant (``None``-free; raises for NO_WARNING)."""
    if variant is WarningVariant.FIREFOX:
        return firefox_warning()
    if variant is WarningVariant.IE_ACTIVE:
        return ie_active_warning()
    if variant is WarningVariant.IE_PASSIVE:
        return ie_passive_warning()
    raise ValueError("the no-warning variant has no communication")


def _browsing_environment(variant: WarningVariant) -> Environment:
    """The impediment context: the user is mid primary task, reading email."""
    environment = Environment(description="User browsing from an emailed link")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.6, "completing the emailed request")
    environment.add_stimulus(StimulusKind.UNRELATED_COMMUNICATION, 0.2, "other notifications")
    if variant is WarningVariant.IE_PASSIVE:
        # The passive warning loads a few seconds after the page and is
        # dismissed if the user starts typing into a form.
        environment.add_interference(
            Interference(
                source=InterferenceSource.TECHNOLOGY_FAILURE,
                degrade_probability=0.5,
                description="warning loads late and is dismissed by typing",
            )
        )
    return environment


def _heed_warning_design() -> TaskDesign:
    """The protective action: close the tab or navigate away (one easy step)."""
    return TaskDesign(
        steps=1,
        controls_discoverable=0.9,
        feedback_quality=0.85,
        controls_distinguishable=0.9,
        guidance_through_steps=False,
    )


def _automation_profile() -> AutomationProfile:
    """Automation analysis: block outright instead of offering an override."""
    return AutomationProfile(
        can_fully_automate=True,
        automation_accuracy=0.92,
        automation_false_positive_rate=0.02,
        human_information_advantage=0.2,
        automation_cost=0.2,
        vendor_constraints=(
            "Browser vendors believe they must offer users the override option."
        ),
    )


def task_for(variant: WarningVariant) -> HumanSecurityTask:
    """The human security task for one warning variant."""
    communication = None if variant is WarningVariant.NO_WARNING else warning_for(variant)
    return HumanSecurityTask(
        name=f"heed-{variant.value}-warning",
        description=(
            "Decide whether to heed the anti-phishing warning and leave the "
            "suspicious site, or ignore the warning and proceed."
        ),
        communication=communication,
        task_design=_heed_warning_design(),
        capability_requirements=Capabilities(
            knowledge_to_act=0.1,
            cognitive_skill=0.2,
            physical_skill=0.1,
            memory_capacity=0.0,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=_browsing_environment(variant),
        security_critical=True,
        automation=_automation_profile(),
        desired_action="Leave the suspicious site (close the window or navigate away).",
        failure_consequence="User submits credentials to a phishing site.",
    )


def build_system() -> SecureSystem:
    """The full anti-phishing system: one task per warning variant."""
    return SecureSystem(
        name="browser-antiphishing-warnings",
        description=(
            "Web-browser anti-phishing warnings (Firefox active, IE active, IE "
            "passive) relying on the user to heed the warning (Section 3.1)."
        ),
        tasks=[
            task_for(WarningVariant.FIREFOX),
            task_for(WarningVariant.IE_ACTIVE),
            task_for(WarningVariant.IE_PASSIVE),
        ],
    )


# Register for the catalog (module import side effect is limited to this).
register_system(
    "antiphishing",
    "Browser anti-phishing warnings case study (Section 3.1)",
)(build_system)


def population() -> PopulationSpec:
    """The receiver population for this case study: general web users."""
    return general_web_population()


def calibration() -> StageCalibration:
    """Stage calibration anchoring the simulation to the cited studies.

    * The intention gate is scaled up because Egelman et al. found most
      users who read the warnings believed they should heed them
      (``warning_belief_rate`` ≈ 0.8), higher than the generic population
      intention score.
    * ``override_given_misunderstanding`` is low because confused users in
      the study mostly retried the emailed link rather than finding the
      override, so their mistakes failed safely.
    """
    belief_rate = registry.value("egelman2008", "warning_belief_rate")
    # The generic population model yields an intention score around 0.4 for
    # general web users; the study found ~0.8 of warning readers believed
    # they should heed it, so the gate is scaled by that ratio.
    return StageCalibration(
        stage_multipliers={
            Stage.COMPREHENSION: 1.2,
            Stage.KNOWLEDGE_ACQUISITION: 1.25,
        },
        intention_multiplier=belief_rate / 0.4,
        capability_multiplier=1.0,
        override_given_misunderstanding=0.15,
        user_noise_std=0.05,
        label="antiphishing-egelman2008",
    )


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The warning-design knobs the Section-2.1 ablations sweep."""
    return ParameterSpace(
        [
            Parameter(
                "variant",
                "choice",
                default=WarningVariant.IE_ACTIVE.value,
                choices=tuple(variant.value for variant in WarningVariant),
                description="Which warning design the task presents.",
            ),
            Parameter(
                "activeness",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Override the warning's position on the active-passive spectrum.",
            ),
            Parameter(
                "prior_exposures",
                "int",
                default=0,
                low=0,
                high=10_000,
                description="Habituation: exposures the population has already had.",
            ),
        ]
    )


def scenario_components(values) -> ScenarioComponents:
    """The scenario binder: one warning task with the requested design."""
    variant = WarningVariant(values["variant"])
    task = task_for(variant)
    if task.communication is None:
        # The no-warning baseline has nothing to modulate; ignoring the
        # knobs would make a sweep over them silently flat.
        if values["activeness"] is not None or values["prior_exposures"]:
            raise ModelError(
                "activeness/prior_exposures do not apply to the no_warning "
                "variant (it has no communication)"
            )
    else:
        communication = task.communication
        if values["activeness"] is not None:
            communication = communication.with_activeness(values["activeness"])
        if values["prior_exposures"]:
            communication = communication.with_exposures(values["prior_exposures"])
        task.communication = communication
    system = SecureSystem(
        name=f"browser-antiphishing[{variant.value}]",
        description="One anti-phishing warning design, bound for an experiment.",
        tasks=[task],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=calibration()
    )
