"""Catalog of every modeled secure system.

Importing this module ensures every system module has registered its
builder, then exposes the lookup API.  Examples, tests, and benchmarks use
:func:`all_systems` to iterate the complete inventory.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.task import SecureSystem
from . import (  # noqa: F401  (imported for their registration side effects)
    antiphishing,
    email_attachments,
    file_permissions,
    graphical_passwords,
    passwords,
    smartcard,
    ssl_indicators,
)
from .base import available_systems, build, builder_for

__all__ = ["available_systems", "build", "builder_for", "all_systems", "system_descriptions"]


def all_systems() -> Dict[str, SecureSystem]:
    """Build every registered system, keyed by catalog name."""
    return {name: build(name) for name in available_systems()}


def system_descriptions() -> Dict[str, str]:
    """Catalog name → one-line description for every registered system."""
    return {name: builder_for(name).description for name in available_systems()}
