"""SSL lock-icon indicator: a passive status indicator under attack.

Section 2.2 and 2.3.1 use the SSL lock icon repeatedly: some users have
never noticed it, eye-tracking shows most users do not look for it, its
meaning is widely misunderstood, and malicious servers can spoof it (Ye et
al.).  This model expresses the "verify the connection is protected before
entering sensitive data" task so those failure modes fall out of the
framework analysis and the simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.impediments import (
    Environment,
    Interference,
    InterferenceSource,
    StimulusKind,
)
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, general_web_population
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "lock_icon_indicator",
    "verify_connection_task",
    "build_system",
    "population",
    "parameter_space",
    "scenario_components",
]


def lock_icon_indicator(habituation_exposures: int = 25) -> Communication:
    """The browser-chrome SSL lock icon as a passive status indicator."""
    return Communication(
        name="ssl-lock-icon",
        comm_type=CommunicationType.STATUS_INDICATOR,
        activeness=0.1,
        hazard=HazardProfile(
            severity=HazardSeverity.HIGH,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=0.6,
            description="Submitting sensitive data over an unprotected or spoofed connection.",
        ),
        clarity=0.3,
        includes_instructions=False,
        explains_risk=False,
        resembles_low_risk_communications=False,
        length_words=1,
        channel=DeliveryChannel.BROWSER_CHROME,
        conspicuity=0.2,
        allows_override=True,
        false_positive_rate=0.0,
        habituation_exposures=habituation_exposures,
        description="A small padlock symbol in the browser chrome.",
    )


def verify_connection_task(spoofing_capability: float = 0.3) -> HumanSecurityTask:
    """Check the lock icon (and certificate) before entering sensitive data."""
    environment = Environment(description="User completing a purchase or login")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.7, "completing the form")
    environment.competing_indicator_count = 4
    if spoofing_capability > 0:
        environment.add_interference(
            Interference(
                source=InterferenceSource.MALICIOUS_ATTACKER,
                spoof_probability=spoofing_capability,
                description="Malicious server displays a spoofed lock icon (Ye et al.).",
            )
        )
    return HumanSecurityTask(
        name="verify-ssl-before-submitting",
        description=(
            "Before entering sensitive data, confirm the connection is protected "
            "by checking the lock icon and, ideally, the certificate."
        ),
        communication=lock_icon_indicator(),
        task_design=TaskDesign(
            steps=2,
            controls_discoverable=0.5,
            feedback_quality=0.4,
            controls_distinguishable=0.7,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.5,
            cognitive_skill=0.4,
            physical_skill=0.1,
            memory_capacity=0.2,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=environment,
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.9,
            automation_false_positive_rate=0.05,
            human_information_advantage=0.2,
            automation_cost=0.3,
            vendor_constraints=(
                "Browsers increasingly enforce HTTPS automatically rather than "
                "relying on users to check indicators."
            ),
        ),
        desired_action="Verify the indicator and withhold data if the connection is unprotected.",
        failure_consequence="Sensitive data submitted over an unprotected or attacker-controlled channel.",
    )


def build_system() -> SecureSystem:
    """The SSL-indicator system (with a moderately capable spoofing attacker)."""
    return SecureSystem(
        name="ssl-lock-indicator",
        description="Passive SSL lock-icon indicator relied on to gate sensitive submissions.",
        tasks=[verify_connection_task()],
    )


register_system("ssl-indicator", "Passive SSL lock-icon status indicator")(build_system)


def population() -> PopulationSpec:
    """General web users, as in the anti-phishing case study."""
    return general_web_population()


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The lock-icon knobs the Section-2.3.1 failure modes hinge on.

    The defaults reproduce :func:`build_system` exactly, so binding the
    scenario with no overrides is the base scenario.
    """
    return ParameterSpace(
        [
            Parameter(
                "habituation_exposures",
                "int",
                default=25,
                low=0,
                high=10_000,
                description=(
                    "Exposures the population has already had to the lock "
                    "icon (it is on screen constantly)."
                ),
            ),
            Parameter(
                "spoofing_capability",
                "float",
                default=0.3,
                low=0.0,
                high=1.0,
                description=(
                    "Probability a malicious server displays a spoofed lock "
                    "icon (Ye et al.)."
                ),
            ),
            Parameter(
                "conspicuity",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description=(
                    "Override how conspicuous the indicator is (eye-tracking "
                    "shows most users never look for the default)."
                ),
            ),
        ]
    )


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: one verify-connection task with the bound knobs."""
    task = verify_connection_task(spoofing_capability=float(values["spoofing_capability"]))
    communication = lock_icon_indicator(
        habituation_exposures=int(values["habituation_exposures"])
    )
    if values["conspicuity"] is not None:
        communication = dataclasses.replace(
            communication, conspicuity=float(values["conspicuity"])
        )
    task.communication = communication
    system = SecureSystem(
        name="ssl-lock-indicator",
        description="Passive SSL lock-icon indicator relied on to gate sensitive submissions.",
        tasks=[task],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=StageCalibration.neutral()
    )
