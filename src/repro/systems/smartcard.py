"""Cryptographic smartcard handling: gulfs of execution and evaluation.

Section 2.4 cites Piazzalunga et al.'s usability study of cryptographic
smart cards: users had trouble figuring out how to insert the cards (gulf
of execution) and could not tell when a card had been inserted properly
(gulf of evaluation).  The recommended mitigations — visual cues printed on
the card, feedback from the reader — map directly onto
:func:`repro.norman.gulfs.assess_gulfs`.  A second task models the
"remove the card before walking away" requirement from Section 1, a
lapse-prone step with no triggering communication at all.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.impediments import Environment, StimulusKind
from ..core.receiver import Capabilities
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, organization_population
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents

__all__ = [
    "insertion_instructions",
    "insert_card_task",
    "remove_card_task",
    "build_system",
    "population",
    "parameter_space",
    "scenario_components",
]


def insertion_instructions(improved: bool = False) -> Communication:
    """Instructions for inserting the card.

    ``improved=True`` models the Piazzalunga et al. recommendations:
    visual cues printed on the card and feedback from the reader.
    """
    return Communication(
        name="smartcard-insertion-instructions" + ("-improved" if improved else ""),
        comm_type=CommunicationType.NOTICE,
        activeness=0.3,
        hazard=HazardProfile(
            severity=HazardSeverity.MODERATE,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=1.0,
            description="Authentication fails or the card is damaged by incorrect insertion.",
        ),
        clarity=0.85 if improved else 0.4,
        includes_instructions=True,
        length_words=20,
        channel=DeliveryChannel.DOCUMENT,
        conspicuity=0.7 if improved else 0.3,
        description="Printed guidance on how to insert the smartcard into the reader.",
    )


def insert_card_task(improved_design: bool = False) -> HumanSecurityTask:
    """Insert the smartcard correctly to authenticate."""
    design = TaskDesign(
        steps=2,
        controls_discoverable=0.85 if improved_design else 0.4,
        feedback_quality=0.85 if improved_design else 0.3,
        controls_distinguishable=0.8,
        guidance_through_steps=improved_design,
    )
    return HumanSecurityTask(
        name="insert-smartcard" + ("-improved" if improved_design else ""),
        description="Insert the cryptographic smartcard into the reader correctly.",
        communication=insertion_instructions(improved=improved_design),
        task_design=design,
        capability_requirements=Capabilities(
            knowledge_to_act=0.3,
            cognitive_skill=0.3,
            physical_skill=0.4,
            memory_capacity=0.1,
            has_required_software=False,
            has_required_device=True,
        ),
        environment=Environment(
            stimuli=[],
            description="Starting the work day at the desk",
        ),
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=False,
            automation_accuracy=0.0,
            human_information_advantage=1.0,
            vendor_constraints="A physical token must be physically handled by the human.",
        ),
        desired_action="Insert the card fully, chip-side correct, and wait for the reader light.",
        failure_consequence="Authentication unavailable; users work around the smartcard system.",
    )


def remove_card_task(primary_task_pressure: float = 0.7) -> HumanSecurityTask:
    """Remove the card before walking away — a lapse-prone step with no prompt."""
    environment = Environment(description="Leaving the desk for a meeting")
    environment.add_stimulus(
        StimulusKind.PRIMARY_TASK, primary_task_pressure, "rushing to the next meeting"
    )
    return HumanSecurityTask(
        name="remove-smartcard-on-leaving",
        description=(
            "Remove the smartcard from the reader before walking away from the "
            "computer."
        ),
        communication=None,
        task_design=TaskDesign(
            steps=1,
            controls_discoverable=0.9,
            feedback_quality=0.5,
            controls_distinguishable=0.95,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.1,
            cognitive_skill=0.1,
            physical_skill=0.2,
            memory_capacity=0.3,
            has_required_software=False,
            has_required_device=True,
        ),
        environment=environment,
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.9,
            automation_false_positive_rate=0.02,
            human_information_advantage=0.1,
            automation_cost=0.3,
            vendor_constraints="Proximity-based auto-lock reduces reliance on remembering.",
        ),
        desired_action="Take the card when leaving the workstation.",
        failure_consequence="An unattended, authenticated session protected only by the forgotten card.",
    )


def build_system() -> SecureSystem:
    return SecureSystem(
        name="smartcard-authentication",
        description="Smartcard-based authentication relying on correct physical handling.",
        tasks=[insert_card_task(False), insert_card_task(True), remove_card_task()],
    )


register_system("smartcard", "Cryptographic smartcard handling (Piazzalunga et al.)")(build_system)


def population() -> PopulationSpec:
    return organization_population()


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """The Piazzalunga et al. design knobs the gulf stages hinge on."""
    return ParameterSpace(
        [
            Parameter(
                "improved_design",
                "bool",
                default=False,
                description=(
                    "Visual cues printed on the card and feedback from the "
                    "reader (the Piazzalunga et al. recommendations)."
                ),
            ),
            Parameter(
                "instruction_clarity",
                "float",
                default=None,
                low=0.0,
                high=1.0,
                allow_none=True,
                description="Override how clearly the insertion instructions are written.",
            ),
            Parameter(
                "removal_pressure",
                "float",
                default=0.7,
                low=0.0,
                high=1.0,
                description=(
                    "Strength of the primary-task pull (rushing to the next "
                    "meeting) competing with removing the card."
                ),
            ),
        ]
    )


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: insertion + removal tasks with the bound design."""
    insert = insert_card_task(improved_design=bool(values["improved_design"]))
    if values["instruction_clarity"] is not None:
        insert.communication = dataclasses.replace(
            insert.communication, clarity=float(values["instruction_clarity"])
        )
    remove = remove_card_task(
        primary_task_pressure=float(values["removal_pressure"])
    )
    system = SecureSystem(
        name="smartcard-authentication",
        description="Smartcard-based authentication relying on correct physical handling.",
        tasks=[insert, remove],
    )
    return ScenarioComponents(
        system=system, population=population(), calibration=StageCalibration.neutral()
    )
