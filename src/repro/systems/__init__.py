"""Concrete secure-system models analysed with the framework.

Each module expresses one secure system from the paper (or from the
examples scattered through Sections 1–2) as a
:class:`~repro.core.task.SecureSystem` built from the core task model:

* :mod:`repro.systems.antiphishing` — browser anti-phishing warnings
  (case study 3.1),
* :mod:`repro.systems.passwords` — organizational password policies
  (case study 3.2),
* :mod:`repro.systems.ssl_indicators` — the passive SSL lock icon,
* :mod:`repro.systems.email_attachments` — judging suspicious attachments,
* :mod:`repro.systems.smartcard` — smartcard handling (Piazzalunga et al.),
* :mod:`repro.systems.file_permissions` — file-permission management
  (Maxion & Reeder),
* :mod:`repro.systems.graphical_passwords` — predictable graphical-password
  choices (Davis et al., Thorpe & van Oorschot).
"""

from . import (
    antiphishing,
    email_attachments,
    file_permissions,
    graphical_passwords,
    passwords,
    smartcard,
    ssl_indicators,
)
from .base import available_systems, build, builder_for
from .catalog import all_systems, system_descriptions
from .parameters import (
    Parameter,
    ParameterSpace,
    ScenarioComponents,
    common_parameter_space,
    variant_label,
)
from .scenario import (
    Scenario,
    ScenarioLike,
    ScenarioVariant,
    all_scenarios,
    available_scenarios,
    get_scenario,
    register_scenario,
)

__all__ = [
    "antiphishing",
    "passwords",
    "ssl_indicators",
    "email_attachments",
    "smartcard",
    "file_permissions",
    "graphical_passwords",
    "available_systems",
    "build",
    "builder_for",
    "all_systems",
    "system_descriptions",
    "Scenario",
    "ScenarioLike",
    "ScenarioVariant",
    "register_scenario",
    "available_scenarios",
    "get_scenario",
    "all_scenarios",
    "Parameter",
    "ParameterSpace",
    "ScenarioComponents",
    "common_parameter_space",
    "variant_label",
]
