"""Shared infrastructure for the modeled secure systems.

Every module in :mod:`repro.systems` builds concrete
:class:`~repro.core.task.SecureSystem` instances from the core task model.
This module provides the small amount of shared machinery they need: a
:class:`SystemBuilder` registration decorator and the
:func:`available_systems` / :func:`build` lookup API used by the catalog,
examples, and benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..core.exceptions import ModelError
from ..core.task import SecureSystem

__all__ = ["SystemBuilder", "register_system", "available_systems", "build"]

_BUILDERS: Dict[str, "SystemBuilder"] = {}


@dataclasses.dataclass(frozen=True)
class SystemBuilder:
    """A named builder for a modeled secure system."""

    name: str
    description: str
    builder: Callable[[], SecureSystem]

    def build(self) -> SecureSystem:
        system = self.builder()
        system.validate()
        return system


def register_system(name: str, description: str) -> Callable[[Callable[[], SecureSystem]], Callable[[], SecureSystem]]:
    """Decorator registering a zero-argument system builder under ``name``."""

    def decorator(builder: Callable[[], SecureSystem]) -> Callable[[], SecureSystem]:
        if name in _BUILDERS:
            raise ModelError(f"system builder {name!r} already registered")
        _BUILDERS[name] = SystemBuilder(name=name, description=description, builder=builder)
        return builder

    return decorator


def available_systems() -> List[str]:
    """Names of every registered system builder."""
    return sorted(_BUILDERS)


def build(name: str) -> SecureSystem:
    """Build a registered system by name."""
    if name not in _BUILDERS:
        raise ModelError(f"unknown system {name!r}; known: {available_systems()}")
    return _BUILDERS[name].build()


def builder_for(name: str) -> SystemBuilder:
    """Return the registered builder record for ``name``."""
    if name not in _BUILDERS:
        raise ModelError(f"unknown system {name!r}; known: {available_systems()}")
    return _BUILDERS[name]
