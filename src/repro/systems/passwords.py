"""Organizational password policies (case study, Section 3.2).

Models a password policy as a set of requirements imposed on an employee
population — minimum length, character-class rules, expiry, the number of
distinct accounts the employee must cover, and prohibitions on reuse,
writing down, and sharing — together with the three human tasks the case
study identifies:

1. **create** passwords that comply with the policy,
2. **recall** them when needed without writing them down or reusing them,
3. **refrain from sharing** them.

The policy itself is the (passive) communication; the binding failure the
case study reaches is a *capability* failure — "people are not capable of
remembering large numbers of policy-compliant passwords" — which this model
expresses by deriving a memory-capacity requirement from the policy's
burden.  Mitigation variants (single sign-on, a password vault, rationale
training) are modeled as policy variants so the benchmark can sweep them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional

from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.exceptions import ModelError
from ..core.impediments import Environment, StimulusKind
from ..core.receiver import Capabilities
from ..core.stages import Stage
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.calibration import StageCalibration
from ..simulation.population import PopulationSpec, organization_population
from ..studies.registry import registry
from .base import register_system
from .parameters import Parameter, ParameterSpace, ScenarioComponents, format_params

__all__ = [
    "PasswordPolicy",
    "baseline_policy",
    "sso_policy",
    "vault_policy",
    "training_policy",
    "relaxed_expiry_policy",
    "policy_variants",
    "case_study_variant_params",
    "policy_communication",
    "creation_task",
    "recall_task",
    "sharing_task",
    "build_system",
    "build_system_for",
    "population",
    "calibration",
    "parameter_space",
    "policy_for_values",
    "scenario_components",
]


@dataclasses.dataclass(frozen=True)
class PasswordPolicy:
    """An organizational password policy and its deployment context.

    The deployment flags (``single_sign_on``, ``password_vault``,
    ``training_provided``) represent the mitigations the case study
    considers; they change the burden the policy places on human memory and
    the support users receive, not the policy text itself.
    """

    name: str = "baseline"
    min_length: int = 8
    required_character_classes: int = 3
    expiry_days: Optional[int] = 90
    distinct_accounts: int = 8
    forbid_reuse: bool = True
    forbid_writing_down: bool = True
    forbid_sharing: bool = True
    single_sign_on: bool = False
    password_vault: bool = False
    training_provided: bool = False

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ModelError("min_length must be positive")
        if not 1 <= self.required_character_classes <= 4:
            raise ModelError("required_character_classes must be between 1 and 4")
        if self.expiry_days is not None and self.expiry_days <= 0:
            raise ModelError("expiry_days must be positive when set")
        if self.distinct_accounts < 1:
            raise ModelError("distinct_accounts must be at least 1")

    @property
    def effective_accounts(self) -> int:
        """Distinct credentials the human must actually remember."""
        if self.single_sign_on:
            return 1
        return self.distinct_accounts

    @property
    def complexity_burden(self) -> float:
        """Burden of composing a single compliant password (0–1)."""
        length_burden = min(0.3, 0.03 * max(0, self.min_length - 6))
        class_burden = 0.08 * (self.required_character_classes - 1)
        return min(1.0, length_burden + class_burden)

    @property
    def memory_burden(self) -> float:
        """Memory capacity the policy demands of each human (0–1).

        Grows with the number of distinct credentials, the per-password
        complexity, and frequent forced changes; collapses when a password
        vault remembers the secrets instead of the human.
        """
        if self.password_vault:
            # The human only remembers the vault's master secret.
            return min(0.35, 0.2 + self.complexity_burden * 0.3)
        burden = 0.15 + 0.07 * (self.effective_accounts - 1)
        burden += 0.5 * self.complexity_burden
        if self.expiry_days is not None and self.expiry_days <= 90:
            burden += 0.15
        elif self.expiry_days is not None:
            burden += 0.05
        return min(0.95, burden)

    @property
    def creation_burden(self) -> float:
        """Cognitive burden of creating a compliant password (0–1)."""
        return min(0.6, 0.2 + self.complexity_burden)

    @property
    def convenience_cost(self) -> float:
        """How much the policy disrupts ordinary workflows (0–1)."""
        cost = 0.25 + 0.4 * self.memory_burden
        if self.single_sign_on or self.password_vault:
            cost -= 0.2
        return max(0.05, min(1.0, cost))


def baseline_policy() -> PasswordPolicy:
    """A typical strict policy: 8+ chars, 3 classes, 90-day expiry, 8 accounts."""
    return PasswordPolicy(name="baseline")


def sso_policy() -> PasswordPolicy:
    """The baseline policy deployed behind single sign-on."""
    return dataclasses.replace(baseline_policy(), name="single-sign-on", single_sign_on=True)


def vault_policy() -> PasswordPolicy:
    """The baseline policy with an approved password vault."""
    return dataclasses.replace(baseline_policy(), name="password-vault", password_vault=True)


def training_policy() -> PasswordPolicy:
    """The baseline policy plus rationale training (no technical change)."""
    return dataclasses.replace(baseline_policy(), name="rationale-training", training_provided=True)


def relaxed_expiry_policy() -> PasswordPolicy:
    """The baseline policy without mandatory expiry.

    The case study asks organizations to "consider whether the security
    benefits associated with frequent, mandatory password changes make up
    for the tendency of users to violate other parts of the password
    policy because they cannot remember frequently-changed passwords."
    """
    return dataclasses.replace(baseline_policy(), name="no-expiry", expiry_days=None)


def policy_variants() -> Dict[str, PasswordPolicy]:
    """The variants swept by the case-study benchmark."""
    variants = [
        baseline_policy(),
        relaxed_expiry_policy(),
        training_policy(),
        sso_policy(),
        vault_policy(),
    ]
    return {policy.name: policy for policy in variants}


def _password_hazard() -> HazardProfile:
    return HazardProfile(
        severity=HazardSeverity.HIGH,
        frequency=HazardFrequency.FREQUENT,
        user_action_necessity=0.8,
        description="Account compromise through weak, reused, or shared passwords.",
    )


def policy_communication(policy: PasswordPolicy) -> Communication:
    """The policy document as a (passive) communication."""
    return Communication(
        name=f"password-policy-{policy.name}",
        comm_type=CommunicationType.POLICY,
        # The policy's composition rules are re-presented (and enforced) by
        # the password-change form itself, so the effective communication is
        # far more active and concise than the handbook chapter it comes from.
        activeness=0.7,
        hazard=_password_hazard(),
        clarity=0.85,
        includes_instructions=True,
        explains_risk=policy.training_provided,
        resembles_low_risk_communications=False,
        length_words=80,
        channel=DeliveryChannel.DOCUMENT,
        conspicuity=0.7,
        allows_override=False,
        false_positive_rate=0.0,
        habituation_exposures=1,
        description=(
            "The organizational password policy (employee handbook, reminders at "
            "password-creation time)."
        ),
    )


def _office_environment(policy: PasswordPolicy) -> Environment:
    environment = Environment(description="Employee trying to get work done")
    environment.add_stimulus(
        StimulusKind.PRIMARY_TASK,
        0.55,
        "the work task that requires authenticating",
    )
    return environment


def creation_task(policy: PasswordPolicy) -> HumanSecurityTask:
    """Task 1: select passwords that comply with the policy."""
    return HumanSecurityTask(
        name=f"create-compliant-password[{policy.name}]",
        description="Select a password that satisfies the policy's composition rules.",
        communication=policy_communication(policy),
        task_design=TaskDesign(
            steps=1,
            controls_discoverable=0.9,
            feedback_quality=0.7,
            controls_distinguishable=0.95,
            requires_unpredictable_choice=True,
            choice_predictability=registry.value("kuo2006", "mnemonic_phrases_predictable"),
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.3,
            cognitive_skill=policy.creation_burden,
            physical_skill=0.1,
            memory_capacity=0.1,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=_office_environment(policy),
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=True,
            automation_accuracy=0.95,
            automation_false_positive_rate=0.0,
            human_information_advantage=0.1,
            automation_cost=0.3,
            vendor_constraints=(
                "System-assigned random passwords are likely too difficult for "
                "users to remember."
            ),
        ),
        desired_action="Create a policy-compliant, hard-to-guess password.",
        failure_consequence="Weak or predictable password accepted into the system.",
    )


def recall_task(policy: PasswordPolicy) -> HumanSecurityTask:
    """Task 2: remember and recall the passwords without writing them down."""
    return HumanSecurityTask(
        name=f"recall-passwords[{policy.name}]",
        description=(
            "Remember every distinct password the policy requires, recall each "
            "when needed, and do so without writing them down or reusing them."
        ),
        communication=policy_communication(policy),
        task_design=TaskDesign(
            steps=1,
            controls_discoverable=0.95,
            feedback_quality=0.9,
            controls_distinguishable=0.95,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.2,
            cognitive_skill=0.3,
            physical_skill=0.1,
            memory_capacity=policy.memory_burden,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=_office_environment(policy),
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=policy.password_vault or policy.single_sign_on,
            automation_accuracy=0.97,
            automation_false_positive_rate=0.0,
            human_information_advantage=0.0,
            automation_cost=0.4,
            vendor_constraints="Requires deploying single sign-on or a password vault.",
        ),
        desired_action=(
            "Recall the correct password for each system from memory, without "
            "writing it down, reusing it, or resetting it."
        ),
        failure_consequence=(
            "Passwords are reused across systems, written down, or frequently "
            "forgotten and reset."
        ),
    )


def sharing_task(policy: PasswordPolicy) -> HumanSecurityTask:
    """Task 3: refrain from sharing passwords with other people."""
    return HumanSecurityTask(
        name=f"refrain-from-sharing[{policy.name}]",
        description=(
            "Do not share passwords with colleagues, even when collaboration "
            "appears to require it."
        ),
        communication=policy_communication(policy),
        task_design=TaskDesign(
            steps=1,
            controls_discoverable=0.95,
            feedback_quality=0.9,
            controls_distinguishable=0.95,
        ),
        capability_requirements=Capabilities(
            knowledge_to_act=0.1,
            cognitive_skill=0.1,
            physical_skill=0.0,
            memory_capacity=0.0,
            has_required_software=False,
            has_required_device=False,
        ),
        environment=_office_environment(policy),
        security_critical=True,
        automation=AutomationProfile(
            can_fully_automate=False,
            automation_accuracy=0.5,
            human_information_advantage=0.8,
            vendor_constraints=(
                "Sharing is driven by collaboration needs; delegation features "
                "address the need but cannot be fully automatic."
            ),
        ),
        desired_action="Keep the password secret; use delegation features instead of sharing.",
        failure_consequence="Credentials shared among multiple people.",
    )


def build_system_for(policy: PasswordPolicy) -> SecureSystem:
    """The password-policy system for one policy variant."""
    return SecureSystem(
        name=f"password-policy-{policy.name}",
        description=(
            "Organizational password policy relying on employees to create, "
            "remember, and protect compliant passwords (Section 3.2)."
        ),
        tasks=[creation_task(policy), recall_task(policy), sharing_task(policy)],
    )


def build_system() -> SecureSystem:
    """The baseline-policy system (catalog entry point)."""
    return build_system_for(baseline_policy())


register_system(
    "passwords",
    "Organizational password policy case study (Section 3.2)",
)(build_system)


def population(policy: Optional[PasswordPolicy] = None) -> PopulationSpec:
    """The employee population, adjusted for the policy's deployment context."""
    policy = policy or baseline_policy()
    spec = organization_population()
    training_fraction = 0.9 if policy.training_provided else spec.training_fraction
    return dataclasses.replace(spec, training_fraction=training_fraction)


def calibration(policy: Optional[PasswordPolicy] = None) -> StageCalibration:
    """Stage calibration for the password case study.

    The paper records that awareness, comprehension, and application of
    typical password guidance are *not* the problem ("Most computer users
    appear to be aware of the typical password security guidance ...
    most people now understand [it] and know what they are supposed to
    do"), so the delivery/processing/application stages are scaled up to
    reflect the Kuo et al. comprehension findings; the capability and
    motivation gates are left to the generic model, which is where the
    case study locates the failures.
    """
    policy = policy or baseline_policy()
    understanding = registry.value("kuo2006", "understand_password_guidance")
    # The case study states that delivery, comprehension, and application of
    # password guidance are near-universal ("Most computer users appear to be
    # aware of the typical password security guidance ... most people now
    # understand [it] ... generally familiar ... know how to apply"), so
    # those stages are scaled up until they saturate near the probability
    # ceiling; the interesting failures are left to the intention
    # (motivation) and capability (memorability) gates, which is exactly
    # where the paper locates them.
    processing_multiplier = 1.0 + understanding
    return StageCalibration(
        stage_multipliers={
            Stage.ATTENTION_SWITCH: 5.0,
            Stage.ATTENTION_MAINTENANCE: 2.5,
            Stage.COMPREHENSION: 2.0 * understanding / 0.8,
            Stage.KNOWLEDGE_ACQUISITION: processing_multiplier,
            Stage.KNOWLEDGE_RETENTION: 1.6,
            Stage.KNOWLEDGE_TRANSFER: processing_multiplier,
        },
        intention_multiplier=2.0,
        capability_multiplier=1.0,
        override_given_misunderstanding=0.5,
        user_noise_std=0.05,
        label=f"passwords-{policy.name}",
    )


# ---------------------------------------------------------------------------
# Typed parameterization (consumed by the scenario registry / experiments)
# ---------------------------------------------------------------------------

def parameter_space() -> ParameterSpace:
    """Every :class:`PasswordPolicy` field as a typed scenario parameter."""
    return ParameterSpace(
        [
            Parameter("min_length", "int", default=8, low=1, high=64,
                      description="Minimum password length."),
            Parameter("required_character_classes", "int", default=3, low=1, high=4,
                      description="Character classes a password must mix."),
            Parameter("expiry_days", "int", default=90, low=1, high=3650, allow_none=True,
                      description="Forced-change interval; None disables expiry."),
            Parameter("distinct_accounts", "int", default=8, low=1, high=200,
                      description="Distinct accounts the policy covers."),
            Parameter("forbid_reuse", "bool", default=True,
                      description="Whether reusing passwords across accounts is banned."),
            Parameter("forbid_writing_down", "bool", default=True,
                      description="Whether writing passwords down is banned."),
            Parameter("forbid_sharing", "bool", default=True,
                      description="Whether sharing passwords is banned."),
            Parameter("single_sign_on", "bool", default=False,
                      description="Deploy the policy behind single sign-on."),
            Parameter("password_vault", "bool", default=False,
                      description="Provide an approved password vault."),
            Parameter("training_provided", "bool", default=False,
                      description="Provide rationale training for the policy."),
        ]
    )


def case_study_variant_params() -> Dict[str, Dict[str, object]]:
    """The case-study policy variants as parameter overrides (label → overrides).

    Derived from :func:`policy_variants`, so the benchmark and example
    sweeps consume the same canonical variant set: each entry holds only
    the fields where the variant departs from the baseline policy.
    """
    defaults = dataclasses.asdict(baseline_policy())
    params: Dict[str, Dict[str, object]] = {}
    for label, policy in policy_variants().items():
        fields = dataclasses.asdict(policy)
        params[label] = {
            name: value
            for name, value in fields.items()
            if name != "name" and value != defaults[name]
        }
    return params


def policy_for_values(values: Mapping[str, object]) -> PasswordPolicy:
    """Build a policy from fully-resolved parameter values.

    The policy name lists the non-default knobs (or ``"baseline"``), so
    derived labels — task names, calibration labels — say what changed.
    """
    defaults = parameter_space().defaults()
    changed = {
        name: value for name, value in values.items() if value != defaults[name]
    }
    name = format_params(changed) if changed else "baseline"
    return PasswordPolicy(name=name, **dict(values))


def scenario_components(values: Mapping[str, object]) -> ScenarioComponents:
    """The scenario binder: parameter values → system/population/calibration."""
    policy = policy_for_values(values)
    return ScenarioComponents(
        system=build_system_for(policy),
        population=population(policy),
        calibration=calibration(policy),
    )
