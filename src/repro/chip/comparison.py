"""Structural comparison between C-HIP and the human-in-the-loop framework.

Section 4 of the paper states precisely how the framework departs from
Wogalter's C-HIP model:

* a **capabilities** component is added ("human security failures are
  sometimes attributed to humans being asked to complete tasks that they
  are not capable of completing"),
* an **interference** component is added ("computer security communications
  may be impeded by an active attacker or technology failures"),
* the model is generalized from warnings to **five types** of security
  communications,
* the knowledge acquisition / retention / transfer stages are called out
  for training and policy communications (C-HIP folds memory into a single
  comprehension/memory stage),
* **personal variables** are explicitly split into demographics vs.
  knowledge/experience, and
* the receiver representation is restructured "to emphasize related
  concepts over temporal flow".

This module computes that delta mechanically from the two encodings so the
claims are checkable (and so the ablation benchmark can quantify what the
added components buy).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from ..core.components import Component
from .model import CHIPModel, CHIPStage

__all__ = ["MappingKind", "StageMapping", "ComparisonResult", "compare_with_framework"]


class MappingKind(enum.Enum):
    """How a framework component relates to the C-HIP model."""

    DIRECT = "direct"
    SPLIT = "split"
    GENERALIZED = "generalized"
    ADDED = "added"


@dataclasses.dataclass(frozen=True)
class StageMapping:
    """Mapping of one framework component onto C-HIP, with rationale."""

    component: Component
    kind: MappingKind
    chip_stages: Tuple[CHIPStage, ...]
    rationale: str


# The canonical component-by-component mapping described in Section 4.
_MAPPINGS: Tuple[StageMapping, ...] = (
    StageMapping(
        component=Component.COMMUNICATION,
        kind=MappingKind.GENERALIZED,
        chip_stages=(CHIPStage.SOURCE, CHIPStage.CHANNEL),
        rationale=(
            "C-HIP models a warning from a source through a channel; the framework "
            "generalizes to five types of security communications."
        ),
    ),
    StageMapping(
        component=Component.ENVIRONMENTAL_STIMULI,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.ENVIRONMENTAL_STIMULI,),
        rationale="Environmental stimuli appear in both models.",
    ),
    StageMapping(
        component=Component.INTERFERENCE,
        kind=MappingKind.ADDED,
        chip_stages=(),
        rationale=(
            "Added because computer security communications may be impeded by an "
            "active attacker or technology failures."
        ),
    ),
    StageMapping(
        component=Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY, CHIPStage.ATTITUDES_BELIEFS),
        rationale=(
            "C-HIP treats receiver variables implicitly within its stages; the "
            "framework explicitly calls out demographics and personal characteristics."
        ),
    ),
    StageMapping(
        component=Component.KNOWLEDGE_AND_EXPERIENCE,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY,),
        rationale=(
            "The second explicitly-called-out personal variable: relevant knowledge "
            "and experience."
        ),
    ),
    StageMapping(
        component=Component.ATTITUDES_AND_BELIEFS,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.ATTITUDES_BELIEFS,),
        rationale="Attitudes and beliefs appear in both models.",
    ),
    StageMapping(
        component=Component.MOTIVATION,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.MOTIVATION,),
        rationale="Motivation appears in both models.",
    ),
    StageMapping(
        component=Component.CAPABILITIES,
        kind=MappingKind.ADDED,
        chip_stages=(),
        rationale=(
            "Added because humans are sometimes asked to complete security tasks "
            "they are not capable of completing (e.g. memorizing many random passwords)."
        ),
    ),
    StageMapping(
        component=Component.ATTENTION_SWITCH,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.ATTENTION_SWITCH,),
        rationale="Attention switch appears in both models.",
    ),
    StageMapping(
        component=Component.ATTENTION_MAINTENANCE,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.ATTENTION_MAINTENANCE,),
        rationale="Attention maintenance appears in both models.",
    ),
    StageMapping(
        component=Component.COMPREHENSION,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY,),
        rationale="C-HIP's comprehension/memory stage is split into finer stages.",
    ),
    StageMapping(
        component=Component.KNOWLEDGE_ACQUISITION,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY,),
        rationale=(
            "Knowledge acquisition is separated from comprehension: a user may "
            "understand a warning yet not know what to do about it."
        ),
    ),
    StageMapping(
        component=Component.KNOWLEDGE_RETENTION,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY,),
        rationale=(
            "Retention is called out separately; it is especially applicable to "
            "training and policy communications."
        ),
    ),
    StageMapping(
        component=Component.KNOWLEDGE_TRANSFER,
        kind=MappingKind.SPLIT,
        chip_stages=(CHIPStage.COMPREHENSION_MEMORY,),
        rationale=(
            "Transfer to new situations is called out separately; it is especially "
            "applicable to training and policy communications."
        ),
    ),
    StageMapping(
        component=Component.BEHAVIOR,
        kind=MappingKind.DIRECT,
        chip_stages=(CHIPStage.BEHAVIOR,),
        rationale="Behavior is the terminal stage of both models.",
    ),
)


@dataclasses.dataclass
class ComparisonResult:
    """Result of comparing the framework with C-HIP."""

    mappings: Tuple[StageMapping, ...]

    def mapping_for(self, component: Component) -> StageMapping:
        for mapping in self.mappings:
            if mapping.component is component:
                return mapping
        raise KeyError(component)

    def added_components(self) -> List[Component]:
        """Framework components with no C-HIP counterpart."""
        return [m.component for m in self.mappings if m.kind is MappingKind.ADDED]

    def direct_components(self) -> List[Component]:
        return [m.component for m in self.mappings if m.kind is MappingKind.DIRECT]

    def split_components(self) -> List[Component]:
        return [m.component for m in self.mappings if m.kind is MappingKind.SPLIT]

    def generalized_components(self) -> List[Component]:
        return [m.component for m in self.mappings if m.kind is MappingKind.GENERALIZED]

    def unmapped_chip_stages(self) -> List[CHIPStage]:
        """C-HIP elements no framework component maps onto (should be only
        the delivery placeholder)."""
        covered = {stage for mapping in self.mappings for stage in mapping.chip_stages}
        return [stage for stage in CHIPStage if stage not in covered]

    def coverage_counts(self) -> Dict[MappingKind, int]:
        counts: Dict[MappingKind, int] = {kind: 0 for kind in MappingKind}
        for mapping in self.mappings:
            counts[mapping.kind] += 1
        return counts

    def summary(self) -> str:
        counts = self.coverage_counts()
        lines = [
            "Framework vs C-HIP structural comparison",
            f"  direct counterparts : {counts[MappingKind.DIRECT]}",
            f"  split/refined       : {counts[MappingKind.SPLIT]}",
            f"  generalized         : {counts[MappingKind.GENERALIZED]}",
            f"  added (no C-HIP peer): {counts[MappingKind.ADDED]}",
            "  added components    : "
            + ", ".join(component.title for component in self.added_components()),
        ]
        return "\n".join(lines)


def compare_with_framework(chip_model: Optional[CHIPModel] = None) -> ComparisonResult:
    """Compute the structural delta between C-HIP and the framework.

    ``chip_model`` is accepted for API symmetry (and future variants of the
    baseline); the standard model is used when omitted.
    """
    del chip_model  # the mapping is defined against the canonical model
    return ComparisonResult(mappings=_MAPPINGS)
