"""The Communication-Human Information Processing (C-HIP) model.

Wogalter's C-HIP model (Figure 3 of the paper) is the warnings-science
baseline on which the human-in-the-loop framework is built.  This package
encodes the C-HIP model itself and the structural comparison with the
paper's framework described in Section 4: the framework adds a
*capabilities* component, an *interference* component, splits the personal
variables, generalizes to five communication types, and restructures the
receiver representation "to emphasize related concepts over temporal flow".
"""

from .model import CHIP_STAGE_ORDER, CHIPModel, CHIPStage
from .comparison import (
    ComparisonResult,
    MappingKind,
    StageMapping,
    compare_with_framework,
)

__all__ = [
    "CHIPModel",
    "CHIPStage",
    "CHIP_STAGE_ORDER",
    "compare_with_framework",
    "ComparisonResult",
    "StageMapping",
    "MappingKind",
]
