"""Encoding of Wogalter's C-HIP model (Figure 3).

The Communication-Human Information Processing model describes a warning
travelling from a **source**, through a **channel**, to a **receiver** who
processes it through a sequence of stages — attention switch, attention
maintenance, comprehension/memory, attitudes/beliefs, motivation — before
any **behavior** results, with **environmental stimuli** able to distract
at any point.

The encoding is intentionally faithful to C-HIP rather than to the paper's
framework, so that :mod:`repro.chip.comparison` can compute the delta
between the two models (the comparison is itself one of the paper's
Section-4 claims).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

import networkx as nx

__all__ = ["CHIPStage", "CHIP_STAGE_ORDER", "CHIPModel"]


class CHIPStage(enum.Enum):
    """Elements of the C-HIP model, in the order drawn in Figure 3."""

    SOURCE = "source"
    CHANNEL = "channel"
    ENVIRONMENTAL_STIMULI = "environmental_stimuli"
    DELIVERY = "delivery"
    ATTENTION_SWITCH = "attention_switch"
    ATTENTION_MAINTENANCE = "attention_maintenance"
    COMPREHENSION_MEMORY = "comprehension_memory"
    ATTITUDES_BELIEFS = "attitudes_beliefs"
    MOTIVATION = "motivation"
    BEHAVIOR = "behavior"

    @property
    def is_receiver_stage(self) -> bool:
        """Whether the stage is inside the receiver (information processing)."""
        return self in (
            CHIPStage.ATTENTION_SWITCH,
            CHIPStage.ATTENTION_MAINTENANCE,
            CHIPStage.COMPREHENSION_MEMORY,
            CHIPStage.ATTITUDES_BELIEFS,
            CHIPStage.MOTIVATION,
        )

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS: Dict[CHIPStage, str] = {
    CHIPStage.SOURCE: "The entity that originates the warning.",
    CHIPStage.CHANNEL: "The medium through which the warning is transmitted.",
    CHIPStage.ENVIRONMENTAL_STIMULI: (
        "Other stimuli received along with the warning that may distract from it."
    ),
    CHIPStage.DELIVERY: "The warning arriving at the receiver.",
    CHIPStage.ATTENTION_SWITCH: "The receiver notices the warning.",
    CHIPStage.ATTENTION_MAINTENANCE: "The receiver attends to the warning long enough to process it.",
    CHIPStage.COMPREHENSION_MEMORY: (
        "The receiver understands the warning and relates it to stored knowledge."
    ),
    CHIPStage.ATTITUDES_BELIEFS: "The receiver's beliefs about the warning and the hazard.",
    CHIPStage.MOTIVATION: "The receiver's motivation to comply.",
    CHIPStage.BEHAVIOR: "The resulting behavior (compliance or not).",
}


# The sequential receiver-processing chain of C-HIP (temporal flow).
CHIP_STAGE_ORDER: Tuple[CHIPStage, ...] = (
    CHIPStage.ATTENTION_SWITCH,
    CHIPStage.ATTENTION_MAINTENANCE,
    CHIPStage.COMPREHENSION_MEMORY,
    CHIPStage.ATTITUDES_BELIEFS,
    CHIPStage.MOTIVATION,
    CHIPStage.BEHAVIOR,
)


@dataclasses.dataclass
class CHIPModel:
    """A queryable instance of the C-HIP model."""

    name: str = "C-HIP"

    @staticmethod
    def stages() -> List[CHIPStage]:
        """All model elements in Figure-3 order."""
        return list(CHIPStage)

    @staticmethod
    def receiver_stages() -> List[CHIPStage]:
        """The receiver-internal processing stages, in temporal order."""
        return [stage for stage in CHIP_STAGE_ORDER if stage.is_receiver_stage]

    @staticmethod
    def processing_order() -> Tuple[CHIPStage, ...]:
        """The strictly sequential processing chain C-HIP assumes."""
        return CHIP_STAGE_ORDER

    @staticmethod
    def graph() -> "nx.DiGraph":
        """The Figure-3 structure as a directed graph.

        Unlike the paper's framework, C-HIP is drawn as a mostly linear
        temporal flow from source to behavior, with environmental stimuli
        feeding into the receiver alongside the warning and with feedback
        from the receiver back to the source.
        """
        graph = nx.DiGraph(name="C-HIP")
        for stage in CHIPStage:
            graph.add_node(stage.value, receiver=stage.is_receiver_stage)
        graph.add_edge(CHIPStage.SOURCE.value, CHIPStage.CHANNEL.value)
        graph.add_edge(CHIPStage.CHANNEL.value, CHIPStage.DELIVERY.value)
        graph.add_edge(CHIPStage.ENVIRONMENTAL_STIMULI.value, CHIPStage.DELIVERY.value)
        previous = CHIPStage.DELIVERY
        for stage in CHIP_STAGE_ORDER:
            graph.add_edge(previous.value, stage.value)
            previous = stage
        # Receiver feedback to the source (drawn in the Handbook's figure).
        graph.add_edge(CHIPStage.BEHAVIOR.value, CHIPStage.SOURCE.value, kind="feedback")
        return graph

    @staticmethod
    def is_linear() -> bool:
        """C-HIP's receiver processing is a strictly linear chain."""
        return True
