"""Norman's seven-stage action cycle.

The cycle runs from forming a goal, through planning and executing an
action, to perceiving, interpreting, and evaluating the outcome.  The paper
uses it (together with GEMS) as the theory behind the behavior component:
"He described how the action cycle can be used as a check-list for design
so as to avoid the gulfs of execution and evaluation."

:func:`locate_breakdown` maps a described breakdown onto the cycle stage
where it occurred and reports which gulf (if any) it falls into.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ModelError

__all__ = ["ActionStage", "ActionCycle", "StageBreakdown", "locate_breakdown"]


class ActionStage(enum.Enum):
    """The seven stages of Norman's action cycle, in order."""

    FORM_GOAL = "form_goal"
    FORM_INTENTION = "form_intention"
    SPECIFY_ACTION = "specify_action"
    EXECUTE_ACTION = "execute_action"
    PERCEIVE_STATE = "perceive_state"
    INTERPRET_STATE = "interpret_state"
    EVALUATE_OUTCOME = "evaluate_outcome"

    @property
    def index(self) -> int:
        return _ORDER.index(self)

    @property
    def side(self) -> str:
        """Which side of the cycle the stage sits on.

        Stages between intention and execution form the *execution* side
        (crossing the gulf of execution); stages from perception to
        evaluation form the *evaluation* side (crossing the gulf of
        evaluation).  Goal formation sits outside both gulfs.
        """
        if self is ActionStage.FORM_GOAL:
            return "goal"
        if self in (ActionStage.FORM_INTENTION, ActionStage.SPECIFY_ACTION,
                    ActionStage.EXECUTE_ACTION):
            return "execution"
        return "evaluation"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_ORDER: Tuple[ActionStage, ...] = (
    ActionStage.FORM_GOAL,
    ActionStage.FORM_INTENTION,
    ActionStage.SPECIFY_ACTION,
    ActionStage.EXECUTE_ACTION,
    ActionStage.PERCEIVE_STATE,
    ActionStage.INTERPRET_STATE,
    ActionStage.EVALUATE_OUTCOME,
)

_DESCRIPTIONS: Dict[ActionStage, str] = {
    ActionStage.FORM_GOAL: "Form the goal (what state do I want to achieve?).",
    ActionStage.FORM_INTENTION: "Form the intention to act toward the goal.",
    ActionStage.SPECIFY_ACTION: "Specify the sequence of actions that will achieve it.",
    ActionStage.EXECUTE_ACTION: "Execute the action sequence.",
    ActionStage.PERCEIVE_STATE: "Perceive the resulting system state.",
    ActionStage.INTERPRET_STATE: "Interpret the perceived state.",
    ActionStage.EVALUATE_OUTCOME: "Evaluate the outcome against the goal.",
}


@dataclasses.dataclass
class ActionCycle:
    """A queryable instance of the seven-stage action cycle."""

    name: str = "Norman action cycle"

    @staticmethod
    def stages() -> Tuple[ActionStage, ...]:
        """All stages in cycle order."""
        return _ORDER

    @staticmethod
    def execution_stages() -> Tuple[ActionStage, ...]:
        return tuple(stage for stage in _ORDER if stage.side == "execution")

    @staticmethod
    def evaluation_stages() -> Tuple[ActionStage, ...]:
        return tuple(stage for stage in _ORDER if stage.side == "evaluation")

    @staticmethod
    def checklist() -> List[str]:
        """The cycle phrased as a design checklist, one question per stage."""
        return [
            "Can users tell what goal the system expects them to form?",
            "Will users form the intention to act when they should?",
            "Can users determine which actions will achieve the goal?",
            "Can users physically perform those actions?",
            "Can users perceive what state the system is in afterwards?",
            "Can users interpret that state correctly?",
            "Can users tell whether the goal has been achieved?",
        ]


@dataclasses.dataclass(frozen=True)
class StageBreakdown:
    """A breakdown located on the action cycle."""

    stage: ActionStage
    gulf: Optional[str]
    narrative: str = ""


def locate_breakdown(
    knew_goal: bool,
    knew_which_action: bool,
    could_perform_action: bool,
    could_perceive_result: bool,
    could_interpret_result: bool,
    narrative: str = "",
) -> StageBreakdown:
    """Locate a described breakdown on the action cycle.

    Each flag answers the corresponding checklist question for the specific
    incident; the first ``False`` locates the breakdown.  Raises
    :class:`~repro.core.exceptions.ModelError` when every flag is ``True``
    (no breakdown described).

    Example: a user who knows their anti-virus is out of date (goal formed)
    but "may be unable to find the menu item ... that facilitates this
    update" breaks down at ``SPECIFY_ACTION`` — inside the gulf of
    execution.
    """
    if not knew_goal:
        return StageBreakdown(ActionStage.FORM_GOAL, None, narrative)
    if not knew_which_action:
        return StageBreakdown(ActionStage.SPECIFY_ACTION, "execution", narrative)
    if not could_perform_action:
        return StageBreakdown(ActionStage.EXECUTE_ACTION, "execution", narrative)
    if not could_perceive_result:
        return StageBreakdown(ActionStage.PERCEIVE_STATE, "evaluation", narrative)
    if not could_interpret_result:
        return StageBreakdown(ActionStage.INTERPRET_STATE, "evaluation", narrative)
    raise ModelError("no breakdown described: every action-cycle stage succeeded")
