"""Norman's action cycle and the gulfs of execution and evaluation.

The behavior stage of the framework leans on Don Norman's seven-stage
action cycle and his gulfs of execution and evaluation (The Design of
Everyday Things).  This package encodes the seven stages, classifies where
in the cycle a described breakdown occurs, and scores the two gulfs for a
task design.
"""

from .action_cycle import (
    ActionCycle,
    ActionStage,
    StageBreakdown,
    locate_breakdown,
)
from .gulfs import Gulf, GulfAssessment, assess_gulfs

__all__ = [
    "ActionStage",
    "ActionCycle",
    "StageBreakdown",
    "locate_breakdown",
    "Gulf",
    "GulfAssessment",
    "assess_gulfs",
]
