"""The gulfs of execution and evaluation.

Norman's gulf of execution is "the gap between a person's intentions to
carry out an action and the mechanisms provided by a system to facilitate
that action"; the gulf of evaluation is the difficulty of determining what
state the system is in after acting.  The paper's design guidance: close
the execution gulf with clear instructions and readily apparent controls,
close the evaluation gulf with relevant feedback (the Piazzalunga et al.
smartcard study is the worked example).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple

from ..core.behavior import TaskDesign
from ..core.exceptions import ModelError

__all__ = ["Gulf", "GulfAssessment", "assess_gulfs"]


class Gulf(enum.Enum):
    """The two gulfs of Norman's model."""

    EXECUTION = "execution"
    EVALUATION = "evaluation"

    @property
    def description(self) -> str:
        if self is Gulf.EXECUTION:
            return (
                "Gap between the user's intention and the mechanisms the system "
                "provides to carry it out."
            )
        return (
            "Gap between the system's actual state and the user's ability to "
            "perceive and interpret it."
        )


@dataclasses.dataclass(frozen=True)
class GulfAssessment:
    """Widths of the two gulfs for a task design, with recommendations."""

    execution_width: float
    evaluation_width: float
    recommendations: Tuple[str, ...]

    def width(self, gulf: Gulf) -> float:
        return self.execution_width if gulf is Gulf.EXECUTION else self.evaluation_width

    @property
    def wider_gulf(self) -> Gulf:
        """The gulf most in need of attention."""
        if self.execution_width >= self.evaluation_width:
            return Gulf.EXECUTION
        return Gulf.EVALUATION

    def acceptable(self, threshold: float = 0.3) -> bool:
        """Whether both gulfs are narrower than ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ModelError("threshold must be in [0, 1]")
        return self.execution_width < threshold and self.evaluation_width < threshold


def assess_gulfs(design: TaskDesign, instructions_included: bool = False) -> GulfAssessment:
    """Assess both gulfs for a task design.

    Parameters
    ----------
    design:
        The task design (control discoverability, feedback quality, ...).
    instructions_included:
        Whether the triggering communication includes explicit execution
        instructions; good instructions narrow the execution gulf even when
        controls are not self-evident.
    """
    execution = design.gulf_of_execution
    if instructions_included:
        execution *= 0.6
    evaluation = design.gulf_of_evaluation

    recommendations: List[str] = []
    if execution >= 0.3:
        recommendations.append(
            "Include clear instructions about how to execute the desired action "
            "and make the proper use of the required controls readily apparent "
            "(e.g. print visual cues on the smartcard itself)."
        )
    if evaluation >= 0.3:
        recommendations.append(
            "Provide relevant feedback so users can determine whether their "
            "action achieved the desired outcome (e.g. have the card reader "
            "indicate when a card has been properly inserted)."
        )
    if design.steps > 3 and not design.guidance_through_steps:
        recommendations.append(
            "Guide users through the multi-step sequence to keep intermediate "
            "system state visible."
        )

    return GulfAssessment(
        execution_width=max(0.0, min(1.0, execution)),
        evaluation_width=max(0.0, min(1.0, evaluation)),
        recommendations=tuple(recommendations),
    )
