"""Graph construction for the paper's figures.

Figures 1 and 3 of the paper are structural diagrams; this module builds
them as :class:`networkx.DiGraph` objects (delegating to the model classes)
and adds the layout / export helpers the benchmarks and examples use:
layer assignment for a left-to-right rendering, DOT export for Graphviz,
and simple structural statistics used to verify the figures' inventories.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..chip.model import CHIPModel, CHIPStage
from ..core.components import Component, ComponentGroup
from ..core.framework import HumanInTheLoopFramework

__all__ = [
    "framework_graph",
    "chip_graph",
    "assign_layers",
    "to_dot",
    "graph_statistics",
]


def framework_graph() -> "nx.DiGraph":
    """The Figure-1 influence graph."""
    return HumanInTheLoopFramework.influence_graph()


def chip_graph() -> "nx.DiGraph":
    """The Figure-3 C-HIP graph."""
    return CHIPModel.graph()


def assign_layers(graph: "nx.DiGraph") -> Dict[str, int]:
    """Assign a left-to-right layer index to each node.

    Layers follow the longest path from any source node (ignoring feedback
    edges marked with ``kind="feedback"``), which matches how both figures
    are drawn: communication/source on the left, behavior on the right.
    """
    working = nx.DiGraph()
    working.add_nodes_from(graph.nodes(data=True))
    for source, target, data in graph.edges(data=True):
        if data.get("kind") == "feedback":
            continue
        working.add_edge(source, target)

    layers: Dict[str, int] = {}
    for node in nx.topological_sort(working):
        predecessors = list(working.predecessors(node))
        if not predecessors:
            layers[node] = 0
        else:
            layers[node] = 1 + max(layers[parent] for parent in predecessors)
    return layers


def to_dot(graph: "nx.DiGraph", rankdir: str = "LR") -> str:
    """Export a graph to Graphviz DOT text (no Graphviz dependency needed)."""
    lines = [f'digraph "{graph.name or "graph"}" {{', f"  rankdir={rankdir};"]
    for node, data in graph.nodes(data=True):
        shape = "box" if data.get("receiver") else "ellipse"
        lines.append(f'  "{node}" [shape={shape}];')
    for source, target, data in graph.edges(data=True):
        style = ' [style=dashed]' if data.get("kind") == "feedback" else ""
        lines.append(f'  "{source}" -> "{target}"{style};')
    lines.append("}")
    return "\n".join(lines)


def graph_statistics(graph: "nx.DiGraph") -> Dict[str, float]:
    """Structural statistics used by the figure benchmarks and tests."""
    receiver_nodes = sum(1 for _node, data in graph.nodes(data=True) if data.get("receiver"))
    return {
        "nodes": float(graph.number_of_nodes()),
        "edges": float(graph.number_of_edges()),
        "receiver_nodes": float(receiver_nodes),
        "is_dag_without_feedback": float(
            nx.is_directed_acyclic_graph(
                nx.DiGraph(
                    (source, target)
                    for source, target, data in graph.edges(data=True)
                    if data.get("kind") != "feedback"
                )
            )
        ),
    }
