"""Graph construction and plain-text figure renderings."""

from .diagrams import render_figure_1, render_figure_2, render_figure_3
from .graphs import assign_layers, chip_graph, framework_graph, graph_statistics, to_dot

__all__ = [
    "framework_graph",
    "chip_graph",
    "assign_layers",
    "to_dot",
    "graph_statistics",
    "render_figure_1",
    "render_figure_2",
    "render_figure_3",
]
