"""Plain-text renderings of the paper's figures.

The library is terminal-first, so the figures are reproduced as ASCII
diagrams: Figure 1 (the framework), Figure 2 (the four-step process), and
Figure 3 (the C-HIP model).  The renderings are generated from the same
structured encodings the analysis uses, so they stay consistent with the
model by construction.
"""

from __future__ import annotations

from typing import Dict, List

from ..chip.model import CHIP_STAGE_ORDER, CHIPStage
from ..core.checklist import TABLE_1
from ..core.components import Component, ComponentGroup, GROUP_MEMBERS
from ..core.process import ProcessStep

__all__ = ["render_figure_1", "render_figure_2", "render_figure_3"]


def _box(title: str, lines: List[str], width: int = 46) -> List[str]:
    inner = max(width - 4, len(title), *(len(line) for line in lines)) if lines else max(
        width - 4, len(title)
    )
    top = "+" + "-" * (inner + 2) + "+"
    out = [top, f"| {title.center(inner)} |", "+" + "-" * (inner + 2) + "+"]
    for line in lines:
        out.append(f"| {line.ljust(inner)} |")
    out.append(top)
    return out


def render_figure_1() -> str:
    """ASCII rendering of the human-in-the-loop framework (Figure 1)."""
    def members(group: ComponentGroup) -> List[str]:
        return [f"- {component.title}" for component in GROUP_MEMBERS[group]]

    parts: List[str] = []
    parts.extend(_box("COMMUNICATION", ["warning / notice / status indicator", "training / policy"]))
    parts.append("        |")
    parts.append("        v")
    parts.extend(
        _box(
            "COMMUNICATION IMPEDIMENTS",
            members(ComponentGroup.COMMUNICATION_IMPEDIMENTS),
        )
    )
    parts.append("        |")
    parts.append("        v")
    receiver_lines: List[str] = []
    receiver_lines.append("Personal variables:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.PERSONAL_VARIABLES))
    receiver_lines.append("Intentions:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.INTENTIONS))
    receiver_lines.append("Capabilities:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.CAPABILITIES))
    receiver_lines.append("Communication delivery:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.COMMUNICATION_DELIVERY))
    receiver_lines.append("Communication processing:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.COMMUNICATION_PROCESSING))
    receiver_lines.append("Application:")
    receiver_lines.extend("  " + line for line in members(ComponentGroup.APPLICATION))
    parts.extend(_box("HUMAN RECEIVER", receiver_lines))
    parts.append("        |")
    parts.append("        v")
    parts.extend(_box("BEHAVIOR", ["successful completion?", "predictable / exploitable?"]))
    return "\n".join(parts)


def render_figure_2() -> str:
    """ASCII rendering of the human threat identification and mitigation process."""
    steps = [
        ("1. Task identification", "enumerate security-critical human tasks"),
        ("2. Task automation", "automate or default away what can be automated"),
        ("3. Failure identification", "apply the framework to the remaining tasks"),
        ("4. Failure mitigation", "support the humans; re-enter at any step"),
    ]
    lines: List[str] = []
    for index, (title, detail) in enumerate(steps):
        lines.extend(_box(title, [detail], width=52))
        if index < len(steps) - 1:
            lines.append("        |")
            lines.append("        v")
    lines.append("        |")
    lines.append("        +----(iterate: revisit earlier steps as needed)")
    return "\n".join(lines)


def render_figure_3() -> str:
    """ASCII rendering of the C-HIP model (Figure 3)."""
    lines: List[str] = []
    lines.extend(_box("SOURCE", []))
    lines.append("   |")
    lines.append("   v")
    lines.extend(_box("CHANNEL", ["(+ environmental stimuli)"]))
    lines.append("   |")
    lines.append("   v")
    receiver = [stage.value.replace("_", " ") for stage in CHIP_STAGE_ORDER if stage is not CHIPStage.BEHAVIOR]
    lines.extend(_box("RECEIVER", [f"- {name}" for name in receiver]))
    lines.append("   |")
    lines.append("   v")
    lines.extend(_box("BEHAVIOR", ["(feedback returns to the source)"]))
    return "\n".join(lines)
