"""Human-receiver simulation substrate.

The paper grounds its case studies in human-subject studies we cannot
re-run; this package substitutes a calibrated Monte-Carlo simulation of
receiver populations processing security communications through the
framework pipeline (see DESIGN.md for the substitution rationale).

Layering (shared with the analytic path in :mod:`repro.core`):

* :mod:`repro.core.pipeline` owns the stage pipeline itself — applicable
  stages, gate ordering, failure-outcome semantics, and the single
  traversal kernel both execution modes (and the scalar walk) drive.
* :mod:`repro.simulation.population` describes receiver populations and
  samples them either one receiver at a time or as trait arrays.
* :mod:`repro.simulation.batch` advances whole trait batches through the
  pipeline vectorized (one model call per stage per batch).
* :mod:`repro.simulation.engine` orchestrates both execution modes —
  ``"batch"`` for population-scale runs and ``"reference"`` (the same
  kernel at width 1, each receiver in isolation) — over identical
  pre-drawn randomness, with per-stage funnel tallies and
  outcome-coupled habituation threaded through multi-round runs.
* :mod:`repro.simulation.metrics` accumulates streaming tallies so memory
  stays O(batch) rather than O(population).

Scenario-level entry points (population + calibration + system per case
study) live in :mod:`repro.systems.scenario`.
"""

from .attacker import AttackerModel, AttackVector, no_attacker, spoofing_attacker
from .batch import BatchOutcomes, BatchReceivers, DrawBatch
from .calibration import StageCalibration
from .engine import SIMULATION_MODES, HumanLoopSimulator, SimulationConfig
from .habituation import (
    ExposurePoint,
    HabituationState,
    advance_exposures,
    initial_exposures,
    simulate_exposure_series,
)
from .metrics import (
    OUTCOME_ORDER,
    FunnelTally,
    ReceiverRecord,
    RoundTally,
    SimulationResult,
    SimulationTally,
    comparison_table,
    outcome_code,
    render_comparison_markdown,
)
from .population import (
    TRAIT_NAMES,
    PopulationSpec,
    TraitDistribution,
    TraitSamples,
    expert_population,
    general_web_population,
    organization_population,
)
from .rng import SimulationRng

__all__ = [
    "SimulationRng",
    "TraitDistribution",
    "TraitSamples",
    "TRAIT_NAMES",
    "PopulationSpec",
    "general_web_population",
    "organization_population",
    "expert_population",
    "StageCalibration",
    "AttackerModel",
    "AttackVector",
    "no_attacker",
    "spoofing_attacker",
    "HabituationState",
    "ExposurePoint",
    "simulate_exposure_series",
    "initial_exposures",
    "advance_exposures",
    "SimulationConfig",
    "HumanLoopSimulator",
    "SIMULATION_MODES",
    "BatchReceivers",
    "BatchOutcomes",
    "DrawBatch",
    "ReceiverRecord",
    "SimulationResult",
    "SimulationTally",
    "RoundTally",
    "FunnelTally",
    "OUTCOME_ORDER",
    "outcome_code",
    "comparison_table",
    "render_comparison_markdown",
]
