"""Human-receiver simulation substrate.

The paper grounds its case studies in human-subject studies we cannot
re-run; this package substitutes a calibrated Monte-Carlo simulation of
receiver populations processing security communications through the
framework pipeline (see DESIGN.md for the substitution rationale).
"""

from .attacker import AttackerModel, AttackVector, no_attacker, spoofing_attacker
from .calibration import StageCalibration
from .engine import HumanLoopSimulator, SimulationConfig
from .habituation import ExposurePoint, HabituationState, simulate_exposure_series
from .metrics import (
    ReceiverRecord,
    SimulationResult,
    comparison_table,
    render_comparison_markdown,
)
from .population import (
    PopulationSpec,
    TraitDistribution,
    expert_population,
    general_web_population,
    organization_population,
)
from .rng import SimulationRng

__all__ = [
    "SimulationRng",
    "TraitDistribution",
    "PopulationSpec",
    "general_web_population",
    "organization_population",
    "expert_population",
    "StageCalibration",
    "AttackerModel",
    "AttackVector",
    "no_attacker",
    "spoofing_attacker",
    "HabituationState",
    "ExposurePoint",
    "simulate_exposure_series",
    "SimulationConfig",
    "HumanLoopSimulator",
    "ReceiverRecord",
    "SimulationResult",
    "comparison_table",
    "render_comparison_markdown",
]
