"""Habituation dynamics over repeated exposures.

Section 2.3.1: "communication delivery may also be impacted by habituation,
the tendency for the impact of a stimuli to decrease over time as people
become more accustomed to it.  In practice this means that over time users
may ignore security indicators that they observe frequently."

The static habituation factor lives in
:func:`repro.core.probabilities.habituation_factor`; this module owns the
*dynamics* in two forms that share one exposure-accounting rule:

* the scalar :class:`HabituationState` — per-user bookkeeping that tracks
  (possibly fractional) exposures per communication, with partial recovery
  of attention during exposure-free gaps — plus
  :func:`simulate_exposure_series`, the single-receiver decay trace used by
  the active-vs-passive ablation benchmark, and
* the vectorized :func:`initial_exposures` / :func:`advance_exposures`
  pair consumed by the multi-round batch engine
  (:meth:`repro.simulation.engine.HumanLoopSimulator.simulate_task` with
  ``rounds > 1``): a per-receiver exposure array seeded from the
  communication's baked-in count and advanced one hazard encounter at a
  time — receivers the communication actually reached gain one exposure,
  then every receiver recovers through the exposure-free gap before the
  next encounter.

Exposure counts are *floats* throughout: recovery multiplies counts by
``(1 - recovery_rate)``, so fractional counts are the normal case and flow
unquantized into :func:`~repro.core.probabilities.habituation_factor`
(which accepts floats and arrays alike).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.communication import Communication
from ..core.exceptions import SimulationError
from ..core.impediments import Environment
from ..core.probabilities import attention_switch_probability, habituation_factor
from ..core.receiver import HumanReceiver, typical_receiver
from .rng import SimulationRng

__all__ = [
    "HabituationState",
    "ExposurePoint",
    "simulate_exposure_series",
    "initial_exposures",
    "advance_exposures",
]


@dataclasses.dataclass
class HabituationState:
    """Per-user habituation bookkeeping.

    Exposure counts are tracked per communication name.  ``recover`` models
    the partial recovery of attention after a period without exposures
    (habituation is not permanent): each recovery step removes a fraction
    of the accumulated exposures.

    A communication's baked-in ``habituation_exposures`` is materialized
    into the ``exposures`` dict on first access, so recovery treats
    baked-in and explicitly recorded exposures uniformly — identical
    histories recover identically whether or not an entry happened to
    exist beforehand.
    """

    exposures: Dict[str, float] = dataclasses.field(default_factory=dict)
    recovery_rate: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")

    def exposure_count(self, communication: Communication) -> float:
        """Effective exposure count, including any baked-in prior exposures.

        The baked-in count is materialized into the tracked dict on first
        access so subsequent :meth:`recover` steps decay it like any
        recorded exposure.
        """
        return self.exposures.setdefault(
            communication.name, float(communication.habituation_exposures)
        )

    def record_exposure(self, communication: Communication, weight: float = 1.0) -> None:
        """Record one more exposure to the communication.

        ``weight`` scales how much the encounter habituates — the scalar
        form of the outcome-coupled accrual in :func:`advance_exposures`
        (e.g. a dismissed warning weighs more than a heeded one).
        """
        if weight < 0.0:
            raise SimulationError("exposure weight must be non-negative")
        current = self.exposure_count(communication)
        self.exposures[communication.name] = current + weight

    def recover(self, periods: int = 1) -> None:
        """Apply ``periods`` exposure-free recovery steps to every communication."""
        if periods < 0:
            raise SimulationError("periods must be non-negative")
        factor = (1.0 - self.recovery_rate) ** periods
        for name in list(self.exposures):
            self.exposures[name] *= factor

    def attention_factor(self, communication: Communication) -> float:
        """Current habituation multiplier for a communication.

        Fractional (post-recovery) counts flow through unquantized:
        ``habituation_factor`` is continuous in the exposure count, so 0.6
        and 1.4 effective exposures yield distinct factors.
        """
        count = self.exposure_count(communication)
        return habituation_factor(count, communication.activeness)


@dataclasses.dataclass(frozen=True)
class ExposurePoint:
    """One point of an exposure series: notice probability and realization."""

    exposure_index: int
    notice_probability: float
    noticed: bool


def simulate_exposure_series(
    communication: Communication,
    environment: Optional[Environment] = None,
    receiver: Optional[HumanReceiver] = None,
    exposures: int = 20,
    rng: Optional[SimulationRng] = None,
    recovery_rate: float = 0.0,
    dismiss_weight: float = 1.0,
    heed_weight: float = 1.0,
) -> List[ExposurePoint]:
    """Trace notice probability and outcomes over repeated exposures.

    Each exposure updates the habituation state before the next notice
    probability is computed, so the series shows the decay the paper warns
    about — and shows that the decay is much steeper for passive
    communications than for blocking ones.  A non-zero ``recovery_rate``
    inserts one exposure-free recovery gap between consecutive exposures
    (the same accounting the multi-round engine applies between rounds),
    which leaves fractional effective counts — these feed the probability
    model unquantized.

    ``dismiss_weight`` / ``heed_weight`` apply the outcome-coupled accrual
    at single-receiver scale, with the realized *notice* outcome standing
    in for heeding (the only realized outcome this trace has): an exposure
    the receiver noticed accrues ``heed_weight``, one they looked straight
    past accrues ``dismiss_weight``.  Unit weights (the default) reproduce
    the delivery-only series exactly.
    """
    if exposures < 0:
        raise SimulationError("exposures must be non-negative")
    environment = environment or Environment.typical_desktop()
    receiver = receiver or typical_receiver()
    rng = rng or SimulationRng(0)
    state = HabituationState(recovery_rate=recovery_rate)

    series: List[ExposurePoint] = []
    for index in range(exposures):
        count = state.exposure_count(communication)
        probability = attention_switch_probability(
            communication, environment, receiver, exposures=count
        )
        noticed = rng.bernoulli(probability)
        series.append(
            ExposurePoint(exposure_index=index, notice_probability=probability, noticed=noticed)
        )
        state.record_exposure(
            communication, weight=heed_weight if noticed else dismiss_weight
        )
        if recovery_rate > 0.0:
            state.recover()
    return series


# ---------------------------------------------------------------------------
# Vectorized exposure state (multi-round engine)
# ---------------------------------------------------------------------------


def initial_exposures(communication: Optional[Communication], count: int) -> Optional[np.ndarray]:
    """Per-receiver exposure array seeded from the baked-in count.

    Returns ``None`` for a task with no communication (there is nothing to
    habituate to).
    """
    if communication is None:
        return None
    if count < 0:
        raise SimulationError("count must be non-negative")
    return np.full(count, float(communication.habituation_exposures))


def advance_exposures(
    exposures: np.ndarray,
    delivered: np.ndarray,
    recovery_rate: float,
    heeded: Optional[np.ndarray] = None,
    dismiss_weight: float = 1.0,
    heed_weight: float = 1.0,
) -> np.ndarray:
    """One engine round's exposure-state update, vectorized.

    Receivers for whom the communication was actually ``delivered`` (it
    was not replaced by an attacker's spoof) accrue exposure; then every
    receiver recovers through the exposure-free gap before the next hazard
    encounter.  With the default weights this is exactly the scalar
    ``state.record_exposure(...); state.recover()`` sequence of
    :class:`HabituationState`, applied to a whole population at once:

    ``e' = (e + delivered) * (1 - recovery_rate)``

    **Outcome-coupled accrual** (Section 2.3.1: habituation is driven by
    what receivers *do* at each encounter): when ``heeded`` — the realized
    per-receiver hazard-avoided outcomes of the round — is supplied, a
    delivered encounter accrues ``heed_weight`` exposures when the
    encounter ended with the hazard avoided and ``dismiss_weight`` when
    the receiver proceeded into the hazard (overrode the warning, decided
    not to comply, or slipped past a passive indicator unprotected):

    ``e' = (e + delivered * where(heeded, heed_weight, dismiss_weight)) * (1 - r)``

    The split is deliberately keyed on *hazard avoided*, the one realized
    outcome both engine modes share per encounter: with a **blocking**
    communication a receiver who never processed the warning fails safe
    and therefore lands on the ``heed_weight`` side — the warning did its
    job without being consciously dismissed — whereas with a passive one
    the same inattention leaves the hazard unblocked and accrues
    ``dismiss_weight``.  ``dismiss_weight > heed_weight`` models receivers
    learning to tune out a warning faster when they keep clicking through
    it.  Both weights default to 1.0, which reproduces the delivery-only
    rule bit for bit — the two branches compute the identical floats.
    """
    if not 0.0 <= recovery_rate <= 1.0:
        raise SimulationError("recovery_rate must be in [0, 1]")
    if dismiss_weight < 0.0 or heed_weight < 0.0:
        raise SimulationError("habituation weights must be non-negative")
    delivered = np.asarray(delivered, dtype=float)
    if dismiss_weight == 1.0 and heed_weight == 1.0:
        # Delivery-only rule (also the outcome-coupled rule at unit
        # weights): keep the historical expression so defaults stay
        # bit-identical.
        increment = delivered
    else:
        if heeded is None:
            raise SimulationError(
                "outcome-coupled weights need the realized outcomes: pass "
                "heeded= (per-receiver hazard-avoided booleans)"
            )
        increment = delivered * np.where(
            np.asarray(heeded, dtype=bool), heed_weight, dismiss_weight
        )
    return (exposures + increment) * (1.0 - recovery_rate)
