"""Habituation dynamics over repeated exposures.

Section 2.3.1: "communication delivery may also be impacted by habituation,
the tendency for the impact of a stimuli to decrease over time as people
become more accustomed to it.  In practice this means that over time users
may ignore security indicators that they observe frequently."

The static habituation factor lives in
:func:`repro.core.probabilities.habituation_factor`; this module adds the
*dynamics*: a per-user :class:`HabituationState` that tracks exposures per
communication (with recovery during exposure-free gaps) and a
:func:`simulate_exposure_series` helper used by the active-vs-passive
ablation benchmark to trace how notice rates decay over a sequence of
exposures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core.communication import Communication
from ..core.exceptions import SimulationError
from ..core.impediments import Environment
from ..core.probabilities import attention_switch_probability, habituation_factor
from ..core.receiver import HumanReceiver, typical_receiver
from .rng import SimulationRng

__all__ = ["HabituationState", "ExposurePoint", "simulate_exposure_series"]


@dataclasses.dataclass
class HabituationState:
    """Per-user habituation bookkeeping.

    Exposure counts are tracked per communication name.  ``recover`` models
    the partial recovery of attention after a period without exposures
    (habituation is not permanent): each recovery step removes a fraction
    of the accumulated exposures.
    """

    exposures: Dict[str, float] = dataclasses.field(default_factory=dict)
    recovery_rate: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")

    def exposure_count(self, communication: Communication) -> float:
        """Effective exposure count, including any baked-in prior exposures."""
        return self.exposures.get(communication.name, float(communication.habituation_exposures))

    def record_exposure(self, communication: Communication) -> None:
        """Record one more exposure to the communication."""
        current = self.exposure_count(communication)
        self.exposures[communication.name] = current + 1.0

    def recover(self, periods: int = 1) -> None:
        """Apply ``periods`` exposure-free recovery steps to every communication."""
        if periods < 0:
            raise SimulationError("periods must be non-negative")
        factor = (1.0 - self.recovery_rate) ** periods
        for name in list(self.exposures):
            self.exposures[name] *= factor

    def attention_factor(self, communication: Communication) -> float:
        """Current habituation multiplier for a communication."""
        count = self.exposure_count(communication)
        return habituation_factor(int(round(count)), communication.activeness)


@dataclasses.dataclass(frozen=True)
class ExposurePoint:
    """One point of an exposure series: notice probability and realization."""

    exposure_index: int
    notice_probability: float
    noticed: bool


def simulate_exposure_series(
    communication: Communication,
    environment: Optional[Environment] = None,
    receiver: Optional[HumanReceiver] = None,
    exposures: int = 20,
    rng: Optional[SimulationRng] = None,
) -> List[ExposurePoint]:
    """Trace notice probability and outcomes over repeated exposures.

    Each exposure updates the habituation state before the next notice
    probability is computed, so the series shows the decay the paper warns
    about — and shows that the decay is much steeper for passive
    communications than for blocking ones.
    """
    if exposures < 0:
        raise SimulationError("exposures must be non-negative")
    environment = environment or Environment.typical_desktop()
    receiver = receiver or typical_receiver()
    rng = rng or SimulationRng(0)
    state = HabituationState()

    series: List[ExposurePoint] = []
    for index in range(exposures):
        count = state.exposure_count(communication)
        exposed_communication = communication.with_exposures(int(round(count)))
        probability = attention_switch_probability(exposed_communication, environment, receiver)
        noticed = rng.bernoulli(probability)
        series.append(
            ExposurePoint(exposure_index=index, notice_probability=probability, noticed=noticed)
        )
        state.record_exposure(communication)
    return series
