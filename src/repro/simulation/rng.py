"""Deterministic random-number utilities for the simulation substrate.

All stochastic behaviour in the simulation flows through one of two
sources, both created from an explicit seed so every experiment in the
benchmark harness is exactly reproducible:

* :class:`SimulationRng` — the sequential source.  Wraps
  :class:`numpy.random.Generator` and adds the small set of draws the
  simulation needs (Bernoulli trials, truncated normals, independent
  child streams).  Draw *order* matters: the k-th value depends on the
  k-1 draws before it, which is why the engine pins a fixed draw layout.
* :class:`PhiloxDraws` — the counter-based source (``rng_mode="counter"``),
  following the Philox/"Parallel random numbers: as easy as 1, 2, 3"
  design.  Every draw category of a (seed, chunk, round) cell owns a
  dedicated Philox key, so the i-th value of any stream is addressable in
  O(1) (:meth:`PhiloxDraws.uniform_at`) without generating its
  predecessors, and no category's draws depend on how many draws another
  category consumed.  Truncated normals come from a fixed two-uniform
  Box–Muller transform (:func:`clipped_normals_from_uniforms`) instead of
  numpy's variable-consumption ziggurat, keeping them addressable too.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SimulationError

__all__ = [
    "SimulationRng",
    "PhiloxDraws",
    "clipped_normals_from_uniforms",
    "trait_streams",
    "AGE_STREAMS",
    "TRAINED_STREAM",
    "SPOOF_STREAM",
    "NOISE_STREAMS",
    "DECISION_STREAM_BASE",
]

# ---------------------------------------------------------------------------
# Counter-based stream layout
#
# Each draw category of a chunk-round cell owns its own Philox sub-stream.
# Trait k consumes the Box-Muller pair (2k, 2k+1); the remaining categories
# start above the trait block (21 traits -> streams 0..41).
# ---------------------------------------------------------------------------

#: Box-Muller uniform pair for the demographic age draw.
AGE_STREAMS: Tuple[int, int] = (42, 43)
#: Training-fraction Bernoulli uniforms.
TRAINED_STREAM = 44
#: Attacker spoof uniforms.
SPOOF_STREAM = 45
#: Box-Muller uniform pair for the per-receiver perception noise.
NOISE_STREAMS: Tuple[int, int] = (46, 47)
#: Decision column ``c`` of the draw layout reads stream ``BASE + c``.
DECISION_STREAM_BASE = 48

_CHUNK_BITS = 24
_ROUND_BITS = 20
_STREAM_BITS = 20


def trait_streams(trait_index: int) -> Tuple[int, int]:
    """The Box-Muller uniform stream pair of one population trait."""
    return (2 * trait_index, 2 * trait_index + 1)


def clipped_normals_from_uniforms(u1, u2, mean: float, std: float,
                                  low: float, high: float) -> np.ndarray:
    """Box-Muller normals from two uniform arrays, clipped to [low, high].

    A fixed two-uniform transform (rather than numpy's ziggurat, whose
    per-value consumption varies) so counter-mode normals stay O(1)
    addressable.  Clipping matches :meth:`SimulationRng.truncated_normal`:
    the traits being sampled are bounded behavioural scores and the exact
    tail shape is immaterial.  ``log1p(-u1)`` keeps the argument away from
    ``log(0)`` (uniforms live on [0, 1)).
    """
    z = np.sqrt(-2.0 * np.log1p(-u1)) * np.cos((2.0 * np.pi) * u2)
    return np.clip(mean + std * z, low, high)


class SimulationRng:
    """Seeded random source for simulations.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always produces the same
        stream of draws.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise SimulationError("seed must be non-negative")
        self.seed = seed
        self._generator = np.random.default_rng(seed)

    def spawn(self, index: int) -> "SimulationRng":
        """Create an independent child stream.

        Child streams are derived deterministically from the parent seed
        and ``index``, so per-user streams do not depend on the order in
        which users are simulated.
        """
        if index < 0:
            raise SimulationError("spawn index must be non-negative")
        return SimulationRng(seed=hash((self.seed, index)) % (2**32))

    def bernoulli(self, probability: float) -> bool:
        """One biased coin flip."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"probability must be in [0, 1], got {probability}")
        return bool(self._generator.random() < probability)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on [low, high)."""
        if high < low:
            raise SimulationError("high must be >= low")
        return float(self._generator.uniform(low, high))

    def truncated_normal(
        self, mean: float, std: float, low: float = 0.0, high: float = 1.0
    ) -> float:
        """A normal draw clipped to [low, high].

        Clipping (rather than rejection sampling) is adequate here: the
        traits being sampled are bounded behavioural scores, and the exact
        tail shape is immaterial to the reproduced effect sizes.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        value = self._generator.normal(mean, std) if std > 0 else mean
        return float(min(high, max(low, value)))

    # -- batch draws -----------------------------------------------------------
    #
    # The vectorized engine draws whole populations at once.  These methods
    # are the only stochastic primitives it needs: matrices of uniforms for
    # the per-stage decisions and clipped-normal vectors for the traits.

    def uniform_array(self, size: int) -> np.ndarray:
        """``size`` uniform draws on [0, 1) as a vector."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        return self._generator.random(size)

    def uniform_matrix(self, rows: int, cols: int) -> np.ndarray:
        """A (rows, cols) matrix of uniform draws on [0, 1)."""
        if rows < 0 or cols < 0:
            raise SimulationError("matrix dimensions must be non-negative")
        return self._generator.random((rows, cols))

    def truncated_normal_array(
        self, mean: float, std: float, low: float, high: float, size: int
    ) -> np.ndarray:
        """``size`` normal draws clipped to [low, high] (see truncated_normal).

        A zero ``std`` consumes no randomness and returns a constant vector,
        mirroring the scalar method.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        if size < 0:
            raise SimulationError("size must be non-negative")
        if std == 0:
            return np.full(size, float(min(high, max(low, mean))))
        return np.clip(self._generator.normal(mean, std, size), low, high)

    def integers(self, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        if high <= low:
            raise SimulationError("high must be > low")
        return int(self._generator.integers(low, high))

    def choice(self, options: Sequence, probabilities: Optional[Sequence[float]] = None):
        """Choose one element, optionally with explicit probabilities."""
        if not options:
            raise SimulationError("options must be non-empty")
        if probabilities is not None:
            if len(probabilities) != len(options):
                raise SimulationError("probabilities must match options length")
            total = float(sum(probabilities))
            if total <= 0:
                raise SimulationError("probabilities must sum to a positive value")
            probabilities = [p / total for p in probabilities]
        index = self._generator.choice(len(options), p=probabilities)
        return options[int(index)]


class PhiloxDraws:
    """Counter-addressable draw streams for one (seed, chunk, round) cell.

    The counter-based decision source behind ``rng_mode="counter"``: every
    stream of the cell maps to its own Philox key ``[seed,
    chunk << 40 | round << 20 | stream]``, so

    * streams are independent by construction — chunk randomness does not
      depend on the order chunks run in (what makes in-call multicore
      bit-identical to serial), and round ``r`` redraws do not depend on
      rounds ``< r``;
    * any single value is recomputable in O(1): Philox counters advance
      in blocks of four doubles, so element ``i`` of a stream is reached
      by ``advance(i // 4)`` plus at most three generated values
      (:meth:`uniform_at`), with no need to materialize the matrix it
      came from.

    Bulk generation (:meth:`uniforms`) and point addressing are bitwise
    identical by the Philox counter semantics; the equivalence suite in
    ``tests/simulation/test_counter_rng.py`` pins both.
    """

    def __init__(self, seed: int, chunk: int = 0, round_index: int = 0) -> None:
        if seed < 0:
            raise SimulationError("seed must be non-negative")
        if not 0 <= chunk < (1 << _CHUNK_BITS):
            raise SimulationError(f"chunk must be in [0, 2**{_CHUNK_BITS})")
        if not 0 <= round_index < (1 << _ROUND_BITS):
            raise SimulationError(f"round_index must be in [0, 2**{_ROUND_BITS})")
        self.seed = seed
        self.chunk = chunk
        self.round_index = round_index

    def for_round(self, round_index: int) -> "PhiloxDraws":
        """The same chunk cell at another hazard-encounter round."""
        return PhiloxDraws(self.seed, self.chunk, round_index)

    def _bit_generator(self, stream: int) -> np.random.Philox:
        if not 0 <= stream < (1 << _STREAM_BITS):
            raise SimulationError(f"stream must be in [0, 2**{_STREAM_BITS})")
        packed = (
            (self.chunk << (_ROUND_BITS + _STREAM_BITS))
            | (self.round_index << _STREAM_BITS)
            | stream
        )
        return np.random.Philox(key=[self.seed, packed])

    # -- uniforms ---------------------------------------------------------------

    def uniforms(self, stream: int, size: int) -> np.ndarray:
        """The first ``size`` uniform [0, 1) values of one stream."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        return np.random.Generator(self._bit_generator(stream)).random(size)

    def uniform_at(self, stream: int, index: int) -> float:
        """Element ``index`` of a stream in O(1), bit-identical to bulk.

        ``advance(q)`` positions the Philox double stream at bulk element
        ``4 * q`` (each 4x64 counter block yields four doubles), so the
        target is at most three generated values past the advanced
        counter.
        """
        if index < 0:
            raise SimulationError("index must be non-negative")
        quotient, remainder = divmod(index, 4)
        bit_generator = self._bit_generator(stream)
        if quotient:
            bit_generator.advance(quotient)
        return float(np.random.Generator(bit_generator).random(remainder + 1)[-1])

    # -- clipped normals --------------------------------------------------------

    def clipped_normals(
        self,
        streams: Tuple[int, int],
        mean: float,
        std: float,
        low: float,
        high: float,
        size: int,
    ) -> np.ndarray:
        """``size`` Box-Muller normals clipped to [low, high].

        A zero ``std`` returns a constant vector, mirroring
        :meth:`SimulationRng.truncated_normal_array` (the streams stay
        untouched — counter streams have no draw-order state to preserve).
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        if std == 0:
            return np.full(size, float(min(high, max(low, mean))))
        u1 = self.uniforms(streams[0], size)
        u2 = self.uniforms(streams[1], size)
        return clipped_normals_from_uniforms(u1, u2, mean, std, low, high)

    def clipped_normal_at(
        self,
        streams: Tuple[int, int],
        mean: float,
        std: float,
        low: float,
        high: float,
        index: int,
    ) -> float:
        """Element ``index`` of a clipped-normal stream pair in O(1)."""
        if std < 0:
            raise SimulationError("std must be non-negative")
        if std == 0:
            return float(min(high, max(low, mean)))
        u1 = np.array([self.uniform_at(streams[0], index)])
        u2 = np.array([self.uniform_at(streams[1], index)])
        return float(
            clipped_normals_from_uniforms(u1, u2, mean, std, low, high)[0]
        )
