"""Deterministic random-number utilities for the simulation substrate.

All stochastic behaviour in the simulation flows through a
:class:`SimulationRng` created from an explicit seed, so every experiment
in the benchmark harness is exactly reproducible.  The class wraps
:class:`numpy.random.Generator` and adds the small set of draws the
simulation needs (Bernoulli trials, truncated normals, independent child
streams).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["SimulationRng"]


class SimulationRng:
    """Seeded random source for simulations.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always produces the same
        stream of draws.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise SimulationError("seed must be non-negative")
        self.seed = seed
        self._generator = np.random.default_rng(seed)

    def spawn(self, index: int) -> "SimulationRng":
        """Create an independent child stream.

        Child streams are derived deterministically from the parent seed
        and ``index``, so per-user streams do not depend on the order in
        which users are simulated.
        """
        if index < 0:
            raise SimulationError("spawn index must be non-negative")
        return SimulationRng(seed=hash((self.seed, index)) % (2**32))

    def bernoulli(self, probability: float) -> bool:
        """One biased coin flip."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"probability must be in [0, 1], got {probability}")
        return bool(self._generator.random() < probability)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on [low, high)."""
        if high < low:
            raise SimulationError("high must be >= low")
        return float(self._generator.uniform(low, high))

    def truncated_normal(
        self, mean: float, std: float, low: float = 0.0, high: float = 1.0
    ) -> float:
        """A normal draw clipped to [low, high].

        Clipping (rather than rejection sampling) is adequate here: the
        traits being sampled are bounded behavioural scores, and the exact
        tail shape is immaterial to the reproduced effect sizes.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        value = self._generator.normal(mean, std) if std > 0 else mean
        return float(min(high, max(low, value)))

    # -- batch draws -----------------------------------------------------------
    #
    # The vectorized engine draws whole populations at once.  These methods
    # are the only stochastic primitives it needs: matrices of uniforms for
    # the per-stage decisions and clipped-normal vectors for the traits.

    def uniform_array(self, size: int) -> np.ndarray:
        """``size`` uniform draws on [0, 1) as a vector."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        return self._generator.random(size)

    def uniform_matrix(self, rows: int, cols: int) -> np.ndarray:
        """A (rows, cols) matrix of uniform draws on [0, 1)."""
        if rows < 0 or cols < 0:
            raise SimulationError("matrix dimensions must be non-negative")
        return self._generator.random((rows, cols))

    def truncated_normal_array(
        self, mean: float, std: float, low: float, high: float, size: int
    ) -> np.ndarray:
        """``size`` normal draws clipped to [low, high] (see truncated_normal).

        A zero ``std`` consumes no randomness and returns a constant vector,
        mirroring the scalar method.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        if size < 0:
            raise SimulationError("size must be non-negative")
        if std == 0:
            return np.full(size, float(min(high, max(low, mean))))
        return np.clip(self._generator.normal(mean, std, size), low, high)

    def integers(self, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        if high <= low:
            raise SimulationError("high must be > low")
        return int(self._generator.integers(low, high))

    def choice(self, options: Sequence, probabilities: Optional[Sequence[float]] = None):
        """Choose one element, optionally with explicit probabilities."""
        if not options:
            raise SimulationError("options must be non-empty")
        if probabilities is not None:
            if len(probabilities) != len(options):
                raise SimulationError("probabilities must match options length")
            total = float(sum(probabilities))
            if total <= 0:
                raise SimulationError("probabilities must sum to a positive value")
            probabilities = [p / total for p in probabilities]
        index = self._generator.choice(len(options), p=probabilities)
        return options[int(index)]
