"""Deterministic random-number utilities for the simulation substrate.

All stochastic behaviour in the simulation flows through one of two
sources, both created from an explicit seed so every experiment in the
benchmark harness is exactly reproducible:

* :class:`SimulationRng` — the sequential source.  Wraps
  :class:`numpy.random.Generator` and adds the small set of draws the
  simulation needs (Bernoulli trials, truncated normals, independent
  child streams).  Draw *order* matters: the k-th value depends on the
  k-1 draws before it, which is why the engine pins a fixed draw layout.
* :class:`CounterDraws` — the counter-based source (``rng_mode="counter"``,
  the engine default), following the "Parallel random numbers: as easy as
  1, 2, 3" design of keyed counter streams.  Every draw category of a
  (seed, chunk, round) cell owns a dedicated keyed stream, so the i-th
  value of any stream is addressable in O(1)
  (:meth:`CounterDraws.uniform_at`) without generating its predecessors,
  and no category's draws depend on how many draws another category
  consumed.  Truncated normals come from a fixed-consumption dual-output
  Box–Muller transform instead of numpy's variable-consumption ziggurat,
  keeping them addressable too.

The counter source keys one :class:`numpy.random.PCG64` state per stream
(the state words are a splitmix64 hash of the (seed, chunk, round,
stream) coordinates, so keying costs microseconds and never touches
:class:`numpy.random.SeedSequence` in the hot path).  PCG64 consumes
exactly one underlying step per double and supports O(1) ``advance``,
which is what makes element ``i`` of any stream reachable without
generating elements ``0..i-1``.  Each cell constructs a *single* bit
generator and repositions it per stream by assigning a cached state
template — bulk fills, redraws and point queries all share it
(:attr:`CounterDraws.bit_generator_constructions` counts the
constructions so the regression suite can pin the cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import SimulationError

__all__ = [
    "SimulationRng",
    "CounterDraws",
    "PhiloxDraws",
    "trait_streams",
    "AGE_STREAMS",
    "TRAINED_STREAM",
    "SPOOF_STREAM",
    "NOISE_STREAMS",
    "DECISION_STREAM_BASE",
]

# ---------------------------------------------------------------------------
# Counter-based stream layout
#
# Each draw category of a chunk-round cell owns its own keyed sub-stream.
# Trait k consumes the Box-Muller pair (2k, 2k+1); the remaining categories
# start above the trait block (21 traits -> streams 0..41).
# ---------------------------------------------------------------------------

#: Box-Muller uniform pair for the demographic age draw.
AGE_STREAMS: Tuple[int, int] = (42, 43)
#: Training-fraction Bernoulli uniforms.
TRAINED_STREAM = 44
#: Attacker spoof uniforms.
SPOOF_STREAM = 45
#: Box-Muller uniform pair for the per-receiver perception noise.
NOISE_STREAMS: Tuple[int, int] = (46, 47)
#: Decision column ``c`` of the draw layout reads stream ``BASE + c``.
DECISION_STREAM_BASE = 48

_CHUNK_BITS = 24
_ROUND_BITS = 20
_STREAM_BITS = 20


def trait_streams(trait_index: int) -> Tuple[int, int]:
    """The Box-Muller uniform stream pair of one population trait."""
    return (2 * trait_index, 2 * trait_index + 1)


_TWO_PI = 2.0 * np.pi
_MASK64 = (1 << 64) - 1

#: Reused Box-Muller scratch buffers keyed by shape.  The transform needs
#: three temporaries (the cosine, the unit sine, and the sine-sign
#: carrier); allocating them fresh every call pays page-fault cost on
#: each chunk, and chunk sizes repeat, so a tiny per-process cache
#: amortizes it to zero.
_SCRATCH: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_SCRATCH_LIMIT = 8


def _scratch(rows: int, half: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    key = (rows, half)
    buffers = _SCRATCH.get(key)
    if buffers is None:
        if len(_SCRATCH) >= _SCRATCH_LIMIT:
            _SCRATCH.clear()
        buffers = (
            np.empty((rows, half)),
            np.empty((rows, half)),
            np.empty((rows, half)),
        )
        _SCRATCH[key] = buffers
    return buffers


#: Reused *output* blocks for :meth:`CounterDraws.clipped_normal_block`,
#: keyed by shape.  Unlike the scratch temporaries these escape to the
#: caller, so reuse is opt-in (``reuse_block=True``): the caller promises
#: the previous same-shape block is no longer referenced.  The engine
#: makes that promise exactly when a chunk's draws die with the chunk
#: (records not kept) — which is what keeps the multi-megabyte trait
#: block from being freed and page-faulted back in on every chunk.
_BLOCKS: Dict[Tuple[int, int], np.ndarray] = {}


def _output_block(rows: int, width: int, reuse: bool) -> np.ndarray:
    if not reuse:
        return np.empty((rows, width))
    key = (rows, width)
    block = _BLOCKS.get(key)
    if block is None:
        if len(_BLOCKS) >= _SCRATCH_LIMIT:
            _BLOCKS.clear()
        block = np.empty((rows, width))
        _BLOCKS[key] = block
    return block


def _splitmix64(value: int) -> int:
    """One splitmix64 step: a cheap, well-mixed 64-bit hash permutation."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _stream_state(seed: int, packed: int) -> dict:
    """The frozen PCG64 state template of one (seed, packed-coords) stream.

    Four splitmix64 words derived from the coordinates become the 128-bit
    LCG state and the (forced-odd) 128-bit increment.  Direct state
    assignment costs ~1 microsecond where a ``SeedSequence``-seeded
    construction costs ~70 — the difference is the whole construction
    budget of a 100k-receiver counter run.  The derivation is pure
    arithmetic on the coordinates, so persisted counter-mode draws replay
    independently of numpy's seeding helpers.
    """
    mixed = _splitmix64(_splitmix64(seed) ^ packed)
    word0 = _splitmix64(mixed)
    word1 = _splitmix64(word0)
    word2 = _splitmix64(word1)
    word3 = _splitmix64(word2)
    return {
        "bit_generator": "PCG64",
        "state": {"state": (word0 << 64) | word1, "inc": ((word2 << 64) | word3) | 1},
        "has_uint32": 0,
        "uinteger": 0,
    }


class SimulationRng:
    """Seeded random source for simulations.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always produces the same
        stream of draws.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise SimulationError("seed must be non-negative")
        self.seed = seed
        self._generator = np.random.default_rng(seed)

    def spawn(self, index: int) -> "SimulationRng":
        """Create an independent child stream.

        Child streams are derived deterministically from the parent seed
        and ``index``, so per-user streams do not depend on the order in
        which users are simulated.
        """
        if index < 0:
            raise SimulationError("spawn index must be non-negative")
        return SimulationRng(seed=hash((self.seed, index)) % (2**32))

    def bernoulli(self, probability: float) -> bool:
        """One biased coin flip."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"probability must be in [0, 1], got {probability}")
        return bool(self._generator.random() < probability)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on [low, high)."""
        if high < low:
            raise SimulationError("high must be >= low")
        return float(self._generator.uniform(low, high))

    def truncated_normal(
        self, mean: float, std: float, low: float = 0.0, high: float = 1.0
    ) -> float:
        """A normal draw clipped to [low, high].

        Clipping (rather than rejection sampling) is adequate here: the
        traits being sampled are bounded behavioural scores, and the exact
        tail shape is immaterial to the reproduced effect sizes.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        value = self._generator.normal(mean, std) if std > 0 else mean
        return float(min(high, max(low, value)))

    # -- batch draws -----------------------------------------------------------
    #
    # The vectorized engine draws whole populations at once.  These methods
    # are the only stochastic primitives it needs: matrices of uniforms for
    # the per-stage decisions and clipped-normal vectors for the traits.

    def uniform_array(self, size: int) -> np.ndarray:
        """``size`` uniform draws on [0, 1) as a vector."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        return self._generator.random(size)

    def uniform_matrix(self, rows: int, cols: int) -> np.ndarray:
        """A (rows, cols) matrix of uniform draws on [0, 1)."""
        if rows < 0 or cols < 0:
            raise SimulationError("matrix dimensions must be non-negative")
        return self._generator.random((rows, cols))

    def truncated_normal_array(
        self, mean: float, std: float, low: float, high: float, size: int
    ) -> np.ndarray:
        """``size`` normal draws clipped to [low, high] (see truncated_normal).

        A zero ``std`` consumes no randomness and returns a constant vector,
        mirroring the scalar method.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        if size < 0:
            raise SimulationError("size must be non-negative")
        if std == 0:
            return np.full(size, float(min(high, max(low, mean))))
        return np.clip(self._generator.normal(mean, std, size), low, high)

    def integers(self, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        if high <= low:
            raise SimulationError("high must be > low")
        return int(self._generator.integers(low, high))

    def choice(self, options: Sequence, probabilities: Optional[Sequence[float]] = None):
        """Choose one element, optionally with explicit probabilities."""
        if not options:
            raise SimulationError("options must be non-empty")
        if probabilities is not None:
            if len(probabilities) != len(options):
                raise SimulationError("probabilities must match options length")
            total = float(sum(probabilities))
            if total <= 0:
                raise SimulationError("probabilities must sum to a positive value")
            probabilities = [p / total for p in probabilities]
        index = self._generator.choice(len(options), p=probabilities)
        return options[int(index)]


class CounterDraws:
    """Counter-addressable draw streams for one (seed, chunk, round) cell.

    The counter-based decision source behind ``rng_mode="counter"``: every
    stream of the cell maps to its own keyed PCG64 state (derived by
    :func:`_stream_state` from ``seed`` and the packed ``chunk << 40 |
    round << 20 | stream`` coordinates), so

    * streams are independent by construction — chunk randomness does not
      depend on the order chunks run in (what makes in-call multicore
      bit-identical to serial), and round ``r`` redraws do not depend on
      rounds ``< r``;
    * any single value is recomputable in O(1): PCG64 consumes one
      underlying step per double and jumps in O(1), so element ``i`` of a
      stream is ``advance(i)`` plus one generated value
      (:meth:`uniform_at`), with no need to materialize the matrix it
      came from.

    The cell lazily constructs **one** bit generator and one
    :class:`numpy.random.Generator` and repositions them per stream by
    assigning a cached state template (state assignment is bit-identical
    to a fresh construction, ~70x cheaper); bulk fills and point queries
    share them, and :attr:`bit_generator_constructions` exposes the count
    for the cache regression test.

    Normals use a dual-output Box–Muller transform: pair ``j`` reads
    ``u1 = stream_a[j]``, ``u2 = stream_b[j]`` and yields **both**
    ``r·cos θ`` and ``r·sin θ`` (one uniform per normal, half the
    transcendentals of the single-output transform), laid out as the cos
    block followed by the sin block — see :meth:`clipped_normal_block`.
    Bulk generation and point addressing are bitwise identical; the
    equivalence suite in ``tests/simulation/test_counter_rng.py`` pins
    both.
    """

    def __init__(self, seed: int, chunk: int = 0, round_index: int = 0) -> None:
        if seed < 0:
            raise SimulationError("seed must be non-negative")
        if seed >= (1 << 64):
            raise SimulationError("seed must fit in 64 bits")
        if not 0 <= chunk < (1 << _CHUNK_BITS):
            raise SimulationError(f"chunk must be in [0, 2**{_CHUNK_BITS})")
        if not 0 <= round_index < (1 << _ROUND_BITS):
            raise SimulationError(f"round_index must be in [0, 2**{_ROUND_BITS})")
        self.seed = seed
        self.chunk = chunk
        self.round_index = round_index
        #: Constructions of the underlying bit generator — stays at 1 per
        #: cell however many streams, fills, or point queries it serves.
        self.bit_generator_constructions = 0
        self._bit_gen: Optional[np.random.PCG64] = None
        self._generator: Optional[np.random.Generator] = None
        self._state_templates: Dict[int, dict] = {}

    def for_round(self, round_index: int) -> "CounterDraws":
        """The same chunk cell at another hazard-encounter round."""
        return CounterDraws(self.seed, self.chunk, round_index)

    def _template(self, stream: int) -> dict:
        template = self._state_templates.get(stream)
        if template is None:
            if not 0 <= stream < (1 << _STREAM_BITS):
                raise SimulationError(f"stream must be in [0, 2**{_STREAM_BITS})")
            packed = (
                (self.chunk << (_ROUND_BITS + _STREAM_BITS))
                | (self.round_index << _STREAM_BITS)
                | stream
            )
            template = _stream_state(self.seed, packed)
            self._state_templates[stream] = template
        return template

    def _position(self, stream: int, index: int = 0) -> np.random.Generator:
        """The cell generator, rewound to element ``index`` of ``stream``."""
        template = self._template(stream)
        if self._generator is None:
            self._bit_gen = np.random.PCG64(np.random.SeedSequence(0))
            self._generator = np.random.Generator(self._bit_gen)
            self.bit_generator_constructions += 1
        self._bit_gen.state = template
        if index:
            self._bit_gen.advance(index)
        return self._generator

    # -- uniforms ---------------------------------------------------------------

    def uniforms(self, stream: int, size: int) -> np.ndarray:
        """The first ``size`` uniform [0, 1) values of one stream."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        return self._position(stream).random(size)

    def fill_uniforms(self, stream: int, out: np.ndarray) -> None:
        """Fill a contiguous array with the stream prefix, allocation-free."""
        self._position(stream).random(out=out)

    def uniform_at(self, stream: int, index: int) -> float:
        """Element ``index`` of a stream in O(1), bit-identical to bulk.

        PCG64 yields exactly one double per underlying step, so
        ``advance(index)`` lands immediately before the target element.
        """
        if index < 0:
            raise SimulationError("index must be non-negative")
        return float(self._position(stream, index).random(1)[0])

    # -- clipped normals --------------------------------------------------------
    #
    # Pair j of a (stream_a, stream_b) Box-Muller pair produces TWO
    # normals — r_j*cos(theta_j) and r_j*sin(theta_j) with
    # r_j = sqrt(-2*log(1-u1_j)), theta_j = 2*pi*u2_j — so a width-n
    # vector consumes ceil(n/2) uniforms per stream instead of n.  The
    # sine leg is recovered from the cosine as sign(sin) * sqrt(1-c^2)
    # (sin is negative iff u2 > 0.5), trading a transcendental for a
    # square root.  Layout: elements [0, half) are the cos outputs of
    # pairs 0..half-1, elements [half, n) the sin outputs of pairs
    # 0..n-half-1 — which makes the address of one element depend on the
    # cell's draw width (the chunk size), hence the ``count`` argument on
    # the point query.

    def clipped_normal_block(
        self,
        pairs: Sequence[Tuple[int, int]],
        means: Sequence[float],
        stds: Sequence[float],
        lows: Sequence[float],
        highs: Sequence[float],
        count: int,
        reuse_block: bool = False,
    ) -> np.ndarray:
        """A (len(pairs), count) matrix of clipped Box-Muller normals.

        One vectorized transcendental pass covers every row, which is
        what lets counter-mode trait sampling outrun the matrix path's
        per-trait ziggurat fills.  Rows with zero std are constant and
        consume no stream values, mirroring
        :meth:`SimulationRng.truncated_normal_array`.

        With ``reuse_block=True`` the returned matrix is a view of a
        per-process buffer shared by every same-shape call: the caller
        asserts the previous same-shape result is dead (values are
        unchanged either way — only the backing memory is recycled).
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        rows = len(pairs)
        for std, low, high, mean in zip(stds, lows, highs, means):
            if std < 0:
                raise SimulationError("std must be non-negative")
            if high < low:
                raise SimulationError("high must be >= low")
        half = (count + 1) // 2
        block = _output_block(rows, 2 * half, reuse_block)
        active = [row for row in range(rows) if stds[row] > 0]
        if active and count:
            u1 = block[:, :half]
            u2 = block[:, half:]
            for row in active:
                stream_a, stream_b = pairs[row]
                self.fill_uniforms(stream_a, u1[row])
                self.fill_uniforms(stream_b, u2[row])
            sub1 = u1[active] if len(active) < rows else u1
            sub2 = u2[active] if len(active) < rows else u2
            # sub = copies when some rows are inactive; write results back.
            cosine, unit_sine, sine_sign = _scratch(len(active), half)
            radius = sub1
            # log(1 - u) over log1p(-u): numpy vectorizes log but not
            # log1p, and the argument only loses precision where the
            # radius is already ~0 (u -> 0), which the clip bounds hide;
            # at the large-radius tail (u -> 1) the subtraction is exact.
            np.subtract(1.0, radius, out=radius)
            np.log(radius, out=radius)
            radius *= -2.0
            np.sqrt(radius, out=radius)
            # Both legs of a pair share one radius and one row std, so
            # the std scaling rides the half-width radius array instead
            # of a second full-width pass over the assembled block.
            radius *= np.array([stds[row] for row in active])[:, None]
            # Quarter-wave cosine: numpy's vectorized cos is ~4x faster
            # below pi/4 than across [0, 2*pi), so fold u into
            # x = quarter-phase in [0, 1/4] plus two sign carriers and
            # recover cos(2*pi*u) = sign * (2*cos^2(pi*x) - 1) via the
            # half-angle identity (argument pi*x stays inside the fast
            # path).  cos is negative iff |u - 0.5| < 0.25 (carrier t);
            # sin is negative iff u > 0.5 (carrier 0.5 - u).
            np.subtract(0.5, sub2, out=sine_sign)
            np.abs(sine_sign, out=sub2)
            np.subtract(sub2, 0.25, out=sub2)
            np.abs(sub2, out=cosine)
            np.subtract(0.25, cosine, out=cosine)
            cosine *= np.pi
            np.cos(cosine, out=cosine)
            np.square(cosine, out=cosine)
            cosine *= 2.0
            cosine -= 1.0
            np.copysign(cosine, sub2, out=cosine)
            # Sine leg as sign * sqrt(1 - cos^2): a square root plus a
            # single copysign pass instead of a second transcendental.
            np.square(cosine, out=unit_sine)
            np.subtract(1.0, unit_sine, out=unit_sine)
            np.sqrt(unit_sine, out=unit_sine)
            unit_sine *= radius
            np.copysign(unit_sine, sine_sign, out=sub2)
            np.multiply(cosine, radius, out=sub1)
            if len(active) < rows:
                u1[active] = sub1
                u2[active] = sub2
        result = block[:, :count]
        for row in range(rows):
            values = result[row]
            if stds[row] == 0:
                values[:] = float(min(highs[row], max(lows[row], means[row])))
                continue
            values += means[row]
            np.clip(values, lows[row], highs[row], out=values)
        return result

    def clipped_normals(
        self,
        streams: Tuple[int, int],
        mean: float,
        std: float,
        low: float,
        high: float,
        size: int,
        reuse_block: bool = False,
    ) -> np.ndarray:
        """``size`` dual-output Box-Muller normals clipped to [low, high].

        A zero ``std`` returns a constant vector, mirroring
        :meth:`SimulationRng.truncated_normal_array` (the streams stay
        untouched — counter streams have no draw-order state to preserve).
        """
        return self.clipped_normal_block(
            [streams], [mean], [std], [low], [high], size, reuse_block=reuse_block
        )[0]

    def clipped_normal_at(
        self,
        streams: Tuple[int, int],
        mean: float,
        std: float,
        low: float,
        high: float,
        index: int,
        count: int,
    ) -> float:
        """Element ``index`` of a width-``count`` clipped-normal vector in O(1).

        ``count`` is the draw width of the vector the element belongs to
        (the chunk size): the dual-output layout places the cos outputs
        at [0, ceil(count/2)) and the sin outputs after them, so the
        pair index of an element depends on where that boundary falls.
        """
        if std < 0:
            raise SimulationError("std must be non-negative")
        if high < low:
            raise SimulationError("high must be >= low")
        if not 0 <= index < count:
            raise SimulationError("index must be in [0, count)")
        if std == 0:
            return float(min(high, max(low, mean)))
        half = (count + 1) // 2
        sine_leg = index >= half
        pair = index - half if sine_leg else index
        u1 = np.array([self.uniform_at(streams[0], pair)])
        u2 = np.array([self.uniform_at(streams[1], pair)])
        radius = np.sqrt(np.log(1.0 - u1) * -2.0)
        radius *= std
        # Same op sequence as the bulk quarter-wave transform, on
        # one-element arrays, so point and bulk values agree bit for bit.
        cos_sign = np.abs(0.5 - u2) - 0.25
        quarter = 0.25 - np.abs(cos_sign)
        quarter *= np.pi
        cosine = np.cos(quarter)
        np.square(cosine, out=cosine)
        cosine *= 2.0
        cosine -= 1.0
        np.copysign(cosine, cos_sign, out=cosine)
        if sine_leg:
            leg = np.sqrt(1.0 - np.square(cosine))
            leg *= radius
            value = float(np.copysign(leg, 0.5 - u2)[0])
        else:
            value = float((cosine * radius)[0])
        return float(min(high, max(low, value + mean)))


#: Backwards-compatible alias: the counter cell kept its public shape when
#: the backing engine moved from per-call Philox construction to cached
#: keyed PCG64 streams (PR 9).
PhiloxDraws = CounterDraws
