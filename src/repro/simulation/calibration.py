"""Scenario calibrations for the human-receiver simulation.

The stage-probability model in :mod:`repro.core.probabilities` is generic.
To reproduce the *shape* of the findings the paper's case studies lean on
(Egelman et al.'s warning study, Wu et al.'s toolbar study, Gaw & Felten's
password-reuse survey, ...), each simulated scenario can supply a
:class:`StageCalibration` that rescales stage probabilities and sets the
behavioural constants the engine needs (e.g. how likely a user who
misunderstands a blocking warning is to override it anyway).

Calibrations deliberately stay simple: one multiplicative factor per stage,
clamped back into the valid probability band.  The provenance of every
non-neutral constant used by the case-study experiments is documented in
:mod:`repro.studies`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from ..core.exceptions import CalibrationError
from ..core.probabilities import clamp_probability
from ..core.stages import Stage

__all__ = ["StageCalibration"]


@dataclasses.dataclass(frozen=True)
class StageCalibration:
    """Multiplicative calibration of the stage-probability model.

    Parameters
    ----------
    stage_multipliers:
        Per-stage multiplicative factors applied to the generic stage
        probabilities (1.0 = leave unchanged).
    intention_multiplier / capability_multiplier:
        Factors applied to the intention and capability gate probabilities.
    override_given_misunderstanding:
        For blocking communications: probability that a receiver who fails
        comprehension or knowledge acquisition nevertheless finds and uses
        the override, reaching the hazard.  Egelman et al. observed that
        most confused users retried the original link instead and "failed
        safely"; the default reflects that.
    user_noise_std:
        Standard deviation of per-user noise added to stage probabilities,
        modelling heterogeneity the trait distributions do not capture.
    label:
        Name for reports.
    """

    stage_multipliers: Mapping[Stage, float] = dataclasses.field(default_factory=dict)
    intention_multiplier: float = 1.0
    capability_multiplier: float = 1.0
    override_given_misunderstanding: float = 0.3
    user_noise_std: float = 0.05
    label: str = "neutral"

    def __post_init__(self) -> None:
        for stage, multiplier in self.stage_multipliers.items():
            if not isinstance(stage, Stage):
                raise CalibrationError(f"stage multipliers must be keyed by Stage, got {stage!r}")
            if multiplier < 0:
                raise CalibrationError(f"multiplier for {stage} must be non-negative")
        for name in ("intention_multiplier", "capability_multiplier"):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be non-negative")
        if not 0.0 <= self.override_given_misunderstanding <= 1.0:
            raise CalibrationError("override_given_misunderstanding must be in [0, 1]")
        if self.user_noise_std < 0:
            raise CalibrationError("user_noise_std must be non-negative")

    @classmethod
    def neutral(cls) -> "StageCalibration":
        """A calibration that leaves the generic model untouched."""
        return cls()

    def multiplier_for(self, stage: Stage) -> float:
        return self.stage_multipliers.get(stage, 1.0)

    def apply_stage(self, stage: Stage, probability: float) -> float:
        """Apply the calibration to one stage probability."""
        return clamp_probability(probability * self.multiplier_for(stage))

    def apply_intention(self, probability: float) -> float:
        return clamp_probability(probability * self.intention_multiplier)

    def apply_capability(self, probability: float) -> float:
        return clamp_probability(probability * self.capability_multiplier)

    def with_multiplier(self, stage: Stage, multiplier: float) -> "StageCalibration":
        """Return a copy with one stage multiplier replaced."""
        updated = dict(self.stage_multipliers)
        updated[stage] = multiplier
        return dataclasses.replace(self, stage_multipliers=updated)
