"""Simulation results and streaming aggregate metrics.

A :class:`SimulationTally` accumulates the aggregates the benchmarks
report — protection rate, heed rate, outcome distribution, and the
per-stage failure breakdown that mirrors the way the paper's case studies
walk through the framework components — either record by record or a whole
vectorized batch at a time.  Because the batch engine folds each chunk of
receivers into the tally and discards the arrays, memory stays O(batch)
rather than O(population) for large runs.

A :class:`SimulationResult` carries the tally (and, for small runs, the
per-receiver :class:`ReceiverRecord` list with full stage traces).
:func:`comparison_table` renders several results side by side (e.g.
Firefox vs. IE-active vs. IE-passive vs. no warning).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.behavior import BehaviorOutcome
from ..core.exceptions import SimulationError
from ..core.stages import STAGE_ORDER, Stage, StageTrace

__all__ = [
    "OUTCOME_ORDER",
    "outcome_code",
    "ReceiverRecord",
    "SimulationTally",
    "SimulationResult",
    "comparison_table",
    "render_comparison_markdown",
]

#: Canonical outcome order used to encode outcomes as integers in batches.
OUTCOME_ORDER: Tuple[BehaviorOutcome, ...] = tuple(BehaviorOutcome)
_OUTCOME_CODES: Dict[BehaviorOutcome, int] = {
    outcome: code for code, outcome in enumerate(OUTCOME_ORDER)
}


def outcome_code(outcome: BehaviorOutcome) -> int:
    """Integer code of a behavior outcome (index into OUTCOME_ORDER)."""
    return _OUTCOME_CODES[outcome]


@dataclasses.dataclass(frozen=True)
class ReceiverRecord:
    """Outcome of one simulated receiver's encounter with the task."""

    index: int
    receiver_name: str
    trace: StageTrace
    outcome: BehaviorOutcome
    protected: bool
    failed_stage: Optional[Stage] = None
    intention_failed: bool = False
    capability_failed: bool = False
    spoofed: bool = False
    note: str = ""


@dataclasses.dataclass
class SimulationTally:
    """Streaming aggregate of receiver outcomes.

    Fed either one :class:`ReceiverRecord` at a time (:meth:`add_record`,
    used by the scalar reference walk) or a whole vectorized batch at once
    (:meth:`add_batch`).  Holding only counters, it is the piece that keeps
    population-scale simulations O(batch) in memory.
    """

    n: int = 0
    protected: int = 0
    outcome_counts_by_code: List[int] = dataclasses.field(
        default_factory=lambda: [0] * len(OUTCOME_ORDER)
    )
    stage_failure_by_index: List[int] = dataclasses.field(
        default_factory=lambda: [0] * len(STAGE_ORDER)
    )
    intention_failures: int = 0
    capability_failures: int = 0
    spoofed: int = 0
    attention_evaluated: int = 0
    attention_succeeded: int = 0

    def add_record(self, record: ReceiverRecord) -> None:
        """Fold one per-receiver record into the tally."""
        self.n += 1
        if record.protected:
            self.protected += 1
        self.outcome_counts_by_code[outcome_code(record.outcome)] += 1
        if record.failed_stage is not None:
            self.stage_failure_by_index[record.failed_stage.index] += 1
        if record.intention_failed:
            self.intention_failures += 1
        if record.capability_failed:
            self.capability_failures += 1
        if record.spoofed:
            self.spoofed += 1
        attention = record.trace.outcome_for(Stage.ATTENTION_SWITCH)
        if attention is not None:
            self.attention_evaluated += 1
            if attention.succeeded:
                self.attention_succeeded += 1

    def add_batch(self, outcomes) -> None:
        """Fold a :class:`repro.simulation.batch.BatchOutcomes` into the tally."""
        count = outcomes.count
        self.n += count
        self.protected += int(np.count_nonzero(outcomes.protected))
        outcome_bins = np.bincount(outcomes.outcome_codes, minlength=len(OUTCOME_ORDER))
        for code, increment in enumerate(outcome_bins):
            self.outcome_counts_by_code[code] += int(increment)
        failed = outcomes.failed_stage_index[outcomes.failed_stage_index >= 0]
        stage_bins = np.bincount(failed, minlength=len(STAGE_ORDER))
        for index, increment in enumerate(stage_bins):
            self.stage_failure_by_index[index] += int(increment)
        self.intention_failures += int(np.count_nonzero(outcomes.intention_failed))
        self.capability_failures += int(np.count_nonzero(outcomes.capability_failed))
        self.spoofed += int(np.count_nonzero(outcomes.spoofed))
        self.attention_evaluated += int(np.count_nonzero(outcomes.attention_evaluated))
        self.attention_succeeded += int(np.count_nonzero(outcomes.attention_succeeded))

    def merge(self, other: "SimulationTally") -> None:
        """Fold another tally into this one."""
        self.n += other.n
        self.protected += other.protected
        for code, value in enumerate(other.outcome_counts_by_code):
            self.outcome_counts_by_code[code] += value
        for index, value in enumerate(other.stage_failure_by_index):
            self.stage_failure_by_index[index] += value
        self.intention_failures += other.intention_failures
        self.capability_failures += other.capability_failures
        self.spoofed += other.spoofed
        self.attention_evaluated += other.attention_evaluated
        self.attention_succeeded += other.attention_succeeded

    # -- views -----------------------------------------------------------------

    def outcome_counts(self) -> Dict[BehaviorOutcome, int]:
        return {
            outcome: self.outcome_counts_by_code[code]
            for code, outcome in enumerate(OUTCOME_ORDER)
        }

    def stage_failure_counts(self) -> Dict[Stage, int]:
        return {
            STAGE_ORDER[index]: count
            for index, count in enumerate(self.stage_failure_by_index)
            if count > 0
        }


@dataclasses.dataclass
class SimulationResult:
    """Aggregated result of simulating one task over a population.

    The engine always populates ``tally``; ``records`` carries the full
    per-receiver traces only when the run is small enough (see
    ``SimulationConfig.record_limit``) or the scalar reference mode is
    used.  Results built by hand from records alone (as some tests do)
    derive their tally lazily.

    ``seed``, ``mode``, and ``batch_size`` together make the run exactly
    reproducible (both modes consume pre-drawn randomness chunked by
    ``batch_size``, so all three matter); the engine records them and the
    serialized form (:func:`repro.io.simulation_result_to_dict`) carries
    them as provenance.  ``mode``/``batch_size`` stay ``None`` on
    hand-built results.
    """

    task_name: str
    population_name: str
    records: List[ReceiverRecord] = dataclasses.field(default_factory=list)
    seed: int = 0
    calibration_label: str = "neutral"
    tally: Optional[SimulationTally] = None
    mode: Optional[str] = None
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.task_name:
            raise SimulationError("task_name must be non-empty")

    def _counts(self) -> SimulationTally:
        """The effective tally (explicit, or derived from the records)."""
        if self.tally is not None:
            return self.tally
        tally = SimulationTally()
        for record in self.records:
            tally.add_record(record)
        return tally

    # -- core rates ------------------------------------------------------------

    @property
    def n_receivers(self) -> int:
        if self.tally is not None:
            return self.tally.n
        return len(self.records)

    def _fraction(self, count: int) -> float:
        total = self.n_receivers
        if total == 0:
            return 0.0
        return count / total

    def protection_rate(self) -> float:
        """Fraction of receivers for whom the hazard was avoided."""
        return self._fraction(self._counts().protected)

    def heed_rate(self) -> float:
        """Fraction of receivers who completed the desired action correctly."""
        return self._fraction(self._counts().outcome_counts_by_code[
            outcome_code(BehaviorOutcome.SUCCESS)
        ])

    def failure_rate(self) -> float:
        """Fraction of receivers for whom the hazard was *not* avoided."""
        return 1.0 - self.protection_rate()

    def notice_rate(self) -> float:
        """Fraction of receivers who passed the attention-switch stage."""
        counts = self._counts()
        if counts.attention_evaluated == 0:
            return 0.0
        return counts.attention_succeeded / counts.attention_evaluated

    # -- breakdowns ------------------------------------------------------------

    def outcome_counts(self) -> Dict[BehaviorOutcome, int]:
        return self._counts().outcome_counts()

    def stage_failure_counts(self) -> Dict[Stage, int]:
        """How many receivers failed first at each stage."""
        return self._counts().stage_failure_counts()

    def stage_failure_fractions(self) -> Dict[Stage, float]:
        return {
            stage: self._fraction(count)
            for stage, count in self.stage_failure_counts().items()
        }

    def intention_failure_rate(self) -> float:
        """Fraction of receivers who noticed/understood but chose not to comply."""
        return self._fraction(self._counts().intention_failures)

    def capability_failure_rate(self) -> float:
        """Fraction of receivers who intended to comply but were not capable."""
        return self._fraction(self._counts().capability_failures)

    def spoofed_rate(self) -> float:
        return self._fraction(self._counts().spoofed)

    def dominant_failure_stage(self) -> Optional[Stage]:
        """The stage where most first-failures occur, if any failures occurred."""
        counts = self.stage_failure_counts()
        if not counts:
            return None
        return max(counts, key=lambda stage: counts[stage])

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a flat dictionary (used by the benchmarks)."""
        return {
            "n_receivers": float(self.n_receivers),
            "protection_rate": self.protection_rate(),
            "heed_rate": self.heed_rate(),
            "notice_rate": self.notice_rate(),
            "intention_failure_rate": self.intention_failure_rate(),
            "capability_failure_rate": self.capability_failure_rate(),
        }


def comparison_table(
    results: Mapping[str, SimulationResult]
) -> List[Dict[str, float]]:
    """Build comparison rows (one per scenario) from named results."""
    rows: List[Dict[str, float]] = []
    for label, result in results.items():
        row: Dict[str, float] = {"scenario": label}  # type: ignore[dict-item]
        row.update(result.summary())
        rows.append(row)
    return rows


def render_comparison_markdown(results: Mapping[str, SimulationResult]) -> str:
    """Render named results as a Markdown comparison table."""
    lines = [
        "| Scenario | N | Protection | Heed | Notice | Intention failures | Capability failures |",
        "|---|---|---|---|---|---|---|",
    ]
    for label, result in results.items():
        lines.append(
            f"| {label} | {result.n_receivers} | "
            f"{result.protection_rate():.1%} | {result.heed_rate():.1%} | "
            f"{result.notice_rate():.1%} | {result.intention_failure_rate():.1%} | "
            f"{result.capability_failure_rate():.1%} |"
        )
    return "\n".join(lines)
