"""Simulation results and streaming aggregate metrics.

A :class:`SimulationTally` accumulates the aggregates the benchmarks
report — protection rate, heed rate, outcome distribution, and the
per-stage failure breakdown that mirrors the way the paper's case studies
walk through the framework components — either record by record or a whole
vectorized batch at a time.  Because the batch engine folds each chunk of
receivers into the tally and discards the arrays, memory stays O(batch)
rather than O(population) for large runs.

A :class:`SimulationResult` carries the tally (and, for small runs, the
per-receiver :class:`ReceiverRecord` list with full stage traces).
:func:`comparison_table` renders several results side by side (e.g.
Firefox vs. IE-active vs. IE-passive vs. no warning).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.behavior import OUTCOME_ORDER, BehaviorOutcome, outcome_code
from ..core.exceptions import SimulationError
from ..core.stages import STAGE_ORDER, FunnelCounts, Stage, StageTrace, StageTraceBatch

__all__ = [
    "OUTCOME_ORDER",
    "outcome_code",
    "ReceiverRecord",
    "SimulationTally",
    "RoundTally",
    "FunnelTally",
    "SimulationResult",
    "comparison_table",
    "render_comparison_markdown",
]


@dataclasses.dataclass(frozen=True)
class ReceiverRecord:
    """Outcome of one simulated receiver's encounter with the task.

    ``round_index`` identifies which hazard-encounter round of a
    multi-round run the record belongs to; single-shot runs leave it 0.
    """

    index: int
    receiver_name: str
    trace: StageTrace
    outcome: BehaviorOutcome
    protected: bool
    failed_stage: Optional[Stage] = None
    intention_failed: bool = False
    capability_failed: bool = False
    spoofed: bool = False
    note: str = ""
    round_index: int = 0


@dataclasses.dataclass
class SimulationTally:
    """Streaming aggregate of receiver outcomes.

    Fed either one :class:`ReceiverRecord` at a time (:meth:`add_record`,
    used by the scalar reference walk) or a whole vectorized batch at once
    (:meth:`add_batch`).  Holding only counters, it is the piece that keeps
    population-scale simulations O(batch) in memory.
    """

    n: int = 0
    protected: int = 0
    outcome_counts_by_code: List[int] = dataclasses.field(
        default_factory=lambda: [0] * len(OUTCOME_ORDER)
    )
    stage_failure_by_index: List[int] = dataclasses.field(
        default_factory=lambda: [0] * len(STAGE_ORDER)
    )
    intention_failures: int = 0
    capability_failures: int = 0
    spoofed: int = 0
    attention_evaluated: int = 0
    attention_succeeded: int = 0

    def add_record(self, record: ReceiverRecord) -> None:
        """Fold one per-receiver record into the tally."""
        self.n += 1
        if record.protected:
            self.protected += 1
        self.outcome_counts_by_code[outcome_code(record.outcome)] += 1
        if record.failed_stage is not None:
            self.stage_failure_by_index[record.failed_stage.index] += 1
        if record.intention_failed:
            self.intention_failures += 1
        if record.capability_failed:
            self.capability_failures += 1
        if record.spoofed:
            self.spoofed += 1
        attention = record.trace.outcome_for(Stage.ATTENTION_SWITCH)
        if attention is not None:
            self.attention_evaluated += 1
            if attention.succeeded:
                self.attention_succeeded += 1

    def add_batch(self, outcomes) -> None:
        """Fold a :class:`repro.simulation.batch.BatchOutcomes` into the tally."""
        count = outcomes.count
        self.n += count
        self.protected += int(np.count_nonzero(outcomes.protected))
        outcome_bins = np.bincount(outcomes.outcome_codes, minlength=len(OUTCOME_ORDER))
        for code, increment in enumerate(outcome_bins):
            self.outcome_counts_by_code[code] += int(increment)
        failed = outcomes.failed_stage_index[outcomes.failed_stage_index >= 0]
        stage_bins = np.bincount(failed, minlength=len(STAGE_ORDER))
        for index, increment in enumerate(stage_bins):
            self.stage_failure_by_index[index] += int(increment)
        self.intention_failures += int(np.count_nonzero(outcomes.intention_failed))
        self.capability_failures += int(np.count_nonzero(outcomes.capability_failed))
        self.spoofed += int(np.count_nonzero(outcomes.spoofed))
        self.attention_evaluated += int(np.count_nonzero(outcomes.attention_evaluated))
        self.attention_succeeded += int(np.count_nonzero(outcomes.attention_succeeded))

    def merge(self, other: "SimulationTally") -> None:
        """Fold another tally into this one."""
        self.n += other.n
        self.protected += other.protected
        for code, value in enumerate(other.outcome_counts_by_code):
            self.outcome_counts_by_code[code] += value
        for index, value in enumerate(other.stage_failure_by_index):
            self.stage_failure_by_index[index] += value
        self.intention_failures += other.intention_failures
        self.capability_failures += other.capability_failures
        self.spoofed += other.spoofed
        self.attention_evaluated += other.attention_evaluated
        self.attention_succeeded += other.attention_succeeded

    # -- views -----------------------------------------------------------------

    def outcome_counts(self) -> Dict[BehaviorOutcome, int]:
        return {
            outcome: self.outcome_counts_by_code[code]
            for code, outcome in enumerate(OUTCOME_ORDER)
        }

    def stage_failure_counts(self) -> Dict[Stage, int]:
        return {
            STAGE_ORDER[index]: count
            for index, count in enumerate(self.stage_failure_by_index)
            if count > 0
        }

    # -- rates -----------------------------------------------------------------
    #
    # The same headline rates SimulationResult exposes, computed directly on
    # the tally so per-round tallies of a multi-round run can be compared
    # without wrapping each in a result object.

    def _fraction(self, count: int) -> float:
        if self.n == 0:
            return 0.0
        return count / self.n

    def protection_rate(self) -> float:
        """Fraction of tallied encounters where the hazard was avoided."""
        return self._fraction(self.protected)

    def heed_rate(self) -> float:
        """Fraction of tallied encounters completing the desired action."""
        return self._fraction(self.outcome_counts_by_code[outcome_code(BehaviorOutcome.SUCCESS)])

    def notice_rate(self) -> float:
        """Fraction of evaluated attention-switch stages that succeeded."""
        if self.attention_evaluated == 0:
            return 0.0
        return self.attention_succeeded / self.attention_evaluated

    def intention_failure_rate(self) -> float:
        return self._fraction(self.intention_failures)

    def capability_failure_rate(self) -> float:
        return self._fraction(self.capability_failures)

    def summary(self) -> Dict[str, float]:
        """Headline rates as a flat dictionary (one row of a round series)."""
        return {
            "n": float(self.n),
            "protection_rate": self.protection_rate(),
            "heed_rate": self.heed_rate(),
            "notice_rate": self.notice_rate(),
            "intention_failure_rate": self.intention_failure_rate(),
            "capability_failure_rate": self.capability_failure_rate(),
        }


@dataclasses.dataclass
class RoundTally(SimulationTally):
    """Streaming tally of one hazard-encounter round of a multi-round run.

    The multi-round engine folds every chunk's round-``round_index``
    outcomes into one of these (alongside the aggregate
    :class:`SimulationTally` over all rounds), so per-round decay curves —
    the habituation signature Section 2.3.1 predicts — are available
    without keeping per-receiver records.
    """

    round_index: int = 0

    def summary(self) -> Dict[str, float]:
        row = {"round": float(self.round_index)}
        row.update(super().summary())
        return row


@dataclasses.dataclass
class FunnelTally:
    """Streaming per-stage funnel aggregate derived from traversal traces.

    Folds the column sums of :class:`~repro.core.stages.StageTraceBatch`
    arrays chunk by chunk — ``entered[k]`` / ``passed[k]`` encounters per
    funnel checkpoint (each applicable pre-behavior stage in pipeline
    order, then the intention gate, the capability gate, and the behavior
    stage) — and discards the arrays, so per-stage funnel analytics stay
    O(batch) in memory for population-scale runs.

    All rates are per tallied *encounter* (receiver-round): ``n`` counts
    every encounter folded in, spoofed ones included, matching the
    denominators of :class:`SimulationTally`.
    """

    labels: Tuple[str, ...] = ()
    entered: List[int] = dataclasses.field(default_factory=list)
    passed: List[int] = dataclasses.field(default_factory=list)
    n: int = 0
    spoofed: int = 0

    def add_trace(self, trace: StageTraceBatch) -> None:
        """Fold one batch's trace arrays into the tally."""
        self.add_counts(trace.counts())

    def add_counts(self, counts: FunnelCounts) -> None:
        """Fold one batch's counts-only funnel reduction into the tally.

        The engine's hot path: the traversal kernel computes the column
        totals in place (``trace="counts"``), so no per-receiver
        checkpoint matrices exist to reduce here.  Folding a
        :class:`~repro.core.stages.StageTraceBatch` through
        :meth:`add_trace` produces identical integers.
        """
        if not self.labels:
            self.labels = tuple(counts.labels)
            self.entered = [0] * len(self.labels)
            self.passed = [0] * len(self.labels)
        elif self.labels != tuple(counts.labels):
            raise SimulationError(
                f"trace checkpoints {counts.labels} do not match the tally's "
                f"{self.labels}; funnels aggregate one pipeline shape"
            )
        self.n += counts.n
        self.spoofed += counts.spoofed
        for column in range(len(self.labels)):
            self.entered[column] += counts.entered[column]
            self.passed[column] += counts.passed[column]

    def merge(self, other: "FunnelTally") -> None:
        """Fold another funnel tally into this one."""
        if other.n == 0:
            return
        if not self.labels:
            self.labels = other.labels
            self.entered = [0] * len(self.labels)
            self.passed = [0] * len(self.labels)
        elif self.labels != other.labels:
            raise SimulationError("cannot merge funnels with different checkpoints")
        self.n += other.n
        self.spoofed += other.spoofed
        for column in range(len(self.labels)):
            self.entered[column] += other.entered[column]
            self.passed[column] += other.passed[column]

    # -- views -------------------------------------------------------------------

    def _column(self, label: str) -> int:
        if label not in self.labels:
            raise SimulationError(
                f"unknown checkpoint {label!r}; known: {list(self.labels)}"
            )
        return self.labels.index(label)

    def entry_rate(self, label: str) -> float:
        """Fraction of tallied encounters that reached one checkpoint."""
        if self.n == 0:
            return 0.0
        return self.entered[self._column(label)] / self.n

    def survival_rate(self, label: str) -> float:
        """Fraction of tallied encounters that cleared one checkpoint."""
        if self.n == 0:
            return 0.0
        return self.passed[self._column(label)] / self.n

    def conditional_failure_rate(self, label: str) -> float:
        """P(fail at checkpoint | reached it) — the paper's per-stage lens."""
        column = self._column(label)
        entered = self.entered[column]
        if entered == 0:
            return 0.0
        return (entered - self.passed[column]) / entered

    def survival(self) -> List[Dict[str, float]]:
        """One row per checkpoint: counts plus the three funnel rates."""
        rows: List[Dict[str, float]] = []
        for label in self.labels:
            rows.append(
                {
                    "checkpoint": label,  # type: ignore[dict-item]
                    "entered": float(self.entered[self._column(label)]),
                    "passed": float(self.passed[self._column(label)]),
                    "entry_rate": self.entry_rate(label),
                    "survival_rate": self.survival_rate(label),
                    "conditional_failure_rate": self.conditional_failure_rate(label),
                }
            )
        return rows

    def summary(self) -> Dict[str, float]:
        """Flat ``funnel:<checkpoint>:<rate>`` metrics (for result rows)."""
        metrics: Dict[str, float] = {}
        for label in self.labels:
            metrics[f"funnel:{label}:survival_rate"] = self.survival_rate(label)
            metrics[f"funnel:{label}:conditional_failure"] = (
                self.conditional_failure_rate(label)
            )
        return metrics

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (checkpoint counts plus headline totals)."""
        return {
            "labels": list(self.labels),
            "entered": list(self.entered),
            "passed": list(self.passed),
            "n": self.n,
            "spoofed": self.spoofed,
        }


@dataclasses.dataclass
class SimulationResult:
    """Aggregated result of simulating one task over a population.

    The engine always populates ``tally``; ``records`` carries the full
    per-receiver traces only when the run is small enough (see
    ``SimulationConfig.record_limit``) or the scalar reference mode is
    used.  Results built by hand from records alone (as some tests do)
    derive their tally lazily.

    ``seed``, ``mode``, and ``batch_size`` together make the run exactly
    reproducible (both modes consume pre-drawn randomness chunked by
    ``batch_size``, so all three matter); the engine records them and the
    serialized form (:func:`repro.io.simulation_result_to_dict`) carries
    them as provenance.  ``mode``/``batch_size`` stay ``None`` on
    hand-built results.

    Multi-round runs (``rounds > 1``) advance the same receivers through
    repeated hazard encounters: ``tally`` then aggregates *all*
    receiver-round encounters, ``round_tallies`` holds the per-round
    :class:`RoundTally` series, and ``recovery_rate`` records the
    habituation recovery applied between rounds.

    **Denominator semantics** (pinned by ``tests/simulation/test_metrics``):
    every ``*_rate`` accessor and :meth:`stage_failure_fractions` divides
    by the *encounter* count ``tally.n`` (= ``receiver_rounds`` =
    ``n_receivers * rounds``), never by unique receivers — a receiver who
    fails at the attention stage in three of five rounds contributes three
    encounters to that stage's fraction.  ``n_receivers`` always reports
    unique receivers; :meth:`summary` carries both denominators
    (``n_receivers`` and ``receiver_rounds``) so consumers never have to
    reconstruct one from the other.

    Runs with tracing enabled (the engine default) additionally carry the
    per-stage funnel: ``funnel`` aggregates every encounter's checkpoint
    outcomes and ``round_funnels`` holds one :class:`FunnelTally` per
    round.  ``dismiss_weight`` / ``heed_weight`` record the
    outcome-coupled habituation weights the run used (both 1.0 — the
    delivery-only accrual rule — unless overridden).

    **Perf provenance** (engine-populated; defaults on hand-built
    results): ``rng_mode`` records which decision-stream source drew the
    run's randomness (``"matrix"`` / ``"counter"``; it is part of the
    reproducibility tuple — the two sources draw different streams),
    ``chunk_workers`` how many processes the chunks fanned across inside
    the call (the *merged result* is bit-identical for any worker count,
    so it is telemetry, not identity), ``chunks`` how many chunks the run
    processed, and ``elapsed_seconds`` the wall-clock the call took — so
    every sweep doubles as throughput telemetry.
    """

    task_name: str
    population_name: str
    records: List[ReceiverRecord] = dataclasses.field(default_factory=list)
    seed: int = 0
    calibration_label: str = "neutral"
    tally: Optional[SimulationTally] = None
    mode: Optional[str] = None
    batch_size: Optional[int] = None
    rounds: int = 1
    recovery_rate: float = 0.0
    round_tallies: List[RoundTally] = dataclasses.field(default_factory=list)
    funnel: Optional[FunnelTally] = None
    round_funnels: List[FunnelTally] = dataclasses.field(default_factory=list)
    dismiss_weight: float = 1.0
    heed_weight: float = 1.0
    rng_mode: Optional[str] = None
    chunk_workers: int = 1
    chunks: int = 0
    elapsed_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.task_name:
            raise SimulationError("task_name must be non-empty")
        if self.rounds < 1:
            raise SimulationError("rounds must be >= 1")
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")
        if self.dismiss_weight < 0.0 or self.heed_weight < 0.0:
            raise SimulationError("habituation weights must be non-negative")
        if self.chunk_workers < 1:
            raise SimulationError("chunk_workers must be >= 1")

    def _counts(self) -> SimulationTally:
        """The effective tally (explicit, or derived from the records)."""
        if self.tally is not None:
            return self.tally
        tally = SimulationTally()
        for record in self.records:
            tally.add_record(record)
        return tally

    # -- core rates ------------------------------------------------------------

    @property
    def n_receivers(self) -> int:
        """Unique receivers simulated (encounters divided by rounds)."""
        total = self.tally.n if self.tally is not None else len(self.records)
        if self.rounds > 1:
            return total // self.rounds
        return total

    @property
    def receiver_rounds(self) -> int:
        """Total hazard encounters simulated (``n_receivers * rounds``)."""
        if self.tally is not None:
            return self.tally.n
        return len(self.records)

    def throughput(self) -> Optional[float]:
        """Receiver-rounds per wall-clock second (``None`` without timing)."""
        if not self.elapsed_seconds:
            return None
        return self.receiver_rounds / self.elapsed_seconds

    def _fraction(self, count: int) -> float:
        total = self._counts().n
        if total == 0:
            return 0.0
        return count / total

    def protection_rate(self) -> float:
        """Fraction of receivers for whom the hazard was avoided."""
        return self._counts().protection_rate()

    def heed_rate(self) -> float:
        """Fraction of receivers who completed the desired action correctly."""
        return self._counts().heed_rate()

    def failure_rate(self) -> float:
        """Fraction of receivers for whom the hazard was *not* avoided."""
        return 1.0 - self.protection_rate()

    def notice_rate(self) -> float:
        """Fraction of receivers who passed the attention-switch stage."""
        return self._counts().notice_rate()

    # -- breakdowns ------------------------------------------------------------

    def outcome_counts(self) -> Dict[BehaviorOutcome, int]:
        return self._counts().outcome_counts()

    def stage_failure_counts(self) -> Dict[Stage, int]:
        """How many receivers failed first at each stage."""
        return self._counts().stage_failure_counts()

    def stage_failure_fractions(self) -> Dict[Stage, float]:
        return {
            stage: self._fraction(count)
            for stage, count in self.stage_failure_counts().items()
        }

    def intention_failure_rate(self) -> float:
        """Fraction of receivers who noticed/understood but chose not to comply."""
        return self._counts().intention_failure_rate()

    def capability_failure_rate(self) -> float:
        """Fraction of receivers who intended to comply but were not capable."""
        return self._counts().capability_failure_rate()

    def spoofed_rate(self) -> float:
        return self._fraction(self._counts().spoofed)

    def dominant_failure_stage(self) -> Optional[Stage]:
        """The stage where most first-failures occur, if any failures occurred."""
        counts = self.stage_failure_counts()
        if not counts:
            return None
        return max(counts, key=lambda stage: counts[stage])

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a flat dictionary (used by the benchmarks).

        ``n_receivers`` counts unique receivers, ``receiver_rounds`` the
        encounters every rate divides by (equal for single-shot runs).
        """
        return {
            "n_receivers": float(self.n_receivers),
            "receiver_rounds": float(self.receiver_rounds),
            "protection_rate": self.protection_rate(),
            "heed_rate": self.heed_rate(),
            "notice_rate": self.notice_rate(),
            "intention_failure_rate": self.intention_failure_rate(),
            "capability_failure_rate": self.capability_failure_rate(),
        }

    # -- funnel views ------------------------------------------------------------

    def funnel_survival(self) -> List[Dict[str, float]]:
        """Per-checkpoint funnel rows (empty when tracing was disabled)."""
        if self.funnel is None:
            return []
        return self.funnel.survival()

    def conditional_failure_rate(self, checkpoint: str) -> float:
        """P(fail at checkpoint | reached it), from the aggregate funnel."""
        if self.funnel is None:
            raise SimulationError(
                "this run kept no funnel trace (trace=False); re-run with "
                "tracing enabled for conditional per-stage metrics"
            )
        return self.funnel.conditional_failure_rate(checkpoint)

    def round_funnel_metric(self, checkpoint: str, rate: str = "survival_rate") -> List[float]:
        """One funnel rate's per-round series (e.g. attention-switch survival)."""
        getters = {
            "entry_rate": FunnelTally.entry_rate,
            "survival_rate": FunnelTally.survival_rate,
            "conditional_failure_rate": FunnelTally.conditional_failure_rate,
        }
        if rate not in getters:
            raise SimulationError(
                f"unknown funnel rate {rate!r}; known: {sorted(getters)}"
            )
        return [getters[rate](funnel, checkpoint) for funnel in self.round_funnels]

    # -- per-round views ---------------------------------------------------------

    def round_summaries(self) -> List[Dict[str, float]]:
        """One headline-rate row per hazard-encounter round, in round order."""
        return [tally.summary() for tally in self.round_tallies]

    def round_metric(self, name: str) -> List[float]:
        """One metric's per-round series (e.g. the notice-rate decay curve)."""
        return [summary[name] for summary in self.round_summaries()]

    def records_for_round(self, round_index: int) -> List[ReceiverRecord]:
        """The materialized records of one round (empty beyond record_limit)."""
        return [record for record in self.records if record.round_index == round_index]


def comparison_table(
    results: Mapping[str, SimulationResult]
) -> List[Dict[str, float]]:
    """Build comparison rows (one per scenario) from named results."""
    rows: List[Dict[str, float]] = []
    for label, result in results.items():
        row: Dict[str, float] = {"scenario": label}  # type: ignore[dict-item]
        row.update(result.summary())
        rows.append(row)
    return rows


def render_comparison_markdown(results: Mapping[str, SimulationResult]) -> str:
    """Render named results as a Markdown comparison table."""
    lines = [
        "| Scenario | N | Protection | Heed | Notice | Intention failures | Capability failures |",
        "|---|---|---|---|---|---|---|",
    ]
    for label, result in results.items():
        lines.append(
            f"| {label} | {result.n_receivers} | "
            f"{result.protection_rate():.1%} | {result.heed_rate():.1%} | "
            f"{result.notice_rate():.1%} | {result.intention_failure_rate():.1%} | "
            f"{result.capability_failure_rate():.1%} |"
        )
    return "\n".join(lines)
