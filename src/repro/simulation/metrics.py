"""Simulation results and aggregate metrics.

A :class:`SimulationResult` collects the per-receiver records produced by
the engine and exposes the aggregates the benchmarks report: protection
rate, heed rate, outcome distribution, and the per-stage failure breakdown
that mirrors the way the paper's case studies walk through the framework
components.  :func:`comparison_table` renders several results side by side
(e.g. Firefox vs. IE-active vs. IE-passive vs. no warning).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.behavior import BehaviorOutcome
from ..core.exceptions import SimulationError
from ..core.stages import Stage, StageTrace

__all__ = ["ReceiverRecord", "SimulationResult", "comparison_table", "render_comparison_markdown"]


@dataclasses.dataclass(frozen=True)
class ReceiverRecord:
    """Outcome of one simulated receiver's encounter with the task."""

    index: int
    receiver_name: str
    trace: StageTrace
    outcome: BehaviorOutcome
    protected: bool
    failed_stage: Optional[Stage] = None
    intention_failed: bool = False
    capability_failed: bool = False
    spoofed: bool = False
    note: str = ""


@dataclasses.dataclass
class SimulationResult:
    """Aggregated result of simulating one task over a population."""

    task_name: str
    population_name: str
    records: List[ReceiverRecord] = dataclasses.field(default_factory=list)
    seed: int = 0
    calibration_label: str = "neutral"

    def __post_init__(self) -> None:
        if not self.task_name:
            raise SimulationError("task_name must be non-empty")

    # -- core rates ------------------------------------------------------------

    @property
    def n_receivers(self) -> int:
        return len(self.records)

    def _fraction(self, count: int) -> float:
        if not self.records:
            return 0.0
        return count / len(self.records)

    def protection_rate(self) -> float:
        """Fraction of receivers for whom the hazard was avoided."""
        return self._fraction(sum(1 for record in self.records if record.protected))

    def heed_rate(self) -> float:
        """Fraction of receivers who completed the desired action correctly."""
        return self._fraction(
            sum(1 for record in self.records if record.outcome is BehaviorOutcome.SUCCESS)
        )

    def failure_rate(self) -> float:
        """Fraction of receivers for whom the hazard was *not* avoided."""
        return 1.0 - self.protection_rate()

    def notice_rate(self) -> float:
        """Fraction of receivers who passed the attention-switch stage."""
        noticed = 0
        evaluated = 0
        for record in self.records:
            outcome = record.trace.outcome_for(Stage.ATTENTION_SWITCH)
            if outcome is None:
                continue
            evaluated += 1
            if outcome.succeeded:
                noticed += 1
        if evaluated == 0:
            return 0.0
        return noticed / evaluated

    # -- breakdowns ------------------------------------------------------------

    def outcome_counts(self) -> Dict[BehaviorOutcome, int]:
        counts: Dict[BehaviorOutcome, int] = {outcome: 0 for outcome in BehaviorOutcome}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def stage_failure_counts(self) -> Dict[Stage, int]:
        """How many receivers failed first at each stage."""
        counts: Dict[Stage, int] = {}
        for record in self.records:
            if record.failed_stage is not None:
                counts[record.failed_stage] = counts.get(record.failed_stage, 0) + 1
        return counts

    def stage_failure_fractions(self) -> Dict[Stage, float]:
        return {
            stage: self._fraction(count)
            for stage, count in self.stage_failure_counts().items()
        }

    def intention_failure_rate(self) -> float:
        """Fraction of receivers who noticed/understood but chose not to comply."""
        return self._fraction(sum(1 for record in self.records if record.intention_failed))

    def capability_failure_rate(self) -> float:
        """Fraction of receivers who intended to comply but were not capable."""
        return self._fraction(sum(1 for record in self.records if record.capability_failed))

    def spoofed_rate(self) -> float:
        return self._fraction(sum(1 for record in self.records if record.spoofed))

    def dominant_failure_stage(self) -> Optional[Stage]:
        """The stage where most first-failures occur, if any failures occurred."""
        counts = self.stage_failure_counts()
        if not counts:
            return None
        return max(counts, key=lambda stage: counts[stage])

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a flat dictionary (used by the benchmarks)."""
        return {
            "n_receivers": float(self.n_receivers),
            "protection_rate": self.protection_rate(),
            "heed_rate": self.heed_rate(),
            "notice_rate": self.notice_rate(),
            "intention_failure_rate": self.intention_failure_rate(),
            "capability_failure_rate": self.capability_failure_rate(),
        }


def comparison_table(
    results: Mapping[str, SimulationResult]
) -> List[Dict[str, float]]:
    """Build comparison rows (one per scenario) from named results."""
    rows: List[Dict[str, float]] = []
    for label, result in results.items():
        row: Dict[str, float] = {"scenario": label}  # type: ignore[dict-item]
        row.update(result.summary())
        rows.append(row)
    return rows


def render_comparison_markdown(results: Mapping[str, SimulationResult]) -> str:
    """Render named results as a Markdown comparison table."""
    lines = [
        "| Scenario | N | Protection | Heed | Notice | Intention failures | Capability failures |",
        "|---|---|---|---|---|---|---|",
    ]
    for label, result in results.items():
        lines.append(
            f"| {label} | {result.n_receivers} | "
            f"{result.protection_rate():.1%} | {result.heed_rate():.1%} | "
            f"{result.notice_rate():.1%} | {result.intention_failure_rate():.1%} | "
            f"{result.capability_failure_rate():.1%} |"
        )
    return "\n".join(lines)
