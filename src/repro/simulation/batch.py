"""Vectorized batch evaluation of the stage pipeline.

The scalar engine walks one receiver at a time through
:meth:`repro.core.pipeline.PipelinePlan.walk`; this module advances a whole
batch of receivers at once.  The trick is that the probability model in
:mod:`repro.core.probabilities` is polymorphic: every stage function
accepts either a :class:`~repro.core.receiver.HumanReceiver` or a
:class:`BatchReceivers` view whose trait attributes are numpy arrays.  One
call per stage therefore yields the success probability of *every*
receiver in the batch, and one uniform matrix drawn up front supplies
every stochastic decision.

The draw layout is shared with the engine's scalar ``reference`` mode (see
:func:`draw_batch`), which interprets the same matrices row by row through
the scalar walk — that is what makes the batch/reference equivalence
regression test exact rather than statistical.

Column layout of the decision matrix (one row per receiver):

* columns ``0..K-1`` — one per applicable pre-behavior stage, in pipeline
  order;
* column ``K`` — the override draw consulted when a blocking
  communication's processing stages fail;
* columns ``K+1 .. K+3`` — the intention gate, capability gate, and
  behavior stage.

For a task with no communication the matrix has a single column: the
self-initiated-action draw.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import receiver as receiver_model
from ..core.behavior import BehaviorOutcome
from ..core.pipeline import PipelinePlan, failure_needs_override, failure_outcome
from ..core.stages import Stage, StageOutcome, StageTrace
from .metrics import OUTCOME_ORDER, ReceiverRecord, outcome_code
from .population import PopulationSpec, TraitSamples
from .rng import SimulationRng

__all__ = [
    "BatchReceivers",
    "DrawBatch",
    "BatchOutcomes",
    "draw_batch",
    "redraw_decisions",
    "evaluate_batch",
    "records_from_batch",
]

_HAZARD_AVOIDED = np.array([outcome.hazard_avoided for outcome in OUTCOME_ORDER])
_SUCCESS_CODE = outcome_code(BehaviorOutcome.SUCCESS)
_FAILURE_CODE = outcome_code(BehaviorOutcome.FAILURE)
_FAILED_SAFE_CODE = outcome_code(BehaviorOutcome.FAILED_SAFE)
_NO_ACTION_CODE = outcome_code(BehaviorOutcome.NO_ACTION)


# ---------------------------------------------------------------------------
# Batch receiver view
#
# These tiny namespace classes mirror the attribute tree of HumanReceiver
# (personal_variables.knowledge..., intentions.attitudes..., capabilities...)
# with arrays in place of floats, and compute the derived scores through the
# shared formula functions in repro.core.receiver — so the scalar and batch
# paths cannot drift apart.
# ---------------------------------------------------------------------------


class _KnowledgeView:
    def __init__(self, traits: Dict[str, np.ndarray], trained: np.ndarray) -> None:
        self.security_knowledge = traits["security_knowledge"]
        self.domain_knowledge = traits["domain_knowledge"]
        self.computer_proficiency = traits["computer_proficiency"]
        self.prior_exposure = traits["prior_exposure"]
        self.has_received_training = trained

    @property
    def expertise(self) -> np.ndarray:
        return receiver_model.expertise_score(
            self.security_knowledge, self.domain_knowledge, self.computer_proficiency
        )


class _PersonalVariablesView:
    def __init__(self, knowledge: _KnowledgeView) -> None:
        self.knowledge = knowledge

    @property
    def expertise(self) -> np.ndarray:
        return self.knowledge.expertise


class _AttitudesView:
    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.trust = traits["trust"]
        self.perceived_relevance = traits["perceived_relevance"]
        self.risk_perception = traits["risk_perception"]
        self.self_efficacy = traits["self_efficacy"]
        self.response_efficacy = traits["response_efficacy"]
        self.perceived_time_cost = traits["perceived_time_cost"]
        self.annoyance = traits["annoyance"]

    @property
    def belief_score(self) -> np.ndarray:
        return receiver_model.belief_score(
            self.trust,
            self.perceived_relevance,
            self.risk_perception,
            self.self_efficacy,
            self.response_efficacy,
            self.perceived_time_cost,
            self.annoyance,
        )


class _MotivationView:
    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.conflicting_goals = traits["conflicting_goals"]
        self.primary_task_pressure = traits["primary_task_pressure"]
        self.perceived_consequences = traits["perceived_consequences"]
        self.incentives = traits["incentives"]
        self.disincentives = traits["disincentives"]
        self.convenience_cost = traits["convenience_cost"]

    @property
    def motivation_score(self) -> np.ndarray:
        return receiver_model.motivation_score(
            self.conflicting_goals,
            self.primary_task_pressure,
            self.perceived_consequences,
            self.incentives,
            self.disincentives,
            self.convenience_cost,
        )


class _IntentionsView:
    def __init__(self, attitudes: _AttitudesView, motivation: _MotivationView) -> None:
        self.attitudes = attitudes
        self.motivation = motivation

    @property
    def intention_score(self) -> np.ndarray:
        return receiver_model.intention_score(
            self.attitudes.belief_score, self.motivation.motivation_score
        )


class _CapabilitiesView:
    # Sampled populations always have the required software and device
    # (PopulationSpec does not model their absence), so the flags stay
    # population-wide scalars.
    has_required_software = True
    has_required_device = True

    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.knowledge_to_act = traits["knowledge_to_act"]
        self.cognitive_skill = traits["cognitive_skill"]
        self.physical_skill = traits["physical_skill"]
        self.memory_capacity = traits["memory_capacity"]

    @property
    def capability_score(self) -> np.ndarray:
        return receiver_model.capability_score(
            self.knowledge_to_act,
            self.cognitive_skill,
            self.physical_skill,
            self.memory_capacity,
            self.has_required_software,
            self.has_required_device,
        )


class BatchReceivers:
    """A whole batch of sampled receivers behind the HumanReceiver interface."""

    def __init__(self, samples: TraitSamples) -> None:
        self.samples = samples
        self.personal_variables = _PersonalVariablesView(
            _KnowledgeView(samples.traits, samples.trained)
        )
        self.intentions = _IntentionsView(
            _AttitudesView(samples.traits), _MotivationView(samples.traits)
        )
        self.capabilities = _CapabilitiesView(samples.traits)

    @property
    def count(self) -> int:
        return self.samples.count

    @property
    def expertise(self) -> np.ndarray:
        return self.personal_variables.expertise

    @property
    def intention_score(self) -> np.ndarray:
        return self.intentions.intention_score

    @property
    def capability_score(self) -> np.ndarray:
        return self.capabilities.capability_score


# ---------------------------------------------------------------------------
# Draws
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DrawBatch:
    """All randomness for one batch, drawn up front in a fixed layout."""

    samples: TraitSamples
    spoof_uniforms: Optional[np.ndarray]
    noise: np.ndarray
    decisions: np.ndarray

    @property
    def count(self) -> int:
        return self.samples.count


def decision_columns(plan: PipelinePlan) -> Dict[str, int]:
    """Column index of every decision in the draw matrix (see module doc)."""
    if not plan.has_communication:
        return {"self_initiated": 0}
    columns = {f"stage:{stage.value}": index for index, stage in enumerate(plan.stages)}
    offset = len(plan.stages)
    columns["override"] = offset
    columns["intention"] = offset + 1
    columns["capability"] = offset + 2
    columns["behavior"] = offset + 3
    return columns


def draw_batch(
    plan: PipelinePlan,
    population: PopulationSpec,
    count: int,
    rng: SimulationRng,
) -> DrawBatch:
    """Draw the traits and decision uniforms for ``count`` receivers."""
    samples = population.sample_traits(count, rng)
    return redraw_decisions(plan, samples, rng)


def redraw_decisions(
    plan: PipelinePlan,
    samples: TraitSamples,
    rng: SimulationRng,
) -> DrawBatch:
    """Fresh encounter randomness (spoof, noise, decisions) over fixed traits.

    The multi-round engine keeps one trait draw per chunk and calls this
    once per subsequent round: the *same* receivers face a new hazard
    encounter with fresh stochastic conditions.  :func:`draw_batch` is the
    round-zero case (traits drawn from the same stream immediately before),
    so a single-round run consumes exactly the historical draw layout.
    """
    count = samples.count
    if not plan.has_communication:
        return DrawBatch(
            samples=samples,
            spoof_uniforms=None,
            noise=np.zeros(count),
            decisions=rng.uniform_matrix(count, 1),
        )
    spoof_uniforms = rng.uniform_array(count)
    noise = rng.truncated_normal_array(0.0, plan.user_noise_std, -0.2, 0.2, count)
    decisions = rng.uniform_matrix(count, len(plan.stages) + 4)
    return DrawBatch(
        samples=samples, spoof_uniforms=spoof_uniforms, noise=noise, decisions=decisions
    )


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BatchOutcomes:
    """Realized outcomes of one batch as a struct of arrays.

    ``failed_stage_index`` holds the :data:`~repro.core.stages.STAGE_ORDER`
    index of the first failed stage, or ``-1``; ``stage_probabilities`` and
    ``stage_success`` (per applicable pre-behavior stage, in plan order) are
    retained so per-receiver records can be materialized without
    recomputing the model.
    """

    plan: PipelinePlan
    outcome_codes: np.ndarray
    protected: np.ndarray
    spoofed: np.ndarray
    intention_failed: np.ndarray
    capability_failed: np.ndarray
    failed_stage_index: np.ndarray
    attention_evaluated: np.ndarray
    attention_succeeded: np.ndarray
    stage_probabilities: Optional[np.ndarray] = None
    stage_success: Optional[np.ndarray] = None
    behavior_probability: Optional[np.ndarray] = None

    @property
    def count(self) -> int:
        return int(self.outcome_codes.shape[0])


def evaluate_batch(
    plan: PipelinePlan,
    draws: DrawBatch,
    exposures: Optional[np.ndarray] = None,
) -> BatchOutcomes:
    """Advance every receiver in the batch through the pipeline at once.

    ``exposures`` is the optional per-receiver habituation exposure array
    the multi-round engine carries between rounds; it overrides the
    communication's baked-in count in the attention-switch stage (``None``
    keeps the static single-shot reading).
    """
    view = BatchReceivers(draws.samples)
    count = draws.count

    if not plan.has_communication:
        acted = draws.decisions[:, 0] < plan.self_initiated_probability(view)
        outcome_codes = np.where(acted, _SUCCESS_CODE, _NO_ACTION_CODE)
        false_array = np.zeros(count, dtype=bool)
        return BatchOutcomes(
            plan=plan,
            outcome_codes=outcome_codes,
            protected=acted.copy(),
            spoofed=false_array,
            intention_failed=false_array,
            capability_failed=false_array,
            failed_stage_index=np.full(count, -1),
            attention_evaluated=false_array,
            attention_succeeded=false_array,
        )

    stage_count = len(plan.stages)
    noise = draws.noise

    # One model call per stage covers the whole batch.
    stage_probabilities = np.empty((count, stage_count))
    for column, stage in enumerate(plan.stages):
        stage_probabilities[:, column] = plan.stage_probability(
            stage, view, noise, exposures=exposures
        )
    stage_success = draws.decisions[:, :stage_count] < stage_probabilities

    spoofed = draws.spoof_uniforms < plan.spoof_probability
    live = ~spoofed

    failed = ~stage_success
    any_stage_failed = failed.any(axis=1)
    # Slot K is a sentinel for "no stage failed".
    first_failed_slot = np.where(any_stage_failed, failed.argmax(axis=1), stage_count)

    override_draw = draws.decisions[:, stage_count] < plan.override_given_misunderstanding
    intention_ok = draws.decisions[:, stage_count + 1] < plan.intention_probability(view, noise)
    capability_ok = draws.decisions[:, stage_count + 2] < plan.capability_probability(view)
    behavior_probability = plan.behavior_probability(view)
    behavior_ok = draws.decisions[:, stage_count + 3] < behavior_probability

    # Per-slot outcome lookup tables (the sentinel slot is never read for a
    # failing receiver; it just keeps the fancy-indexing in bounds).
    base_codes = np.array(
        [
            outcome_code(failure_outcome(stage, plan.default_safe, overrode=False))
            for stage in plan.stages
        ]
        + [_SUCCESS_CODE]
    )
    needs_override = np.array(
        [failure_needs_override(stage, plan.default_safe) for stage in plan.stages] + [False]
    )
    slot_stage_index = np.array([stage.index for stage in plan.stages] + [-1])

    stage_fail = live & any_stage_failed
    fail_codes = np.where(
        needs_override[first_failed_slot] & override_draw,
        _FAILURE_CODE,
        base_codes[first_failed_slot],
    )

    passed_stages = live & ~any_stage_failed
    intention_failed = passed_stages & ~intention_ok
    capability_failed = passed_stages & intention_ok & ~capability_ok
    behavior_failed = passed_stages & intention_ok & capability_ok & ~behavior_ok
    succeeded = passed_stages & intention_ok & capability_ok & behavior_ok

    gate_fail_code = _FAILED_SAFE_CODE if plan.default_safe else _FAILURE_CODE

    outcome_codes = np.empty(count, dtype=np.int64)
    outcome_codes[spoofed] = _FAILURE_CODE
    outcome_codes[stage_fail] = fail_codes[stage_fail]
    outcome_codes[intention_failed] = _FAILURE_CODE
    outcome_codes[capability_failed] = gate_fail_code
    outcome_codes[behavior_failed] = gate_fail_code
    outcome_codes[succeeded] = _SUCCESS_CODE

    failed_stage_index = np.full(count, -1)
    failed_stage_index[stage_fail] = slot_stage_index[first_failed_slot][stage_fail]
    failed_stage_index[behavior_failed] = Stage.BEHAVIOR.index

    attention_column = plan.stages.index(Stage.ATTENTION_SWITCH)
    attention_evaluated = live.copy()
    attention_succeeded = live & stage_success[:, attention_column]

    return BatchOutcomes(
        plan=plan,
        outcome_codes=outcome_codes,
        protected=_HAZARD_AVOIDED[outcome_codes],
        spoofed=spoofed,
        intention_failed=intention_failed,
        capability_failed=capability_failed,
        failed_stage_index=failed_stage_index,
        attention_evaluated=attention_evaluated,
        attention_succeeded=attention_succeeded,
        stage_probabilities=stage_probabilities,
        stage_success=stage_success,
        behavior_probability=behavior_probability,
    )


# ---------------------------------------------------------------------------
# Record materialization
# ---------------------------------------------------------------------------


def records_from_batch(
    outcomes: BatchOutcomes,
    draws: DrawBatch,
    start_index: int = 0,
    round_index: int = 0,
) -> List[ReceiverRecord]:
    """Materialize per-receiver records (with stage traces) from a batch.

    The records carry the same traces, notes and flags the scalar walk
    produces, so small batch runs remain fully inspectable.
    ``round_index`` tags each record with the hazard-encounter round it
    belongs to (0 for single-shot runs).
    """
    plan = outcomes.plan
    population_name = draws.samples.population_name
    records: List[ReceiverRecord] = []

    for row in range(outcomes.count):
        index = start_index + row
        name = f"{population_name}-{index}"
        outcome = OUTCOME_ORDER[int(outcomes.outcome_codes[row])]
        trace = StageTrace()
        failed_stage: Optional[Stage] = None
        note = ""

        if not plan.has_communication:
            note = (
                "self-initiated protective action (no communication)"
                if outcome is BehaviorOutcome.SUCCESS
                else "no communication; no protective action taken"
            )
        elif outcomes.spoofed[row]:
            note = "indicator spoofed by attacker"
        else:
            for stage in plan.skipped:
                trace.skip(stage)
            stage_index = int(outcomes.failed_stage_index[row])
            for column, stage in enumerate(plan.stages):
                succeeded = bool(outcomes.stage_success[row, column])
                trace.record(
                    StageOutcome(
                        stage=stage,
                        succeeded=succeeded,
                        probability=float(outcomes.stage_probabilities[row, column]),
                    )
                )
                if not succeeded:
                    failed_stage = stage
                    note = f"failed at {stage.value}"
                    break
            else:
                if outcomes.intention_failed[row]:
                    note = "decided not to comply"
                elif outcomes.capability_failed[row]:
                    note = "not capable of completing the action"
                else:
                    behavior_ok = outcome is BehaviorOutcome.SUCCESS
                    trace.record(
                        StageOutcome(
                            stage=Stage.BEHAVIOR,
                            succeeded=behavior_ok,
                            probability=float(outcomes.behavior_probability[row]),
                        )
                    )
                    if not behavior_ok:
                        failed_stage = Stage.BEHAVIOR
                        note = "behavior-stage error (slip, lapse, or execution gulf)"

        records.append(
            ReceiverRecord(
                index=index,
                receiver_name=name,
                trace=trace,
                outcome=outcome,
                protected=bool(outcomes.protected[row]),
                failed_stage=failed_stage,
                intention_failed=bool(outcomes.intention_failed[row]),
                capability_failed=bool(outcomes.capability_failed[row]),
                spoofed=bool(outcomes.spoofed[row]),
                note=note,
                round_index=round_index,
            )
        )
    return records
