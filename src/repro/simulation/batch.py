"""Batch draws and the simulation-side adapters of the traversal kernel.

The stage traversal itself lives in :mod:`repro.core.pipeline`: one kernel
(:meth:`~repro.core.pipeline.PipelinePlan.walk_batch`) advances receivers
at any width.  This module owns the *simulation-side* pieces the kernel is
fed with:

* :class:`BatchReceivers` — a whole batch of sampled receivers behind the
  :class:`~repro.core.receiver.HumanReceiver` attribute tree, with numpy
  arrays in place of floats (the probability model in
  :mod:`repro.core.probabilities` is polymorphic over both),
* :class:`DrawBatch` / :func:`draw_batch` / :func:`redraw_decisions` — all
  randomness for one batch, drawn up front in the fixed layout of
  :func:`repro.core.pipeline.decision_columns`, and
* :func:`evaluate_batch` / :func:`records_from_batch` — thin adapters that
  run the kernel over a draw batch and materialize per-receiver records.

The draw layout is shared with the engine's ``reference`` mode, which runs
the *same* kernel one row at a time (width 1) over row slices of the same
matrices (:meth:`DrawBatch.row`) — that is what makes the batch/reference
equivalence regression test exact rather than statistical.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import receiver as receiver_model
from ..core.exceptions import SimulationError
from ..core.pipeline import BatchWalk, PipelinePlan, decision_columns, walk_from_row
from .metrics import ReceiverRecord
from .population import PopulationSpec, TraitSamples
from .rng import (
    DECISION_STREAM_BASE,
    NOISE_STREAMS,
    SPOOF_STREAM,
    CounterDraws,
    SimulationRng,
)

__all__ = [
    "BatchReceivers",
    "DrawBatch",
    "BatchOutcomes",
    "decision_columns",
    "draw_batch",
    "redraw_decisions",
    "draw_batch_counter",
    "redraw_decisions_counter",
    "evaluate_batch",
    "records_from_batch",
    "LazyRecords",
]

#: Backwards-compatible alias: the realized traversal of one batch is now
#: the kernel's own result type.
BatchOutcomes = BatchWalk


# ---------------------------------------------------------------------------
# Batch receiver view
#
# These tiny namespace classes mirror the attribute tree of HumanReceiver
# (personal_variables.knowledge..., intentions.attitudes..., capabilities...)
# with arrays in place of floats, and compute the derived scores through the
# shared formula functions in repro.core.receiver — so the scalar and batch
# paths cannot drift apart.
# ---------------------------------------------------------------------------


class _KnowledgeView:
    def __init__(self, traits: Dict[str, np.ndarray], trained: np.ndarray) -> None:
        self.security_knowledge = traits["security_knowledge"]
        self.domain_knowledge = traits["domain_knowledge"]
        self.computer_proficiency = traits["computer_proficiency"]
        self.prior_exposure = traits["prior_exposure"]
        self.has_received_training = trained

    @property
    def expertise(self) -> np.ndarray:
        return receiver_model.expertise_score(
            self.security_knowledge, self.domain_knowledge, self.computer_proficiency
        )


class _PersonalVariablesView:
    def __init__(self, knowledge: _KnowledgeView) -> None:
        self.knowledge = knowledge

    @property
    def expertise(self) -> np.ndarray:
        return self.knowledge.expertise


class _AttitudesView:
    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.trust = traits["trust"]
        self.perceived_relevance = traits["perceived_relevance"]
        self.risk_perception = traits["risk_perception"]
        self.self_efficacy = traits["self_efficacy"]
        self.response_efficacy = traits["response_efficacy"]
        self.perceived_time_cost = traits["perceived_time_cost"]
        self.annoyance = traits["annoyance"]

    @property
    def belief_score(self) -> np.ndarray:
        return receiver_model.belief_score(
            self.trust,
            self.perceived_relevance,
            self.risk_perception,
            self.self_efficacy,
            self.response_efficacy,
            self.perceived_time_cost,
            self.annoyance,
        )


class _MotivationView:
    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.conflicting_goals = traits["conflicting_goals"]
        self.primary_task_pressure = traits["primary_task_pressure"]
        self.perceived_consequences = traits["perceived_consequences"]
        self.incentives = traits["incentives"]
        self.disincentives = traits["disincentives"]
        self.convenience_cost = traits["convenience_cost"]

    @property
    def motivation_score(self) -> np.ndarray:
        return receiver_model.motivation_score(
            self.conflicting_goals,
            self.primary_task_pressure,
            self.perceived_consequences,
            self.incentives,
            self.disincentives,
            self.convenience_cost,
        )


class _IntentionsView:
    def __init__(self, attitudes: _AttitudesView, motivation: _MotivationView) -> None:
        self.attitudes = attitudes
        self.motivation = motivation

    @property
    def intention_score(self) -> np.ndarray:
        return receiver_model.intention_score(
            self.attitudes.belief_score, self.motivation.motivation_score
        )


class _CapabilitiesView:
    # Sampled populations always have the required software and device
    # (PopulationSpec does not model their absence), so the flags stay
    # population-wide scalars.
    has_required_software = True
    has_required_device = True

    def __init__(self, traits: Dict[str, np.ndarray]) -> None:
        self.knowledge_to_act = traits["knowledge_to_act"]
        self.cognitive_skill = traits["cognitive_skill"]
        self.physical_skill = traits["physical_skill"]
        self.memory_capacity = traits["memory_capacity"]

    @property
    def capability_score(self) -> np.ndarray:
        return receiver_model.capability_score(
            self.knowledge_to_act,
            self.cognitive_skill,
            self.physical_skill,
            self.memory_capacity,
            self.has_required_software,
            self.has_required_device,
        )


class BatchReceivers:
    """A whole batch of sampled receivers behind the HumanReceiver interface."""

    def __init__(self, samples: TraitSamples) -> None:
        self.samples = samples
        self.personal_variables = _PersonalVariablesView(
            _KnowledgeView(samples.traits, samples.trained)
        )
        self.intentions = _IntentionsView(
            _AttitudesView(samples.traits), _MotivationView(samples.traits)
        )
        self.capabilities = _CapabilitiesView(samples.traits)

    @property
    def count(self) -> int:
        return self.samples.count

    @property
    def expertise(self) -> np.ndarray:
        return self.personal_variables.expertise

    @property
    def intention_score(self) -> np.ndarray:
        return self.intentions.intention_score

    @property
    def capability_score(self) -> np.ndarray:
        return self.capabilities.capability_score


# ---------------------------------------------------------------------------
# Draws
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DrawBatch:
    """All randomness for one batch, drawn up front in a fixed layout."""

    samples: TraitSamples
    spoof_uniforms: Optional[np.ndarray]
    noise: np.ndarray
    decisions: np.ndarray

    @property
    def count(self) -> int:
        return self.samples.count

    def row(self, index: int) -> "DrawBatch":
        """A width-1 view of one receiver's draws (same layout, same floats).

        The engine's reference mode interprets a chunk row by row through
        the shared traversal kernel; slicing (rather than copying scalars
        out) keeps every value bit-identical to what the full-width batch
        evaluation reads.
        """
        samples = self.samples
        sliced = TraitSamples(
            population_name=samples.population_name,
            traits={name: values[index : index + 1] for name, values in samples.traits.items()},
            ages=samples.ages[index : index + 1],
            trained=samples.trained[index : index + 1],
        )
        return DrawBatch(
            samples=sliced,
            spoof_uniforms=(
                None
                if self.spoof_uniforms is None
                else self.spoof_uniforms[index : index + 1]
            ),
            noise=self.noise[index : index + 1],
            decisions=self.decisions[index : index + 1, :],
        )


def draw_batch(
    plan: PipelinePlan,
    population: PopulationSpec,
    count: int,
    rng: SimulationRng,
) -> DrawBatch:
    """Draw the traits and decision uniforms for ``count`` receivers."""
    samples = population.sample_traits(count, rng)
    return redraw_decisions(plan, samples, rng)


def redraw_decisions(
    plan: PipelinePlan,
    samples: TraitSamples,
    rng: SimulationRng,
) -> DrawBatch:
    """Fresh encounter randomness (spoof, noise, decisions) over fixed traits.

    The multi-round engine keeps one trait draw per chunk and calls this
    once per subsequent round: the *same* receivers face a new hazard
    encounter with fresh stochastic conditions.  :func:`draw_batch` is the
    round-zero case (traits drawn from the same stream immediately before),
    so a single-round run consumes exactly the historical draw layout.
    """
    count = samples.count
    if not plan.has_communication:
        return DrawBatch(
            samples=samples,
            spoof_uniforms=None,
            noise=np.zeros(count),
            decisions=rng.uniform_matrix(count, 1),
        )
    spoof_uniforms = rng.uniform_array(count)
    noise = rng.truncated_normal_array(0.0, plan.user_noise_std, -0.2, 0.2, count)
    decisions = rng.uniform_matrix(count, len(plan.stages) + 4)
    return DrawBatch(
        samples=samples, spoof_uniforms=spoof_uniforms, noise=noise, decisions=decisions
    )


def draw_batch_counter(
    plan: PipelinePlan,
    population: PopulationSpec,
    count: int,
    draws: CounterDraws,
    reuse_buffers: bool = False,
) -> DrawBatch:
    """Counter-mode :func:`draw_batch`: traits and decisions from keyed streams.

    Produces the same :class:`DrawBatch` structure the matrix path does
    (so batch evaluation, reference-mode row slicing, and record
    materialization are shared verbatim), but every array is the prefix of
    a dedicated counter stream — any single value is recomputable in O(1)
    through the same :class:`~repro.simulation.rng.CounterDraws` cell.
    Traits always come from the chunk's round-0 cell (they are drawn once
    per chunk, like the matrix path's chunk stream).

    ``reuse_buffers`` recycles the trait-block and decision-matrix
    backing memory of the previous same-shape call — several megabytes
    per chunk that otherwise get freed and page-faulted back in on every
    chunk.  Only the engine may pass it, and only when the previous
    chunk's draws are provably dead (records not kept); values are
    identical either way.
    """
    samples = population.sample_traits_counter(
        count,
        draws if draws.round_index == 0 else draws.for_round(0),
        reuse_block=reuse_buffers,
    )
    return redraw_decisions_counter(plan, samples, draws, reuse_buffers=reuse_buffers)


#: Reused F-order decision matrices keyed by shape — the
#: ``reuse_buffers`` counterpart of the rng module's trait-block cache.
_DECISIONS: Dict[Tuple[int, int], np.ndarray] = {}
_DECISIONS_LIMIT = 8


def _decisions_matrix(count: int, columns: int, reuse: bool) -> np.ndarray:
    if not reuse:
        return np.empty((count, columns), order="F")
    key = (count, columns)
    matrix = _DECISIONS.get(key)
    if matrix is None:
        if len(_DECISIONS) >= _DECISIONS_LIMIT:
            _DECISIONS.clear()
        matrix = np.empty((count, columns), order="F")
        _DECISIONS[key] = matrix
    return matrix


def redraw_decisions_counter(
    plan: PipelinePlan,
    samples: TraitSamples,
    draws: CounterDraws,
    reuse_buffers: bool = False,
) -> DrawBatch:
    """Counter-mode :func:`redraw_decisions` for one (seed, chunk, round) cell.

    Spoof uniforms, perception noise, and each decision column read their
    own streams, so a round's encounter randomness never depends on
    earlier rounds or on sibling chunks.  The decision matrix is laid out
    column-major: each column is one stream's contiguous prefix, filled in
    place, and the traversal kernel's per-stage column reads
    (``decisions[:, column]``) stay contiguous too.
    """
    count = samples.count
    if not plan.has_communication:
        decisions = _decisions_matrix(count, 1, reuse_buffers)
        draws.fill_uniforms(DECISION_STREAM_BASE, decisions[:, 0])
        return DrawBatch(
            samples=samples,
            spoof_uniforms=None,
            noise=np.zeros(count),
            decisions=decisions,
        )
    spoof_uniforms = draws.uniforms(SPOOF_STREAM, count)
    noise = draws.clipped_normals(
        NOISE_STREAMS, 0.0, plan.user_noise_std, -0.2, 0.2, count,
        reuse_block=reuse_buffers,
    )
    columns = len(plan.stages) + 4
    decisions = _decisions_matrix(count, columns, reuse_buffers)
    for column in range(columns):
        draws.fill_uniforms(DECISION_STREAM_BASE + column, decisions[:, column])
    return DrawBatch(
        samples=samples, spoof_uniforms=spoof_uniforms, noise=noise, decisions=decisions
    )


# ---------------------------------------------------------------------------
# Kernel adapters
# ---------------------------------------------------------------------------


def evaluate_batch(
    plan: PipelinePlan,
    draws: DrawBatch,
    exposures: Optional[np.ndarray] = None,
    trace=False,
) -> BatchOutcomes:
    """Advance every receiver in the batch through the pipeline at once.

    A thin adapter over the shared traversal kernel
    (:meth:`~repro.core.pipeline.PipelinePlan.walk_batch`): builds the
    batch receiver view, derives the spoof mask from the pre-drawn
    uniforms, and hands both to the kernel.  ``exposures`` is the optional
    per-receiver habituation exposure array the multi-round engine carries
    between rounds (``None`` keeps the communication's static single-shot
    reading); ``trace=True`` additionally collects the per-receiver
    :class:`~repro.core.stages.StageTraceBatch` funnel arrays,
    ``trace="counts"`` only their column totals (the engine's fused
    streaming-funnel path).
    """
    view = BatchReceivers(draws.samples)
    if not plan.has_communication:
        return plan.walk_batch(view, draws.decisions, trace=trace)
    spoofed = draws.spoof_uniforms < plan.spoof_probability
    return plan.walk_batch(
        view,
        draws.decisions,
        spoofed=spoofed,
        noise=draws.noise,
        exposures=exposures,
        trace=trace,
    )


# ---------------------------------------------------------------------------
# Record materialization
# ---------------------------------------------------------------------------


def records_from_batch(
    outcomes: BatchOutcomes,
    draws: DrawBatch,
    start_index: int = 0,
    round_index: int = 0,
) -> List[ReceiverRecord]:
    """Materialize per-receiver records (with stage traces) from a batch.

    Each row goes through the shared scalar materializer
    (:func:`repro.core.pipeline.walk_from_row`), so the records carry the
    identical traces, notes and flags the width-1 kernel walk produces.
    ``round_index`` tags each record with the hazard-encounter round it
    belongs to (0 for single-shot runs).
    """
    population_name = draws.samples.population_name
    records: List[ReceiverRecord] = []
    for row in range(outcomes.count):
        index = start_index + row
        walk = walk_from_row(outcomes, row)
        records.append(
            ReceiverRecord(
                index=index,
                receiver_name=f"{population_name}-{index}",
                trace=walk.trace,
                outcome=walk.outcome,
                protected=walk.protected,
                failed_stage=walk.failed_stage,
                intention_failed=walk.intention_failed,
                capability_failed=walk.capability_failed,
                spoofed=walk.spoofed,
                note=walk.note,
                round_index=round_index,
            )
        )
    return records


class LazyRecords(list):
    """A record list materialized from batch outcomes on first access.

    Materializing :class:`~repro.simulation.metrics.ReceiverRecord`
    objects dominates small runs (scalar traces for n=1,000 cost ~8x the
    vectorized traversal itself), yet most callers only read the tallies.
    The engine therefore parks the (outcomes, draws) pairs here and pays
    for :func:`records_from_batch` only when the records are actually
    read.  Records are frozen value-equal dataclasses built by the same
    materializer, so a lazy list compares equal to its eager counterpart.

    Memory stays bounded: the engine only keeps records for runs within
    ``record_limit`` encounters, and the parked arrays are dropped once
    materialized.
    """

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[Tuple[Any, ...]] = []

    def defer(
        self,
        outcomes: BatchOutcomes,
        draws: DrawBatch,
        start_index: int,
        round_index: int,
    ) -> None:
        """Park one batch's outcome arrays for later materialization."""
        self._pending.append((outcomes, draws, start_index, round_index))

    def defer_chunk(
        self, producer: Callable[[Any], List[ReceiverRecord]], spec: Any
    ) -> None:
        """Park a record *regeneration* instead of outcome arrays.

        The engine's zero-copy parallel path uses this: a worker chunk
        returns only its tallies, and the records — recomputable from the
        chunk's (seed, chunk, round) coordinates alone — are produced
        locally by ``producer(spec)`` on first read.
        """
        self._pending.append((producer, spec))

    def materialize(self) -> None:
        """Convert every parked batch into records (idempotent)."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for entry in pending:
            if len(entry) == 2:
                producer, spec = entry
                super().extend(producer(spec))
                continue
            outcomes, draws, start_index, round_index = entry
            super().extend(
                records_from_batch(
                    outcomes, draws, start_index=start_index, round_index=round_index
                )
            )

    def absorb(self, other: "LazyRecords") -> None:
        """Chain another lazy list's parked batches onto this one.

        The engine merges chunk partials with this: parked batches carry
        their own ``start_index``/``round_index``, so concatenation in
        chunk order needs no re-indexing.  Only legal while both sides
        are still fully lazy — once either has materialized records the
        interleaving order would be lost.
        """
        if list.__len__(self) or list.__len__(other):
            raise SimulationError(
                "absorb requires both record lists to be unmaterialized"
            )
        self._pending.extend(other._pending)

    # Every read path materializes first.  list comparisons and pickling
    # read the underlying storage directly (CPython uses the concrete
    # list size/items, and pickle iterates), so the operations tests and
    # serialization lean on are each routed through materialize().

    def __len__(self) -> int:
        self.materialize()
        return super().__len__()

    def __iter__(self):
        self.materialize()
        return super().__iter__()

    def __getitem__(self, index):
        self.materialize()
        return super().__getitem__(index)

    def __contains__(self, item) -> bool:
        self.materialize()
        return super().__contains__(item)

    def __reversed__(self):
        self.materialize()
        return super().__reversed__()

    def __eq__(self, other) -> bool:
        self.materialize()
        if isinstance(other, LazyRecords):
            other.materialize()
        return super().__eq__(other)

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    __hash__ = None

    def __repr__(self) -> str:
        self.materialize()
        return super().__repr__()

    def __add__(self, other):
        self.materialize()
        return list(self) + list(other)

    def __radd__(self, other):
        self.materialize()
        return list(other) + list(self)

    def __reduce__(self):
        self.materialize()
        return (list, (), None, iter(list(self)))

    def index(self, *args):
        self.materialize()
        return super().index(*args)

    def count(self, value):
        self.materialize()
        return super().count(value)

    def copy(self):
        self.materialize()
        return list(self)

    def append(self, item):
        self.materialize()
        super().append(item)

    def extend(self, items):
        self.materialize()
        super().extend(items)

    def insert(self, index, item):
        self.materialize()
        super().insert(index, item)
