"""Population models: sampling simulated human receivers.

The paper's case studies reason about *populations* ("people with a wide
range of knowledge, abilities, and other personal characteristics, many of
whom have little or no knowledge about phishing"; "complete novice through
security expert").  The user studies it cites measured real populations; we
substitute synthetic ones.  A :class:`PopulationSpec` describes the
distribution of every receiver trait the framework consumes, and
:meth:`PopulationSpec.sample` draws a concrete
:class:`~repro.core.receiver.HumanReceiver` from it.

Preset populations:

* :func:`general_web_population` — broad consumer population used in the
  anti-phishing case study,
* :func:`organization_population` — an employee population used in the
  password-policy case study,
* :func:`expert_population` — security-savvy users, useful as a contrast
  group and for ablations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import SimulationError
from ..core.receiver import (
    AttitudesBeliefs,
    Capabilities,
    Demographics,
    EducationLevel,
    HumanReceiver,
    Intentions,
    KnowledgeExperience,
    Motivation,
    PersonalVariables,
)
from .rng import (
    AGE_STREAMS,
    TRAINED_STREAM,
    CounterDraws,
    SimulationRng,
    trait_streams,
)

__all__ = [
    "TraitDistribution",
    "TraitSamples",
    "TRAIT_NAMES",
    "PopulationSpec",
    "general_web_population",
    "organization_population",
    "expert_population",
]


@dataclasses.dataclass(frozen=True)
class TraitDistribution:
    """Truncated-normal distribution of a single 0–1 receiver trait."""

    mean: float
    std: float = 0.15
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if not self.low <= self.mean <= self.high:
            raise SimulationError(
                f"mean {self.mean} outside [{self.low}, {self.high}]"
            )
        if self.std < 0:
            raise SimulationError("std must be non-negative")

    def sample(self, rng: SimulationRng) -> float:
        return rng.truncated_normal(self.mean, self.std, self.low, self.high)

    def sample_array(self, count: int, rng: SimulationRng) -> np.ndarray:
        """Draw ``count`` samples at once."""
        return rng.truncated_normal_array(self.mean, self.std, self.low, self.high, count)


# Trait names accepted by PopulationSpec, with library-wide defaults.
_DEFAULT_TRAITS: Dict[str, TraitDistribution] = {
    "security_knowledge": TraitDistribution(0.35),
    "domain_knowledge": TraitDistribution(0.35),
    "computer_proficiency": TraitDistribution(0.55),
    "prior_exposure": TraitDistribution(0.4),
    "trust": TraitDistribution(0.6),
    "perceived_relevance": TraitDistribution(0.6),
    "risk_perception": TraitDistribution(0.45),
    "self_efficacy": TraitDistribution(0.55),
    "response_efficacy": TraitDistribution(0.55),
    "perceived_time_cost": TraitDistribution(0.3),
    "annoyance": TraitDistribution(0.25),
    "conflicting_goals": TraitDistribution(0.3),
    "primary_task_pressure": TraitDistribution(0.5),
    "perceived_consequences": TraitDistribution(0.45),
    "incentives": TraitDistribution(0.1, 0.1),
    "disincentives": TraitDistribution(0.1, 0.1),
    "convenience_cost": TraitDistribution(0.35),
    "knowledge_to_act": TraitDistribution(0.55),
    "cognitive_skill": TraitDistribution(0.6),
    "physical_skill": TraitDistribution(0.9, 0.05),
    "memory_capacity": TraitDistribution(0.5),
}


#: Canonical trait order; batch sampling draws traits in exactly this order.
TRAIT_NAMES = tuple(_DEFAULT_TRAITS)


@dataclasses.dataclass(frozen=True)
class TraitSamples:
    """A batch of sampled receivers as a struct of arrays.

    One row per receiver; ``traits`` maps every name in :data:`TRAIT_NAMES`
    to a vector of 0-1 samples.  This is the population representation the
    vectorized engine consumes; :meth:`PopulationSpec.receiver_from_traits`
    materializes any single row as a :class:`HumanReceiver` so the scalar
    reference walk can traverse the very same sampled population.
    """

    population_name: str
    traits: Dict[str, np.ndarray]
    ages: np.ndarray
    trained: np.ndarray

    @property
    def count(self) -> int:
        return int(self.ages.shape[0])


@dataclasses.dataclass
class PopulationSpec:
    """A distribution over human receivers.

    Parameters
    ----------
    name:
        Population name (appears in simulation results).
    traits:
        Overrides for any subset of the trait distributions; unspecified
        traits use library defaults representative of a general population.
    training_fraction:
        Fraction of the population that has received relevant security
        training.
    mean_age / age_spread:
        Demographic age distribution (years).
    """

    name: str
    traits: Dict[str, TraitDistribution] = dataclasses.field(default_factory=dict)
    training_fraction: float = 0.1
    mean_age: float = 38.0
    age_spread: float = 12.0
    description: str = ""

    def __post_init__(self) -> None:
        unknown = set(self.traits) - set(_DEFAULT_TRAITS)
        if unknown:
            raise SimulationError(f"unknown trait names: {sorted(unknown)}")
        if not 0.0 <= self.training_fraction <= 1.0:
            raise SimulationError("training_fraction must be in [0, 1]")
        if self.mean_age <= 0 or self.age_spread < 0:
            raise SimulationError("age parameters must be positive")

    def distribution(self, trait: str) -> TraitDistribution:
        """The effective distribution for a trait (override or default)."""
        if trait not in _DEFAULT_TRAITS:
            raise SimulationError(f"unknown trait {trait!r}")
        return self.traits.get(trait, _DEFAULT_TRAITS[trait])

    def with_trait(self, trait: str, distribution: TraitDistribution) -> "PopulationSpec":
        """Return a copy of the spec with one trait distribution replaced."""
        updated = dict(self.traits)
        if trait not in _DEFAULT_TRAITS:
            raise SimulationError(f"unknown trait {trait!r}")
        updated[trait] = distribution
        return dataclasses.replace(self, traits=updated)

    def sample(self, rng: SimulationRng, name: str = "") -> HumanReceiver:
        """Draw one receiver from the population."""
        draw = {trait: self.distribution(trait).sample(rng) for trait in _DEFAULT_TRAITS}
        age = int(round(rng.truncated_normal(self.mean_age, self.age_spread, 18, 90)))
        trained = rng.bernoulli(self.training_fraction)
        return self._build_receiver(
            draw, age=age, trained=trained, name=name or f"{self.name}-member"
        )

    def _build_receiver(
        self, draw: Dict[str, float], age: int, trained: bool, name: str
    ) -> HumanReceiver:
        """Map a trait draw to a receiver (shared by scalar and batch paths)."""
        return HumanReceiver(
            name=name,
            personal_variables=PersonalVariables(
                demographics=Demographics(age=age, education=EducationLevel.UNDERGRADUATE),
                knowledge=KnowledgeExperience(
                    security_knowledge=draw["security_knowledge"],
                    domain_knowledge=draw["domain_knowledge"],
                    computer_proficiency=draw["computer_proficiency"],
                    prior_exposure=draw["prior_exposure"],
                    has_received_training=trained,
                ),
            ),
            intentions=Intentions(
                attitudes=AttitudesBeliefs(
                    trust=draw["trust"],
                    perceived_relevance=draw["perceived_relevance"],
                    risk_perception=draw["risk_perception"],
                    self_efficacy=draw["self_efficacy"],
                    response_efficacy=draw["response_efficacy"],
                    perceived_time_cost=draw["perceived_time_cost"],
                    annoyance=draw["annoyance"],
                ),
                motivation=Motivation(
                    conflicting_goals=draw["conflicting_goals"],
                    primary_task_pressure=draw["primary_task_pressure"],
                    perceived_consequences=draw["perceived_consequences"],
                    incentives=draw["incentives"],
                    disincentives=draw["disincentives"],
                    convenience_cost=draw["convenience_cost"],
                ),
            ),
            capabilities=Capabilities(
                knowledge_to_act=draw["knowledge_to_act"],
                cognitive_skill=draw["cognitive_skill"],
                physical_skill=draw["physical_skill"],
                memory_capacity=draw["memory_capacity"],
            ),
        )

    def sample_many(self, count: int, rng: SimulationRng) -> List[HumanReceiver]:
        """Draw ``count`` receivers, each from an independent child stream."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        return [
            self.sample(rng.spawn(index), name=f"{self.name}-{index}")
            for index in range(count)
        ]

    def sample_traits(self, count: int, rng: SimulationRng) -> TraitSamples:
        """Draw ``count`` receivers at once as a struct of arrays.

        The draw order is fixed — one clipped-normal vector per trait in
        :data:`TRAIT_NAMES` order, then the age vector, then the training
        uniforms — so a (seed, count) pair always yields the same batch.
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        traits = {
            trait: self.distribution(trait).sample_array(count, rng)
            for trait in TRAIT_NAMES
        }
        ages = np.rint(
            rng.truncated_normal_array(self.mean_age, self.age_spread, 18, 90, count)
        ).astype(int)
        trained = rng.uniform_array(count) < self.training_fraction
        return TraitSamples(
            population_name=self.name, traits=traits, ages=ages, trained=trained
        )

    def sample_traits_counter(
        self, count: int, draws: CounterDraws, reuse_block: bool = False
    ) -> TraitSamples:
        """Draw ``count`` receivers from counter-based keyed streams.

        The ``rng_mode="counter"`` counterpart of :meth:`sample_traits`:
        trait ``k`` of :data:`TRAIT_NAMES` reads its own Box-Muller stream
        pair, ages and training uniforms theirs, so no draw's address
        depends on any other category and any single receiver's traits are
        recomputable in O(1) (:meth:`CounterDraws.clipped_normal_at`).
        All trait rows and the age row fill through one
        :meth:`CounterDraws.clipped_normal_block` call, so the
        Box-Muller transcendentals run as a single vectorized pass over
        the whole trait block rather than once per trait.
        ``reuse_block`` recycles the backing buffer of the previous
        same-shape call (see :meth:`CounterDraws.clipped_normal_block`);
        only pass it when the prior samples are no longer referenced.
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        distributions = [self.distribution(trait) for trait in TRAIT_NAMES]
        pairs = [trait_streams(index) for index in range(len(TRAIT_NAMES))]
        pairs.append(AGE_STREAMS)
        block = draws.clipped_normal_block(
            pairs,
            [d.mean for d in distributions] + [self.mean_age],
            [d.std for d in distributions] + [self.age_spread],
            [d.low for d in distributions] + [18],
            [d.high for d in distributions] + [90],
            count,
            reuse_block=reuse_block,
        )
        traits = {trait: block[index] for index, trait in enumerate(TRAIT_NAMES)}
        ages = np.rint(block[len(TRAIT_NAMES)]).astype(int)
        trained = draws.uniforms(TRAINED_STREAM, count) < self.training_fraction
        return TraitSamples(
            population_name=self.name, traits=traits, ages=ages, trained=trained
        )

    def receiver_from_traits(
        self, samples: TraitSamples, index: int, name: str = ""
    ) -> HumanReceiver:
        """Materialize row ``index`` of a trait batch as a receiver.

        The mapping from trait names to receiver fields is identical to
        :meth:`sample`, so the scalar and batch paths see the same humans.
        """
        draw = {trait: float(samples.traits[trait][index]) for trait in TRAIT_NAMES}
        return self._build_receiver(
            draw,
            age=int(samples.ages[index]),
            trained=bool(samples.trained[index]),
            name=name or f"{self.name}-member",
        )


def general_web_population() -> PopulationSpec:
    """Broad consumer web-browsing population (anti-phishing case study).

    Most members have little or no knowledge about phishing, moderate
    computer proficiency, and are busy with a primary task.
    """
    return PopulationSpec(
        name="general-web",
        description="General web users; many have little or no knowledge about phishing.",
        traits={
            "security_knowledge": TraitDistribution(0.25, 0.18),
            "domain_knowledge": TraitDistribution(0.25, 0.2),
            "computer_proficiency": TraitDistribution(0.55, 0.2),
            "prior_exposure": TraitDistribution(0.3, 0.2),
            "risk_perception": TraitDistribution(0.4, 0.2),
            "primary_task_pressure": TraitDistribution(0.6, 0.2),
            "perceived_consequences": TraitDistribution(0.45, 0.2),
        },
        training_fraction=0.05,
        mean_age=38.0,
    )


def organization_population() -> PopulationSpec:
    """Employee population of a typical organization (password case study).

    Spans complete novices through experts, is subject to organizational
    policy (so has been exposed to the policy communication at least once),
    and experiences real goal conflict between security tasks and getting
    work done.
    """
    return PopulationSpec(
        name="organization",
        description="Organization employees subject to a password policy.",
        traits={
            "security_knowledge": TraitDistribution(0.4, 0.25),
            "domain_knowledge": TraitDistribution(0.5, 0.25),
            "prior_exposure": TraitDistribution(0.7, 0.2),
            "conflicting_goals": TraitDistribution(0.45, 0.2),
            "primary_task_pressure": TraitDistribution(0.6, 0.2),
            "perceived_consequences": TraitDistribution(0.4, 0.2),
            "convenience_cost": TraitDistribution(0.55, 0.2),
            "memory_capacity": TraitDistribution(0.45, 0.15),
        },
        training_fraction=0.4,
        mean_age=40.0,
    )


def expert_population() -> PopulationSpec:
    """Security-savvy population used as a contrast group."""
    return PopulationSpec(
        name="expert",
        description="Security experts and power users.",
        traits={
            "security_knowledge": TraitDistribution(0.85, 0.1),
            "domain_knowledge": TraitDistribution(0.8, 0.12),
            "computer_proficiency": TraitDistribution(0.9, 0.08),
            "prior_exposure": TraitDistribution(0.85, 0.1),
            "self_efficacy": TraitDistribution(0.85, 0.1),
            "response_efficacy": TraitDistribution(0.75, 0.1),
            "knowledge_to_act": TraitDistribution(0.85, 0.1),
            "risk_perception": TraitDistribution(0.6, 0.15),
        },
        training_fraction=0.9,
        mean_age=36.0,
    )
