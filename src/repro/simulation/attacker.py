"""Attacker models for the interference component.

Section 2.2 notes that interference "may be caused by malicious attackers,
technology failures, or environmental stimuli that obscure the
communication", and Section 4 adds that the interference component was
added to C-HIP precisely because "computer security communications may be
impeded by an active attacker".  This module provides attacker models that
translate an attacker's capabilities into
:class:`~repro.core.impediments.Interference` channels, plus the classic
attacks the paper cites (indicator spoofing à la Ye et al., obscuring, and
suppression), so experiments can toggle an active attacker on and off.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from ..core.exceptions import SimulationError
from ..core.impediments import Environment, Interference, InterferenceSource

__all__ = ["AttackVector", "AttackerModel", "no_attacker", "spoofing_attacker"]


class AttackVector(enum.Enum):
    """Ways an attacker can interfere with a security communication."""

    SUPPRESS = "suppress"
    OBSCURE = "obscure"
    SPOOF = "spoof"

    @property
    def description(self) -> str:
        if self is AttackVector.SUPPRESS:
            return "Prevent the communication from being displayed at all."
        if self is AttackVector.OBSCURE:
            return "Degrade or partially hide the communication."
        return (
            "Present an attacker-controlled look-alike indicator so users rely "
            "on it instead of the genuine one (Ye et al.'s SSL spoofing)."
        )


@dataclasses.dataclass(frozen=True)
class AttackerModel:
    """An attacker characterized by capability along each vector.

    Each capability is the per-encounter probability that the attacker
    successfully exercises the corresponding vector against the
    communication.
    """

    name: str = "attacker"
    suppress_capability: float = 0.0
    obscure_capability: float = 0.0
    spoof_capability: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("suppress_capability", "obscure_capability", "spoof_capability"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{field_name} must be in [0, 1], got {value}")

    @property
    def is_active(self) -> bool:
        return (
            self.suppress_capability > 0.0
            or self.obscure_capability > 0.0
            or self.spoof_capability > 0.0
        )

    def interference(self) -> Interference:
        """The interference channel this attacker contributes."""
        return Interference(
            source=InterferenceSource.MALICIOUS_ATTACKER,
            block_probability=self.suppress_capability,
            degrade_probability=self.obscure_capability,
            spoof_probability=self.spoof_capability,
            description=f"attacker model {self.name!r}",
        )

    def apply_to(self, environment: Environment) -> Environment:
        """Return a copy of ``environment`` with this attacker's interference added."""
        updated = Environment(
            stimuli=list(environment.stimuli),
            interference=list(environment.interference),
            competing_indicator_count=environment.competing_indicator_count,
            description=environment.description,
        )
        if self.is_active:
            updated.add_interference(self.interference())
        return updated


def no_attacker() -> AttackerModel:
    """The benign baseline: no interference from an attacker."""
    return AttackerModel(name="none")


def spoofing_attacker(capability: float = 0.5) -> AttackerModel:
    """An attacker who spoofs indicators but does not suppress them."""
    return AttackerModel(name="spoofing", spoof_capability=capability)
