"""The human-receiver simulation engine.

The engine is the substrate that stands in for the human-subject studies
the paper cites: it draws receivers from a :class:`PopulationSpec` and
advances them through the shared framework pipeline (communication
delivery → communication processing → application → intention and
capability gates → behavior) owned by :mod:`repro.core.pipeline`, with
stage probabilities from :mod:`repro.core.probabilities` (optionally
rescaled by a :class:`~repro.simulation.calibration.StageCalibration`),
and records where each receiver failed and whether the hazard was
ultimately avoided.

Two execution modes traverse the identical pipeline over identical
pre-drawn randomness:

* ``mode="batch"`` (the default) — receivers advance in numpy batches:
  one model call per stage covers every receiver in the chunk and one
  uniform matrix supplies every decision, which makes 100k+-receiver
  populations practical.  Chunks of ``batch_size`` receivers are folded
  into a streaming :class:`~repro.simulation.metrics.SimulationTally`, so
  memory stays O(batch); full per-receiver records (with stage traces)
  are materialized only when the run is within ``record_limit``.
* ``mode="reference"`` — the same traversal kernel at width 1: each row of
  the pre-drawn matrices is sliced into a one-receiver batch
  (:meth:`~repro.simulation.batch.DrawBatch.row`) and evaluated
  independently, so the per-receiver outcomes must match the batch mode
  exactly (the equivalence regression test relies on this).  The lazy
  scalar walk survives as :meth:`HumanLoopSimulator.simulate_receiver`,
  which drives the identical kernel through a per-decision callback.

**Multi-round simulation** (``rounds > 1``) advances the *same* pre-drawn
population through repeated hazard encounters, folding the habituation
dynamics of Section 2.3.1 into the engine: each chunk draws its traits
once, then per round draws fresh encounter randomness
(:func:`repro.simulation.batch.redraw_decisions`) and threads a vectorized
per-receiver exposure array through the attention-switch stage.  Between
rounds the array advances by the shared accounting rule of
:func:`repro.simulation.habituation.advance_exposures` — receivers the
communication actually reached accrue exposure, then everyone recovers
through the exposure-free gap at ``recovery_rate`` — so notice
probabilities decay per receiver, per round, exactly as
:func:`repro.core.probabilities.habituation_factor` prescribes.  The
accrual is **outcome-coupled**: the realized outcomes of each round feed
back into the update, so a delivered encounter weighs ``heed_weight``
exposures when it ended with the hazard avoided and ``dismiss_weight``
when the receiver proceeded into the hazard (see
:func:`~repro.simulation.habituation.advance_exposures` for the exact
split, including the blocking-warning fail-safe case).  Both weights
default to 1.0, which reproduces the delivery-only accrual rule bit for
bit.  Round 0 consumes the identical draw stream a single-shot run
would, which keeps ``rounds=1`` bit-identical to the single-shot engine;
both execution modes share the exposure arrays, the per-round draw
layout, and the realized outcomes, so batch/reference equivalence holds
round by round.  Aggregates stream into the overall
:class:`~repro.simulation.metrics.SimulationTally` plus one
:class:`~repro.simulation.metrics.RoundTally` per round; with tracing
enabled (the default) the per-stage funnel additionally streams into a
:class:`~repro.simulation.metrics.FunnelTally` (aggregate and per
round), keeping per-stage survival and conditional-failure analytics
O(batch) in memory.

Outcome semantics mirror the case studies:

* For **blocking** communications (the Firefox and active IE anti-phishing
  warnings), the safe outcome is the default: a receiver only reaches the
  hazard by explicitly overriding.  Receivers who never understand the
  warning mostly "fail safely"; receivers who decide to ignore it override
  and are unprotected.
* For **passive** communications (the passive IE warning, toolbar
  indicators), the hazard proceeds by default: any failure before a
  successful protective action leaves the receiver unprotected.
* A receiver facing a **spoofed** indicator (attacker interference) is
  unprotected regardless of their own processing.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import SimulationError
from ..core.impediments import Environment
from ..core.pipeline import PipelinePlan, build_pipeline
from ..core.receiver import HumanReceiver
from ..core.task import HumanSecurityTask
from . import batch as batch_module
from . import habituation as habituation_module
from .attacker import AttackerModel
from .calibration import StageCalibration
from .metrics import (
    FunnelTally,
    ReceiverRecord,
    RoundTally,
    SimulationResult,
    SimulationTally,
)
from .population import PopulationSpec
from .rng import PhiloxDraws, SimulationRng

__all__ = [
    "SimulationConfig",
    "HumanLoopSimulator",
    "SIMULATION_MODES",
    "RNG_MODES",
    "NON_PROVENANCE_CONFIG_FIELDS",
]

#: Supported execution modes (see module docstring).
SIMULATION_MODES = ("batch", "reference")

#: :class:`SimulationConfig` fields excluded from serialized result
#: provenance, machine-checked by ``repro.devtools`` rule REP003: the
#: ``attacker`` is structural input rebuilt from the task/scenario
#: declaration the provenance already names, and ``record_limit`` only
#: bounds which derived per-receiver records are retained in memory —
#: records are never serialized, and the streaming aggregates do not
#: depend on it.  Every other config field must appear in
#: :func:`repro.io.json_io.simulation_result_to_dict`'s provenance block.
NON_PROVENANCE_CONFIG_FIELDS = ("attacker", "record_limit")

#: Supported decision-stream sources.  ``"counter"`` — keyed counter
#: streams (:class:`~repro.simulation.rng.CounterDraws`), where every
#: draw is O(1)-addressable by (seed, chunk, round, stream, receiver);
#: the engine default since it overtook the matrix path
#: (``BENCH_engine.json``).  ``"matrix"`` — the sequential
#: :class:`~repro.simulation.rng.SimulationRng` draw layout, kept fully
#: runnable so persisted results recorded under it stay replayable
#: (``reproduce_row`` pins the mode from provenance).  The two sources
#: draw different floats for the same seed, so the mode is part of a
#: run's reproducibility provenance; within either mode, batch and
#: reference execution stay bit-identical.
RNG_MODES = ("matrix", "counter")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Configuration for one simulation run.

    ``batch_size`` bounds the number of receivers materialized as arrays
    at any moment; ``record_limit`` bounds the number of receiver-round
    encounters for which full per-receiver records are kept (beyond it,
    only the streaming tallies are retained).  ``rounds`` is the number of
    hazard encounters each receiver faces and ``recovery_rate`` the
    habituation recovery applied in the exposure-free gap between rounds
    (see the module docstring).  ``dismiss_weight`` / ``heed_weight``
    couple the exposure accrual to realized outcomes (1.0/1.0 — the
    delivery-only rule, bit for bit); ``trace`` keeps the streaming
    per-stage funnel tallies — folded from the traversal kernel's fused
    counts-only reduction, so the cost is a few percent of throughput
    (see ``BENCH_trace.json``).

    ``rng_mode`` selects the decision-stream source (see
    :data:`RNG_MODES`); ``chunk_workers`` fans the independent chunks of
    one simulate call across that many worker processes, merging the
    streaming tallies in chunk order — both rng modes derive chunk
    randomness from (seed, chunk index) alone, so the merged result is
    bit-identical to a serial run for any worker count.
    """

    n_receivers: int = 500
    seed: int = 0
    calibration: StageCalibration = dataclasses.field(default_factory=StageCalibration.neutral)
    attacker: Optional[AttackerModel] = None
    mode: str = "batch"
    batch_size: int = 25_000
    record_limit: int = 10_000
    rounds: int = 1
    recovery_rate: float = 0.0
    dismiss_weight: float = 1.0
    heed_weight: float = 1.0
    trace: bool = True
    rng_mode: str = "counter"
    chunk_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_receivers < 0:
            raise SimulationError("n_receivers must be non-negative")
        if self.seed < 0:
            raise SimulationError("seed must be non-negative")
        if self.mode not in SIMULATION_MODES:
            raise SimulationError(
                f"mode must be one of {SIMULATION_MODES}, got {self.mode!r}"
            )
        if self.batch_size <= 0:
            raise SimulationError("batch_size must be positive")
        if self.record_limit < 0:
            raise SimulationError("record_limit must be non-negative")
        if self.rounds < 1:
            raise SimulationError("rounds must be >= 1")
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")
        if self.dismiss_weight < 0.0 or self.heed_weight < 0.0:
            raise SimulationError("habituation weights must be non-negative")
        if self.rng_mode not in RNG_MODES:
            raise SimulationError(
                f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}"
            )
        if self.chunk_workers < 1:
            raise SimulationError("chunk_workers must be >= 1")


@dataclasses.dataclass(frozen=True)
class _ChunkSpec:
    """One chunk of one simulate call, as a picklable work unit.

    Everything a worker process needs to reproduce the chunk exactly:
    both rng modes derive chunk randomness from ``(base_seed,
    chunk_index)`` alone (never from sibling chunks), which is what makes
    the partials identical whichever process — or order — computes them.
    """

    plan: PipelinePlan
    population: PopulationSpec
    base_seed: int
    chunk_index: int
    offset: int
    size: int
    mode: str
    rng_mode: str
    rounds: int
    recovery_rate: float
    dismiss_weight: float
    heed_weight: float
    want_trace: bool
    keep_records: bool


@dataclasses.dataclass
class _ChunkPartial:
    """One chunk's streaming partials, merged into the result in chunk order."""

    tally: SimulationTally
    round_tallies: List[RoundTally]
    funnel: Optional[FunnelTally]
    round_funnels: List[FunnelTally]
    records: List[ReceiverRecord]


def _simulate_chunk(spec: _ChunkSpec) -> _ChunkPartial:
    """Advance one chunk of receivers through every hazard-encounter round.

    The extracted body of the engine's chunk loop, shared by the serial
    path and the in-call multicore path (``chunk_workers > 1``).  Integer
    tallies merged in chunk order reproduce the streaming serial fold bit
    for bit.
    """
    plan = spec.plan
    partial = _ChunkPartial(
        tally=SimulationTally(),
        round_tallies=[RoundTally(round_index=index) for index in range(spec.rounds)],
        funnel=FunnelTally() if spec.want_trace else None,
        round_funnels=(
            [FunnelTally() for _ in range(spec.rounds)] if spec.want_trace else []
        ),
        records=batch_module.LazyRecords() if spec.mode == "batch" else [],
    )
    if spec.rng_mode == "counter":
        cell = PhiloxDraws(spec.base_seed, spec.chunk_index)
        # Batch chunks whose records die with the chunk may recycle the
        # multi-megabyte draw buffers of the previous chunk; kept records
        # hold views of those buffers, so they force fresh allocations.
        reuse_buffers = spec.mode == "batch" and not spec.keep_records
        draws = batch_module.draw_batch_counter(
            plan, spec.population, spec.size, cell, reuse_buffers=reuse_buffers
        )
    else:
        chunk_rng = SimulationRng(spec.base_seed).spawn(spec.chunk_index)
        draws = batch_module.draw_batch(plan, spec.population, spec.size, chunk_rng)
    # Single-shot runs never read the exposure state; keep that hot path
    # allocation-free.
    exposures = (
        habituation_module.initial_exposures(plan.communication, spec.size)
        if spec.rounds > 1
        else None
    )
    for round_index in range(spec.rounds):
        if round_index:
            # Same receivers, fresh encounter randomness: the counter
            # source re-keys the cell for the round, the matrix source
            # spawns a round stream off the chunk stream (round 0 consumed
            # the chunk stream itself, preserving the single-shot draw
            # layout exactly).
            if spec.rng_mode == "counter":
                draws = batch_module.redraw_decisions_counter(
                    plan,
                    draws.samples,
                    cell.for_round(round_index),
                    reuse_buffers=reuse_buffers,
                )
            else:
                draws = batch_module.redraw_decisions(
                    plan, draws.samples, chunk_rng.spawn(round_index)
                )
        # Round 0 keeps the communication's scalar baked-in count (the
        # single-shot reading); later rounds thread the evolved
        # per-receiver array.
        round_exposures = exposures if round_index else None
        round_tally = partial.round_tallies[round_index]
        advancing = exposures is not None and round_index + 1 < spec.rounds
        if spec.mode == "batch":
            outcomes = batch_module.evaluate_batch(
                plan,
                draws,
                exposures=round_exposures,
                trace="counts" if spec.want_trace else False,
            )
            partial.tally.add_batch(outcomes)
            round_tally.add_batch(outcomes)
            if spec.want_trace:
                partial.funnel.add_counts(outcomes.funnel_counts)
                partial.round_funnels[round_index].add_counts(outcomes.funnel_counts)
            if spec.keep_records:
                partial.records.defer(outcomes, draws, spec.offset, round_index)
            protected = outcomes.protected
        else:
            # Reference mode: the same traversal kernel at width 1, one
            # row slice at a time (each receiver evaluated in isolation
            # over identical pre-drawn floats).
            protected = np.zeros(spec.size, dtype=bool) if advancing else None
            for row in range(spec.size):
                row_draws = draws.row(row)
                row_outcomes = batch_module.evaluate_batch(
                    plan,
                    row_draws,
                    exposures=(
                        None if round_exposures is None
                        else round_exposures[row : row + 1]
                    ),
                    trace="counts" if spec.want_trace else False,
                )
                record = batch_module.records_from_batch(
                    row_outcomes,
                    row_draws,
                    start_index=spec.offset + row,
                    round_index=round_index,
                )[0]
                partial.tally.add_record(record)
                round_tally.add_record(record)
                if spec.want_trace:
                    partial.funnel.add_counts(row_outcomes.funnel_counts)
                    partial.round_funnels[round_index].add_counts(
                        row_outcomes.funnel_counts
                    )
                if spec.keep_records:
                    partial.records.append(record)
                if advancing:
                    protected[row] = bool(row_outcomes.protected[0])
        if advancing:
            # Outcome-coupled accrual: delivery (spoof draws) says who the
            # communication reached, the realized outcomes say how hard
            # the encounter habituates.  Both modes feed the identical
            # floats (reference is the kernel at width 1), so the exposure
            # trajectories agree bit for bit.
            delivered = draws.spoof_uniforms >= plan.spoof_probability
            exposures = habituation_module.advance_exposures(
                exposures,
                delivered,
                spec.recovery_rate,
                heeded=protected,
                dismiss_weight=spec.dismiss_weight,
                heed_weight=spec.heed_weight,
            )
    return partial


def _regenerate_chunk_records(spec: _ChunkSpec) -> List[ReceiverRecord]:
    """Recompute one chunk's records from its coordinates alone.

    The zero-copy parallel path sends workers record-free specs (tallies
    are integers; records would be megabytes of pickled dataclasses) and
    parks this regeneration per chunk instead: both rng modes derive the
    chunk's randomness from ``(base_seed, chunk_index)``, so re-running
    the chunk locally yields records bit-identical to the ones the worker
    skipped building.
    """
    partial = _simulate_chunk(dataclasses.replace(spec, keep_records=True))
    return list(partial.records)


# One process pool per interpreter, reused across simulate calls so
# small-N parallel runs stop paying executor spin-up (~100ms on spawn
# platforms) per call.  The pool is keyed to the exact concurrency of
# the last call — sweeps run thousands of calls at one fixed
# ``chunk_workers`` and hit the cached pool every time; changing the
# worker count pays a single respin.  (An oversized shared pool would be
# reusable too, but ``pool.map`` would then run more chunks concurrently
# than the caller's ``chunk_workers`` cap allows.)
_POOL: Optional[concurrent.futures.ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _chunk_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS != workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _discard_pool() -> None:
    """Drop the persistent pool (crashed worker, or test isolation)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0


def _shutdown_pool_at_exit() -> None:
    """Join pool workers before interpreter teardown dismantles modules."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0


atexit.register(_shutdown_pool_at_exit)


def _run_chunks_parallel(
    specs: List[_ChunkSpec], workers: int
) -> List[_ChunkPartial]:
    """Fan chunk specs across the persistent pool, in spec order.

    A worker process killed mid-call breaks the shared executor; the one
    retry rebuilds the pool and recomputes every chunk (chunks are pure
    functions of their spec, so the retry cannot change results).
    """
    pool = _chunk_pool(workers)
    try:
        return list(pool.map(_simulate_chunk, specs))
    except concurrent.futures.process.BrokenProcessPool:
        _discard_pool()
        pool = _chunk_pool(workers)
        return list(pool.map(_simulate_chunk, specs))


def _merged_records(partials: List[_ChunkPartial]) -> List[ReceiverRecord]:
    """Concatenate chunk records in chunk order, staying lazy when possible.

    In-process batch chunks arrive as unmaterialized
    :class:`~repro.simulation.batch.LazyRecords` and chain without paying
    for record construction; chunks that crossed a process boundary (or
    reference-mode chunks) arrive as plain lists and merge eagerly.
    """
    record_lists = [partial.records for partial in partials]
    if all(isinstance(records, batch_module.LazyRecords) for records in record_lists):
        merged = batch_module.LazyRecords()
        for records in record_lists:
            merged.absorb(records)
        return merged
    merged_eager: List[ReceiverRecord] = []
    for records in record_lists:
        merged_eager.extend(records)
    return merged_eager


class HumanLoopSimulator:
    """Monte-Carlo simulator of humans in the loop of a secure system."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # -- public API -------------------------------------------------------------

    def simulate_task(
        self,
        task: HumanSecurityTask,
        population: PopulationSpec,
        n_receivers: Optional[int] = None,
        seed: Optional[int] = None,
        mode: Optional[str] = None,
        rounds: Optional[int] = None,
        recovery_rate: Optional[float] = None,
        dismiss_weight: Optional[float] = None,
        heed_weight: Optional[float] = None,
        trace: Optional[bool] = None,
        rng_mode: Optional[str] = None,
        chunk_workers: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``n_receivers`` independent receivers encountering the task.

        ``mode`` overrides the configured execution mode for this run
        ("batch" or "reference"); both modes consume the same pre-drawn
        randomness chunk by chunk, so for a fixed (seed, batch_size) their
        aggregate outcomes are identical.

        ``rounds`` advances the same receivers through that many hazard
        encounters, carrying per-receiver habituation exposure state between
        them (decayed by ``recovery_rate`` in the exposure-free gaps, with
        the accrual of each encounter weighted by its realized outcome —
        ``dismiss_weight`` / ``heed_weight``); see the module docstring for
        the dynamics.  ``rounds=1`` is the single-shot engine, bit for bit,
        and unit weights reproduce the delivery-only accrual exactly.
        ``trace`` toggles the streaming per-stage funnel tallies.

        ``rng_mode`` selects the decision-stream source ("matrix" or
        "counter", see :data:`RNG_MODES`) and ``chunk_workers`` fans the
        run's independent chunks across that many worker processes;
        neither changes the simulated outcomes within its rng mode — a
        parallel run merges chunk partials in chunk order and is
        bit-identical to the serial fold.
        """
        count = self.config.n_receivers if n_receivers is None else n_receivers
        if count < 0:
            raise SimulationError("n_receivers must be non-negative")
        base_seed = self.config.seed if seed is None else seed
        mode = self.config.mode if mode is None else mode
        if mode not in SIMULATION_MODES:
            raise SimulationError(f"mode must be one of {SIMULATION_MODES}, got {mode!r}")
        rounds = self.config.rounds if rounds is None else rounds
        if rounds < 1:
            raise SimulationError("rounds must be >= 1")
        recovery_rate = (
            self.config.recovery_rate if recovery_rate is None else recovery_rate
        )
        if not 0.0 <= recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")
        dismiss_weight = (
            self.config.dismiss_weight if dismiss_weight is None else dismiss_weight
        )
        heed_weight = self.config.heed_weight if heed_weight is None else heed_weight
        if dismiss_weight < 0.0 or heed_weight < 0.0:
            raise SimulationError("habituation weights must be non-negative")
        want_trace = self.config.trace if trace is None else bool(trace)
        rng_mode = self.config.rng_mode if rng_mode is None else rng_mode
        if rng_mode not in RNG_MODES:
            raise SimulationError(
                f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}"
            )
        chunk_workers = (
            self.config.chunk_workers if chunk_workers is None else chunk_workers
        )
        if chunk_workers < 1:
            raise SimulationError("chunk_workers must be >= 1")

        started = time.perf_counter()
        plan = self._plan_for(task)
        keep_records = mode == "reference" or count * rounds <= self.config.record_limit

        result = SimulationResult(
            task_name=task.name,
            population_name=population.name,
            seed=base_seed,
            calibration_label=self.config.calibration.label,
            tally=SimulationTally(),
            mode=mode,
            batch_size=self.config.batch_size,
            rounds=rounds,
            recovery_rate=recovery_rate,
            round_tallies=[RoundTally(round_index=index) for index in range(rounds)],
            funnel=FunnelTally() if want_trace else None,
            round_funnels=[FunnelTally() for _ in range(rounds)] if want_trace else [],
            dismiss_weight=dismiss_weight,
            heed_weight=heed_weight,
            rng_mode=rng_mode,
            chunk_workers=chunk_workers,
        )

        specs: List[_ChunkSpec] = []
        offset = 0
        while offset < count:
            size = min(self.config.batch_size, count - offset)
            specs.append(
                _ChunkSpec(
                    plan=plan,
                    population=population,
                    base_seed=base_seed,
                    chunk_index=len(specs),
                    offset=offset,
                    size=size,
                    mode=mode,
                    rng_mode=rng_mode,
                    rounds=rounds,
                    recovery_rate=recovery_rate,
                    dismiss_weight=dismiss_weight,
                    heed_weight=heed_weight,
                    want_trace=want_trace,
                    keep_records=keep_records,
                )
            )
            offset += size

        if chunk_workers > 1 and len(specs) > 1:
            # Each chunk is self-contained (randomness keyed by (seed,
            # chunk index) alone), so fan the specs across the persistent
            # pool and fold the partials back in chunk order —
            # bit-identical to the serial path for any worker count.
            #
            # Counter mode dispatches zero-copy: workers get record-free
            # specs (their partials carry only integer tallies — no draw
            # matrices or record lists cross the process boundary) and
            # each chunk's records are parked as a local regeneration
            # from the same coordinates, paid only if the records are
            # actually read.
            defer_records = keep_records and mode == "batch" and rng_mode == "counter"
            worker_specs = (
                [dataclasses.replace(spec, keep_records=False) for spec in specs]
                if defer_records
                else specs
            )
            partials = _run_chunks_parallel(
                worker_specs, min(chunk_workers, len(specs))
            )
            if defer_records:
                for spec, partial in zip(specs, partials):
                    lazy = batch_module.LazyRecords()
                    lazy.defer_chunk(_regenerate_chunk_records, spec)
                    partial.records = lazy
        else:
            partials = [_simulate_chunk(spec) for spec in specs]

        for partial in partials:
            result.tally.merge(partial.tally)
            for round_tally, partial_round in zip(result.round_tallies, partial.round_tallies):
                round_tally.merge(partial_round)
            if want_trace:
                result.funnel.merge(partial.funnel)
                for funnel, partial_funnel in zip(result.round_funnels, partial.round_funnels):
                    funnel.merge(partial_funnel)
        if keep_records:
            result.records = _merged_records(partials)
        result.chunks = len(specs)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def simulate_receiver(
        self,
        task: HumanSecurityTask,
        receiver: HumanReceiver,
        rng: SimulationRng,
        index: int = 0,
    ) -> ReceiverRecord:
        """Simulate a single receiver's encounter with the task.

        Draws flow through ``rng`` one decision at a time in pipeline
        order (spoof, noise, stages, gates), exactly as the original
        per-receiver engine did.
        """
        plan = self._plan_for(task)
        spoofed = False
        noise = 0.0
        if plan.has_communication:
            spoofed = rng.bernoulli(plan.spoof_probability)
            if not spoofed:
                noise = rng.truncated_normal(0.0, plan.user_noise_std, -0.2, 0.2)

        walk = plan.walk(
            receiver,
            decide=lambda kind, stage, probability: rng.bernoulli(float(probability)),
            noise=noise,
            spoofed=spoofed,
        )
        return self._record_from_walk(walk, index=index, receiver_name=receiver.name)

    # -- internals ----------------------------------------------------------------

    def _plan_for(self, task: HumanSecurityTask) -> PipelinePlan:
        return build_pipeline(
            task,
            calibration=self.config.calibration,
            environment=self._effective_environment(task.environment),
        )

    def _effective_environment(self, environment: Environment) -> Environment:
        if self.config.attacker is None:
            return environment
        return self.config.attacker.apply_to(environment)

    @staticmethod
    def _record_from_walk(
        walk, index: int, receiver_name: str, round_index: int = 0
    ) -> ReceiverRecord:
        return ReceiverRecord(
            index=index,
            receiver_name=receiver_name,
            trace=walk.trace,
            outcome=walk.outcome,
            protected=walk.protected,
            failed_stage=walk.failed_stage,
            intention_failed=walk.intention_failed,
            capability_failed=walk.capability_failed,
            spoofed=walk.spoofed,
            note=walk.note,
            round_index=round_index,
        )
