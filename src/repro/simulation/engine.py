"""The human-receiver simulation engine.

The engine is the substrate that stands in for the human-subject studies
the paper cites: it draws receivers from a :class:`PopulationSpec` and
advances them through the shared framework pipeline (communication
delivery → communication processing → application → intention and
capability gates → behavior) owned by :mod:`repro.core.pipeline`, with
stage probabilities from :mod:`repro.core.probabilities` (optionally
rescaled by a :class:`~repro.simulation.calibration.StageCalibration`),
and records where each receiver failed and whether the hazard was
ultimately avoided.

Two execution modes traverse the identical pipeline over identical
pre-drawn randomness:

* ``mode="batch"`` (the default) — receivers advance in numpy batches:
  one model call per stage covers every receiver in the chunk and one
  uniform matrix supplies every decision, which makes 100k+-receiver
  populations practical.  Chunks of ``batch_size`` receivers are folded
  into a streaming :class:`~repro.simulation.metrics.SimulationTally`, so
  memory stays O(batch); full per-receiver records (with stage traces)
  are materialized only when the run is within ``record_limit``.
* ``mode="reference"`` — the same traversal kernel at width 1: each row of
  the pre-drawn matrices is sliced into a one-receiver batch
  (:meth:`~repro.simulation.batch.DrawBatch.row`) and evaluated
  independently, so the per-receiver outcomes must match the batch mode
  exactly (the equivalence regression test relies on this).  The lazy
  scalar walk survives as :meth:`HumanLoopSimulator.simulate_receiver`,
  which drives the identical kernel through a per-decision callback.

**Multi-round simulation** (``rounds > 1``) advances the *same* pre-drawn
population through repeated hazard encounters, folding the habituation
dynamics of Section 2.3.1 into the engine: each chunk draws its traits
once, then per round draws fresh encounter randomness
(:func:`repro.simulation.batch.redraw_decisions`) and threads a vectorized
per-receiver exposure array through the attention-switch stage.  Between
rounds the array advances by the shared accounting rule of
:func:`repro.simulation.habituation.advance_exposures` — receivers the
communication actually reached accrue exposure, then everyone recovers
through the exposure-free gap at ``recovery_rate`` — so notice
probabilities decay per receiver, per round, exactly as
:func:`repro.core.probabilities.habituation_factor` prescribes.  The
accrual is **outcome-coupled**: the realized outcomes of each round feed
back into the update, so a delivered encounter weighs ``heed_weight``
exposures when it ended with the hazard avoided and ``dismiss_weight``
when the receiver proceeded into the hazard (see
:func:`~repro.simulation.habituation.advance_exposures` for the exact
split, including the blocking-warning fail-safe case).  Both weights
default to 1.0, which reproduces the delivery-only accrual rule bit for
bit.  Round 0 consumes the identical draw stream a single-shot run
would, which keeps ``rounds=1`` bit-identical to the single-shot engine;
both execution modes share the exposure arrays, the per-round draw
layout, and the realized outcomes, so batch/reference equivalence holds
round by round.  Aggregates stream into the overall
:class:`~repro.simulation.metrics.SimulationTally` plus one
:class:`~repro.simulation.metrics.RoundTally` per round; with tracing
enabled (the default) the per-stage funnel additionally streams into a
:class:`~repro.simulation.metrics.FunnelTally` (aggregate and per
round), keeping per-stage survival and conditional-failure analytics
O(batch) in memory.

Outcome semantics mirror the case studies:

* For **blocking** communications (the Firefox and active IE anti-phishing
  warnings), the safe outcome is the default: a receiver only reaches the
  hazard by explicitly overriding.  Receivers who never understand the
  warning mostly "fail safely"; receivers who decide to ignore it override
  and are unprotected.
* For **passive** communications (the passive IE warning, toolbar
  indicators), the hazard proceeds by default: any failure before a
  successful protective action leaves the receiver unprotected.
* A receiver facing a **spoofed** indicator (attacker interference) is
  unprotected regardless of their own processing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import SimulationError
from ..core.impediments import Environment
from ..core.pipeline import PipelinePlan, build_pipeline
from ..core.receiver import HumanReceiver
from ..core.task import HumanSecurityTask
from . import batch as batch_module
from . import habituation as habituation_module
from .attacker import AttackerModel
from .calibration import StageCalibration
from .metrics import (
    FunnelTally,
    ReceiverRecord,
    RoundTally,
    SimulationResult,
    SimulationTally,
)
from .population import PopulationSpec
from .rng import SimulationRng

__all__ = ["SimulationConfig", "HumanLoopSimulator", "SIMULATION_MODES"]

#: Supported execution modes (see module docstring).
SIMULATION_MODES = ("batch", "reference")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Configuration for one simulation run.

    ``batch_size`` bounds the number of receivers materialized as arrays
    at any moment; ``record_limit`` bounds the number of receiver-round
    encounters for which full per-receiver records are kept (beyond it,
    only the streaming tallies are retained).  ``rounds`` is the number of
    hazard encounters each receiver faces and ``recovery_rate`` the
    habituation recovery applied in the exposure-free gap between rounds
    (see the module docstring).  ``dismiss_weight`` / ``heed_weight``
    couple the exposure accrual to realized outcomes (1.0/1.0 — the
    delivery-only rule, bit for bit); ``trace`` keeps the streaming
    per-stage funnel tallies — worth roughly a quarter of the multi-round
    hot path's throughput (see ``BENCH_trace.json``), so disable it for
    throughput-critical runs that do not need funnel analytics.
    """

    n_receivers: int = 500
    seed: int = 0
    calibration: StageCalibration = dataclasses.field(default_factory=StageCalibration.neutral)
    attacker: Optional[AttackerModel] = None
    mode: str = "batch"
    batch_size: int = 25_000
    record_limit: int = 10_000
    rounds: int = 1
    recovery_rate: float = 0.0
    dismiss_weight: float = 1.0
    heed_weight: float = 1.0
    trace: bool = True

    def __post_init__(self) -> None:
        if self.n_receivers < 0:
            raise SimulationError("n_receivers must be non-negative")
        if self.seed < 0:
            raise SimulationError("seed must be non-negative")
        if self.mode not in SIMULATION_MODES:
            raise SimulationError(
                f"mode must be one of {SIMULATION_MODES}, got {self.mode!r}"
            )
        if self.batch_size <= 0:
            raise SimulationError("batch_size must be positive")
        if self.record_limit < 0:
            raise SimulationError("record_limit must be non-negative")
        if self.rounds < 1:
            raise SimulationError("rounds must be >= 1")
        if not 0.0 <= self.recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")
        if self.dismiss_weight < 0.0 or self.heed_weight < 0.0:
            raise SimulationError("habituation weights must be non-negative")


class HumanLoopSimulator:
    """Monte-Carlo simulator of humans in the loop of a secure system."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # -- public API -------------------------------------------------------------

    def simulate_task(
        self,
        task: HumanSecurityTask,
        population: PopulationSpec,
        n_receivers: Optional[int] = None,
        seed: Optional[int] = None,
        mode: Optional[str] = None,
        rounds: Optional[int] = None,
        recovery_rate: Optional[float] = None,
        dismiss_weight: Optional[float] = None,
        heed_weight: Optional[float] = None,
        trace: Optional[bool] = None,
    ) -> SimulationResult:
        """Simulate ``n_receivers`` independent receivers encountering the task.

        ``mode`` overrides the configured execution mode for this run
        ("batch" or "reference"); both modes consume the same pre-drawn
        randomness chunk by chunk, so for a fixed (seed, batch_size) their
        aggregate outcomes are identical.

        ``rounds`` advances the same receivers through that many hazard
        encounters, carrying per-receiver habituation exposure state between
        them (decayed by ``recovery_rate`` in the exposure-free gaps, with
        the accrual of each encounter weighted by its realized outcome —
        ``dismiss_weight`` / ``heed_weight``); see the module docstring for
        the dynamics.  ``rounds=1`` is the single-shot engine, bit for bit,
        and unit weights reproduce the delivery-only accrual exactly.
        ``trace`` toggles the streaming per-stage funnel tallies.
        """
        count = self.config.n_receivers if n_receivers is None else n_receivers
        if count < 0:
            raise SimulationError("n_receivers must be non-negative")
        base_seed = self.config.seed if seed is None else seed
        mode = self.config.mode if mode is None else mode
        if mode not in SIMULATION_MODES:
            raise SimulationError(f"mode must be one of {SIMULATION_MODES}, got {mode!r}")
        rounds = self.config.rounds if rounds is None else rounds
        if rounds < 1:
            raise SimulationError("rounds must be >= 1")
        recovery_rate = (
            self.config.recovery_rate if recovery_rate is None else recovery_rate
        )
        if not 0.0 <= recovery_rate <= 1.0:
            raise SimulationError("recovery_rate must be in [0, 1]")
        dismiss_weight = (
            self.config.dismiss_weight if dismiss_weight is None else dismiss_weight
        )
        heed_weight = self.config.heed_weight if heed_weight is None else heed_weight
        if dismiss_weight < 0.0 or heed_weight < 0.0:
            raise SimulationError("habituation weights must be non-negative")
        want_trace = self.config.trace if trace is None else bool(trace)

        plan = self._plan_for(task)
        rng = SimulationRng(base_seed)
        keep_records = mode == "reference" or count * rounds <= self.config.record_limit

        result = SimulationResult(
            task_name=task.name,
            population_name=population.name,
            seed=base_seed,
            calibration_label=self.config.calibration.label,
            tally=SimulationTally(),
            mode=mode,
            batch_size=self.config.batch_size,
            rounds=rounds,
            recovery_rate=recovery_rate,
            round_tallies=[RoundTally(round_index=index) for index in range(rounds)],
            funnel=FunnelTally() if want_trace else None,
            round_funnels=[FunnelTally() for _ in range(rounds)] if want_trace else [],
            dismiss_weight=dismiss_weight,
            heed_weight=heed_weight,
        )

        offset = 0
        chunk_index = 0
        while offset < count:
            size = min(self.config.batch_size, count - offset)
            chunk_rng = rng.spawn(chunk_index)
            draws = batch_module.draw_batch(plan, population, size, chunk_rng)
            # Single-shot runs never read the exposure state; keep that hot
            # path allocation-free.
            exposures = (
                habituation_module.initial_exposures(plan.communication, size)
                if rounds > 1
                else None
            )
            for round_index in range(rounds):
                if round_index:
                    # Same receivers, fresh encounter randomness from a
                    # stream derived off the chunk stream (round 0 consumed
                    # the chunk stream itself, preserving the single-shot
                    # draw layout exactly).
                    draws = batch_module.redraw_decisions(
                        plan, draws.samples, chunk_rng.spawn(round_index)
                    )
                # Round 0 keeps the communication's scalar baked-in count
                # (the single-shot reading); later rounds thread the evolved
                # per-receiver array.
                round_exposures = exposures if round_index else None
                round_tally = result.round_tallies[round_index]
                advancing = exposures is not None and round_index + 1 < rounds
                if mode == "batch":
                    outcomes = batch_module.evaluate_batch(
                        plan, draws, exposures=round_exposures, trace=want_trace
                    )
                    result.tally.add_batch(outcomes)
                    round_tally.add_batch(outcomes)
                    if want_trace:
                        result.funnel.add_trace(outcomes.trace)
                        result.round_funnels[round_index].add_trace(outcomes.trace)
                    if keep_records:
                        result.records.extend(
                            batch_module.records_from_batch(
                                outcomes, draws, start_index=offset, round_index=round_index
                            )
                        )
                    protected = outcomes.protected
                else:
                    # Reference mode: the same traversal kernel at width 1,
                    # one row slice at a time (each receiver evaluated in
                    # isolation over identical pre-drawn floats).
                    protected = np.zeros(size, dtype=bool) if advancing else None
                    for row in range(size):
                        row_draws = draws.row(row)
                        row_outcomes = batch_module.evaluate_batch(
                            plan,
                            row_draws,
                            exposures=(
                                None if round_exposures is None
                                else round_exposures[row : row + 1]
                            ),
                            trace=want_trace,
                        )
                        record = batch_module.records_from_batch(
                            row_outcomes,
                            row_draws,
                            start_index=offset + row,
                            round_index=round_index,
                        )[0]
                        result.tally.add_record(record)
                        round_tally.add_record(record)
                        if want_trace:
                            result.funnel.add_trace(row_outcomes.trace)
                            result.round_funnels[round_index].add_trace(row_outcomes.trace)
                        if keep_records:
                            result.records.append(record)
                        if advancing:
                            protected[row] = bool(row_outcomes.protected[0])
                if advancing:
                    # Outcome-coupled accrual: delivery (spoof draws) says who
                    # the communication reached, the realized outcomes say how
                    # hard the encounter habituates.  Both modes feed the
                    # identical floats (reference is the kernel at width 1),
                    # so the exposure trajectories agree bit for bit.
                    delivered = draws.spoof_uniforms >= plan.spoof_probability
                    exposures = habituation_module.advance_exposures(
                        exposures,
                        delivered,
                        recovery_rate,
                        heeded=protected,
                        dismiss_weight=dismiss_weight,
                        heed_weight=heed_weight,
                    )
            offset += size
            chunk_index += 1
        return result

    def simulate_receiver(
        self,
        task: HumanSecurityTask,
        receiver: HumanReceiver,
        rng: SimulationRng,
        index: int = 0,
    ) -> ReceiverRecord:
        """Simulate a single receiver's encounter with the task.

        Draws flow through ``rng`` one decision at a time in pipeline
        order (spoof, noise, stages, gates), exactly as the original
        per-receiver engine did.
        """
        plan = self._plan_for(task)
        spoofed = False
        noise = 0.0
        if plan.has_communication:
            spoofed = rng.bernoulli(plan.spoof_probability)
            if not spoofed:
                noise = rng.truncated_normal(0.0, plan.user_noise_std, -0.2, 0.2)

        walk = plan.walk(
            receiver,
            decide=lambda kind, stage, probability: rng.bernoulli(float(probability)),
            noise=noise,
            spoofed=spoofed,
        )
        return self._record_from_walk(walk, index=index, receiver_name=receiver.name)

    # -- internals ----------------------------------------------------------------

    def _plan_for(self, task: HumanSecurityTask) -> PipelinePlan:
        return build_pipeline(
            task,
            calibration=self.config.calibration,
            environment=self._effective_environment(task.environment),
        )

    def _effective_environment(self, environment: Environment) -> Environment:
        if self.config.attacker is None:
            return environment
        return self.config.attacker.apply_to(environment)

    @staticmethod
    def _record_from_walk(
        walk, index: int, receiver_name: str, round_index: int = 0
    ) -> ReceiverRecord:
        return ReceiverRecord(
            index=index,
            receiver_name=receiver_name,
            trace=walk.trace,
            outcome=walk.outcome,
            protected=walk.protected,
            failed_stage=walk.failed_stage,
            intention_failed=walk.intention_failed,
            capability_failed=walk.capability_failed,
            spoofed=walk.spoofed,
            note=walk.note,
            round_index=round_index,
        )
