"""The human-receiver simulation engine.

The engine is the substrate that stands in for the human-subject studies
the paper cites: it draws receivers from a :class:`PopulationSpec`, walks
each one through the framework pipeline (communication delivery →
communication processing → application → intention and capability gates →
behavior) with stage probabilities from
:mod:`repro.core.probabilities` (optionally rescaled by a
:class:`~repro.simulation.calibration.StageCalibration`), and records where
each receiver failed and whether the hazard was ultimately avoided.

Outcome semantics mirror the case studies:

* For **blocking** communications (the Firefox and active IE anti-phishing
  warnings), the safe outcome is the default: a receiver only reaches the
  hazard by explicitly overriding.  Receivers who never understand the
  warning mostly "fail safely"; receivers who decide to ignore it override
  and are unprotected.
* For **passive** communications (the passive IE warning, toolbar
  indicators), the hazard proceeds by default: any failure before a
  successful protective action leaves the receiver unprotected.
* A receiver facing a **spoofed** indicator (attacker interference) is
  unprotected regardless of their own processing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..core import probabilities
from ..core.behavior import BehaviorOutcome
from ..core.communication import ActivenessLevel, Communication
from ..core.exceptions import SimulationError
from ..core.impediments import Environment
from ..core.receiver import HumanReceiver
from ..core.stages import Stage, StageOutcome, StageTrace
from ..core.task import HumanSecurityTask
from .attacker import AttackerModel
from .calibration import StageCalibration
from .metrics import ReceiverRecord, SimulationResult
from .population import PopulationSpec
from .rng import SimulationRng

__all__ = ["SimulationConfig", "HumanLoopSimulator"]


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Configuration for one simulation run."""

    n_receivers: int = 500
    seed: int = 0
    calibration: StageCalibration = dataclasses.field(default_factory=StageCalibration.neutral)
    attacker: Optional[AttackerModel] = None

    def __post_init__(self) -> None:
        if self.n_receivers < 0:
            raise SimulationError("n_receivers must be non-negative")
        if self.seed < 0:
            raise SimulationError("seed must be non-negative")


class HumanLoopSimulator:
    """Monte-Carlo simulator of humans in the loop of a secure system."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # -- public API -------------------------------------------------------------

    def simulate_task(
        self,
        task: HumanSecurityTask,
        population: PopulationSpec,
        n_receivers: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate ``n_receivers`` independent receivers encountering the task."""
        count = self.config.n_receivers if n_receivers is None else n_receivers
        if count < 0:
            raise SimulationError("n_receivers must be non-negative")
        base_seed = self.config.seed if seed is None else seed
        rng = SimulationRng(base_seed)

        result = SimulationResult(
            task_name=task.name,
            population_name=population.name,
            seed=base_seed,
            calibration_label=self.config.calibration.label,
        )
        for index in range(count):
            receiver_rng = rng.spawn(index)
            receiver = population.sample(receiver_rng, name=f"{population.name}-{index}")
            record = self.simulate_receiver(task, receiver, receiver_rng, index=index)
            result.records.append(record)
        return result

    def simulate_receiver(
        self,
        task: HumanSecurityTask,
        receiver: HumanReceiver,
        rng: SimulationRng,
        index: int = 0,
    ) -> ReceiverRecord:
        """Simulate a single receiver's encounter with the task."""
        calibration = self.config.calibration
        environment = self._effective_environment(task.environment)
        communication = task.communication
        trace = StageTrace()

        if communication is None:
            return self._simulate_without_communication(task, receiver, rng, index, trace)

        # Attacker spoofing defeats the receiver regardless of processing.
        if rng.bernoulli(environment.spoof_probability):
            return ReceiverRecord(
                index=index,
                receiver_name=receiver.name,
                trace=trace,
                outcome=BehaviorOutcome.FAILURE,
                protected=False,
                spoofed=True,
                note="indicator spoofed by attacker",
            )

        default_safe = self._default_safe(communication)
        noise = rng.truncated_normal(0.0, calibration.user_noise_std, -0.2, 0.2)

        # -- pipeline stages ---------------------------------------------------
        applicability = probabilities.applicable_stages(communication)
        for stage, applies in applicability.items():
            if not applies and stage is not Stage.BEHAVIOR:
                trace.skip(stage)
        stage_functions = {
            Stage.ATTENTION_SWITCH: lambda: probabilities.attention_switch_probability(
                communication, environment, receiver
            ),
            Stage.ATTENTION_MAINTENANCE: lambda: probabilities.attention_maintenance_probability(
                communication, environment, receiver
            ),
            Stage.COMPREHENSION: lambda: probabilities.comprehension_probability(
                communication, receiver
            ),
            Stage.KNOWLEDGE_ACQUISITION: lambda: probabilities.knowledge_acquisition_probability(
                communication, receiver
            ),
            Stage.KNOWLEDGE_RETENTION: lambda: probabilities.knowledge_retention_probability(
                communication, receiver
            ),
            Stage.KNOWLEDGE_TRANSFER: lambda: probabilities.knowledge_transfer_probability(
                communication, receiver
            ),
        }

        for stage in (
            Stage.ATTENTION_SWITCH,
            Stage.ATTENTION_MAINTENANCE,
            Stage.COMPREHENSION,
            Stage.KNOWLEDGE_ACQUISITION,
            Stage.KNOWLEDGE_RETENTION,
            Stage.KNOWLEDGE_TRANSFER,
        ):
            if not applicability[stage]:
                continue
            probability = calibration.apply_stage(
                stage, probabilities.clamp_probability(stage_functions[stage]() + noise)
            )
            succeeded = rng.bernoulli(probability)
            trace.record(StageOutcome(stage=stage, succeeded=succeeded, probability=probability))
            if not succeeded:
                return self._resolve_stage_failure(
                    task, receiver, rng, index, trace, stage, default_safe
                )

        # -- intention gate -----------------------------------------------------
        intention_p = calibration.apply_intention(
            probabilities.clamp_probability(
                probabilities.intention_probability(communication, receiver) + noise
            )
        )
        if not rng.bernoulli(intention_p):
            # The receiver understood but decided not to comply: with a
            # blocking communication this means deliberately overriding.
            return ReceiverRecord(
                index=index,
                receiver_name=receiver.name,
                trace=trace,
                outcome=BehaviorOutcome.FAILURE,
                protected=False,
                intention_failed=True,
                note="decided not to comply",
            )

        # -- capability gate ----------------------------------------------------
        capability_p = calibration.apply_capability(
            probabilities.capability_probability(task, receiver)
        )
        if not rng.bernoulli(capability_p):
            outcome = BehaviorOutcome.FAILED_SAFE if default_safe else BehaviorOutcome.FAILURE
            return ReceiverRecord(
                index=index,
                receiver_name=receiver.name,
                trace=trace,
                outcome=outcome,
                protected=outcome.hazard_avoided,
                capability_failed=True,
                note="not capable of completing the action",
            )

        # -- behavior stage -----------------------------------------------------
        behavior_p = calibration.apply_stage(
            Stage.BEHAVIOR,
            probabilities.behavior_success_probability(task.task_design, receiver),
        )
        behavior_ok = rng.bernoulli(behavior_p)
        trace.record(
            StageOutcome(stage=Stage.BEHAVIOR, succeeded=behavior_ok, probability=behavior_p)
        )
        if behavior_ok:
            return ReceiverRecord(
                index=index,
                receiver_name=receiver.name,
                trace=trace,
                outcome=BehaviorOutcome.SUCCESS,
                protected=True,
            )
        outcome = BehaviorOutcome.FAILED_SAFE if default_safe else BehaviorOutcome.FAILURE
        return ReceiverRecord(
            index=index,
            receiver_name=receiver.name,
            trace=trace,
            outcome=outcome,
            protected=outcome.hazard_avoided,
            failed_stage=Stage.BEHAVIOR,
            note="behavior-stage error (slip, lapse, or execution gulf)",
        )

    # -- internals ----------------------------------------------------------------

    def _effective_environment(self, environment: Environment) -> Environment:
        if self.config.attacker is None:
            return environment
        return self.config.attacker.apply_to(environment)

    @staticmethod
    def _default_safe(communication: Communication) -> bool:
        """Whether the hazard is blocked unless the receiver overrides."""
        return communication.activeness_level is ActivenessLevel.BLOCKING

    def _simulate_without_communication(
        self,
        task: HumanSecurityTask,
        receiver: HumanReceiver,
        rng: SimulationRng,
        index: int,
        trace: StageTrace,
    ) -> ReceiverRecord:
        """No triggering communication: only self-motivated experts act."""
        self_initiated = probabilities.clamp_probability(
            0.1 * receiver.personal_variables.expertise
        )
        if rng.bernoulli(self_initiated):
            return ReceiverRecord(
                index=index,
                receiver_name=receiver.name,
                trace=trace,
                outcome=BehaviorOutcome.SUCCESS,
                protected=True,
                note="self-initiated protective action (no communication)",
            )
        return ReceiverRecord(
            index=index,
            receiver_name=receiver.name,
            trace=trace,
            outcome=BehaviorOutcome.NO_ACTION,
            protected=False,
            note="no communication; no protective action taken",
        )

    def _resolve_stage_failure(
        self,
        task: HumanSecurityTask,
        receiver: HumanReceiver,
        rng: SimulationRng,
        index: int,
        trace: StageTrace,
        stage: Stage,
        default_safe: bool,
    ) -> ReceiverRecord:
        """Translate a failed pipeline stage into an outcome."""
        calibration = self.config.calibration

        if stage is Stage.ATTENTION_SWITCH:
            if default_safe:
                # A blocking communication cannot really go unnoticed; the
                # hazard remains blocked even for an inattentive receiver.
                outcome = BehaviorOutcome.FAILED_SAFE
            else:
                outcome = BehaviorOutcome.NO_ACTION
        elif stage in (
            Stage.ATTENTION_MAINTENANCE,
            Stage.COMPREHENSION,
            Stage.KNOWLEDGE_ACQUISITION,
        ):
            if default_safe:
                # Misunderstanding a blocking warning usually fails safe
                # (Egelman et al.: confused users retried the link and never
                # reached the site); a minority find the override anyway.
                overrode = rng.bernoulli(calibration.override_given_misunderstanding)
                outcome = BehaviorOutcome.FAILURE if overrode else BehaviorOutcome.FAILED_SAFE
            else:
                outcome = BehaviorOutcome.FAILURE
        else:
            # Retention / transfer failures (training and policy): the
            # knowledge is simply not applied when needed.
            outcome = BehaviorOutcome.FAILURE

        return ReceiverRecord(
            index=index,
            receiver_name=receiver.name,
            trace=trace,
            outcome=outcome,
            protected=outcome.hazard_avoided,
            failed_stage=stage,
            note=f"failed at {stage.value}",
        )
