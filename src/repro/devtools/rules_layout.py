"""REP004 — the draw-stream and decision-column layouts are append-only."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .framework import Diagnostic, Project, Rule, SourceFile, register
from .layouts import FROZEN_DECISION_SUFFIX, FROZEN_STREAM_CONSTANTS


def _column_assignments(
    fn: ast.FunctionDef,
) -> List[Tuple[str, Optional[int], ast.AST]]:
    """Ordered ``columns["key"] = offset [+ k]`` assignments of a function.

    Returns (key, addend, node) triples; ``addend`` is the integer added
    to the base offset (0 for a bare ``= offset``), or ``None`` when the
    value is not of that shape.
    """
    assignments = []
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)
        ):
            continue
        key = target.slice.value
        addend: Optional[int] = None
        value = node.value
        if isinstance(value, ast.Name):
            addend = 0
        elif (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Add)
            and isinstance(value.left, ast.Name)
            and isinstance(value.right, ast.Constant)
            and isinstance(value.right.value, int)
        ):
            addend = value.right.value
        assignments.append((key, addend, node))
    assignments.sort(key=lambda item: item[2].lineno)
    return assignments


@register
class StreamLayoutFrozen(Rule):
    """Persisted draw coordinates must stay replayable forever.

    Counter-mode addresses every draw by ``(seed, chunk, round, stream,
    receiver)`` and matrix-mode realizes decisions positionally from
    ``decision_columns``; both layouts are public and effectively
    persisted in every recorded result.  Existing stream ids and column
    positions are therefore frozen: this rule compares the live
    definitions against the snapshot in ``devtools/layouts.py`` and
    fails on any renumbering or reordering.  Appending new entries (and
    extending the snapshot in the same change) is always allowed.
    """

    rule_id = "REP004"
    title = "stream-layout-frozen"
    contract = (
        "Philox stream-id constants and the decision_columns tail are "
        "append-only: existing entries keep their numbers and order"
    )

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        for node in file.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            frozen = FROZEN_STREAM_CONSTANTS.get(target.id)
            if frozen is None:
                continue
            try:
                live = ast.literal_eval(node.value)
            except (ValueError, TypeError, SyntaxError):
                continue
            if isinstance(live, list):
                live = tuple(live)
            if live != frozen:
                yield self.diagnostic(
                    file,
                    node,
                    f"{target.id} = {live!r} renumbers a frozen stream id "
                    f"(snapshot: {frozen!r}); stream layout is append-only "
                    "— add new streams above the existing block instead",
                )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        found = project.find_function("decision_columns")
        if found is None:
            return
        file, fn = found
        assignments = _column_assignments(fn)
        if not assignments:
            return
        keys = [key for key, _, _ in assignments]
        addends = [addend for _, addend, _ in assignments]
        frozen = list(FROZEN_DECISION_SUFFIX)
        if keys[: len(frozen)] != frozen:
            yield self.diagnostic(
                file,
                assignments[0][2],
                f"decision_columns tail order {keys!r} does not start with "
                f"the frozen suffix {frozen!r}; existing columns are "
                "append-only — new columns go after 'behavior'",
            )
            return
        for index, (key, addend, node) in enumerate(assignments):
            if addend != index:
                yield self.diagnostic(
                    file,
                    node,
                    f"decision_columns[{key!r}] sits at offset + "
                    f"{addend!r}, expected offset + {index} — renumbering "
                    "an existing column shifts every later draw in the "
                    "matrix layout",
                )
        # The no-communication layout is part of the frozen contract too.
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                literal_keys = [
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant)
                ]
                if literal_keys and literal_keys[0] != "self_initiated":
                    yield self.diagnostic(
                        file,
                        node,
                        "the no-communication decision layout must keep "
                        "'self_initiated' at column 0",
                    )
